"""DEWE v2 — the paper's pulling-based workflow execution system.

This package is the *real*, runnable implementation: a master daemon, a
stateless worker daemon and a workflow submission application coordinating
over the in-process broker (:mod:`repro.mq`), executing job actions as
Python callables or subprocesses on the local machine.

Architecture (paper §III):

* the **master daemon** manages workflow progress only: it parses
  submissions, publishes eligible jobs to the job-dispatching topic,
  consumes acknowledgments, and resubmits jobs whose completion ack does
  not arrive within the timeout;
* **worker daemons** are stateless: their only knowledge of the system is
  the broker address; they pull jobs first-come-first-served, run each in
  its own thread (at most one per CPU), and acknowledge running/completed;
* the **submission application** publishes workflow metadata and returns.

The cluster-scale *simulated* counterpart (same control logic, DES
resources) lives in :mod:`repro.engines.pull`; both share the DAG state
machine in :mod:`repro.dewe.state`.
"""

from repro.dewe.config import DeweConfig
from repro.dewe.executors import CallableExecutor, NullExecutor, SubprocessExecutor
from repro.dewe.folder import (
    create_workflow_folder,
    load_workflow_folder,
    submit_workflow_folder,
)
from repro.dewe.master import MasterDaemon
from repro.dewe.state import JobStatus, WorkflowState
from repro.dewe.submit import submit_workflow
from repro.dewe.worker import WorkerDaemon

__all__ = [
    "CallableExecutor",
    "DeweConfig",
    "JobStatus",
    "MasterDaemon",
    "NullExecutor",
    "SubprocessExecutor",
    "WorkerDaemon",
    "WorkflowState",
    "create_workflow_folder",
    "load_workflow_folder",
    "submit_workflow",
    "submit_workflow_folder",
]
