"""The DEWE v2 worker daemon (real, threaded).

"The worker daemon has a stateless design.  The only knowledge it has
about the whole workflow execution system is the address of the message
queue" (paper §III.D).  The daemon pulls the job-dispatching topic, sends
a running ack, runs the job in its own thread, and sends a completed (or
failed) ack.  It stops pulling while the number of in-flight job threads
equals the CPU count.

Fault injection: :meth:`kill` emulates the process being killed — pulling
stops immediately and acknowledgments of in-flight jobs are suppressed, so
the master's timeout mechanism must recover them (paper §V.A.3).  A killed
worker cannot be restarted; start a fresh daemon, exactly like restarting
the real process.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.dewe.config import DeweConfig
from repro.dewe.executors import CallableExecutor, Executor
from repro.mq.broker import Broker
from repro.mq.messages import TOPIC_ACK, TOPIC_DISPATCH, AckKind, JobAck, JobDispatch

__all__ = ["WorkerDaemon"]


class WorkerDaemon:
    """Pulls and executes jobs; start()/stop()/kill() lifecycle."""

    def __init__(
        self,
        broker: Broker,
        executor: Optional[Executor] = None,
        config: Optional[DeweConfig] = None,
        name: str = "worker-0",
    ):
        self.broker = broker
        self.executor = executor or CallableExecutor()
        self.config = config or DeweConfig()
        self.name = name
        self.jobs_started = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self._active = 0
        self._active_lock = threading.Lock()
        self._stop = threading.Event()
        self._killed = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._job_threads: list = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerDaemon":
        if self._thread is not None:
            raise RuntimeError(f"worker {self.name} already started")
        self._thread = threading.Thread(
            target=self._loop, name=f"dewe-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop pulling, let in-flight jobs finish."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        for t in self._job_threads:
            t.join()
        self._job_threads.clear()

    def kill(self) -> None:
        """Abrupt death: in-flight jobs never acknowledge (fault injection)."""
        self._killed.set()
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "WorkerDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def active_jobs(self) -> int:
        with self._active_lock:
            return self._active

    # -- internals -----------------------------------------------------------
    def _ack(self, msg: JobDispatch, kind: AckKind, error: str = None) -> None:
        if self._killed.is_set():
            return  # a dead process sends nothing
        self.broker.publish(
            TOPIC_ACK,
            JobAck(
                workflow_name=msg.workflow_name,
                job_id=msg.job_id,
                kind=kind,
                worker=self.name,
                attempt=msg.attempt,
                error=error,
            ),
        )

    def _run_job(self, msg: JobDispatch) -> None:
        try:
            self.executor.run(msg.job)
        except Exception as exc:  # noqa: BLE001 - worker must survive any job
            self.jobs_failed += 1
            self._ack(msg, AckKind.FAILED, error=repr(exc))
        else:
            self.jobs_completed += 1
            self._ack(msg, AckKind.COMPLETED)
        finally:
            with self._active_lock:
                self._active -= 1

    def _loop(self) -> None:
        slots = self.config.worker_slots
        poll = self.config.worker_poll_interval
        while not self._stop.is_set():
            with self._active_lock:
                full = self._active >= slots
            if full:
                # At the concurrency cap: stop pulling (paper §III.D).
                self._stop.wait(poll)
                continue
            msg = self.broker.consume(TOPIC_DISPATCH, timeout=poll)
            if msg is None:
                continue
            if self._stop.is_set():
                if not self._killed.is_set():
                    # Graceful shutdown mid-checkout: hand the job back.
                    self.broker.publish(TOPIC_DISPATCH, msg)
                break
            self.jobs_started += 1
            with self._active_lock:
                self._active += 1
            self._ack(msg, AckKind.RUNNING)
            thread = threading.Thread(
                target=self._run_job, args=(msg,), name=f"{self.name}-job", daemon=True
            )
            self._job_threads.append(thread)
            thread.start()
