"""The DEWE v2 worker daemon (real, threaded).

"The worker daemon has a stateless design.  The only knowledge it has
about the whole workflow execution system is the address of the message
queue" (paper §III.D).  The daemon pulls the job-dispatching topic, sends
a running ack, runs the job in its own thread, and sends a completed (or
failed) ack.  It stops pulling while the number of in-flight job threads
equals the CPU count.

Fault injection: :meth:`kill` emulates the process being killed — pulling
stops immediately and acknowledgments of in-flight jobs are suppressed, so
the master's timeout mechanism must recover them (paper §V.A.3).  A killed
worker cannot be restarted; start a fresh daemon, exactly like restarting
the real process.

Locking discipline (lint CL005 enforces the ``_guarded_by_`` map): the
progress counters are guarded by the ``_progress`` condition — they were
historically bare ``+= 1`` from concurrent job threads, a lost-update
race the happens-before detector surfaces (its fingerprint is pinned in
``tests/test_concurrency_detector.py``).  ``_progress`` also gives
observers :meth:`wait_progress` instead of polling the counters.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import repro.analysis.concurrency.recorder as _conc
from repro.analysis.concurrency import shims as _shims
from repro.dewe.config import DeweConfig
from repro.dewe.executors import CallableExecutor, Executor
from repro.mq.broker import Broker
from repro.mq.messages import (
    TOPIC_ACK,
    TOPIC_DISPATCH,
    TOPIC_HEARTBEAT,
    AckKind,
    JobAck,
    JobDispatch,
    WorkerHeartbeat,
)

__all__ = ["WorkerDaemon"]


class WorkerDaemon:
    """Pulls and executes jobs; start()/stop()/kill() lifecycle."""

    _guarded_by_ = {
        "jobs_started": "_progress",
        "jobs_completed": "_progress",
        "jobs_failed": "_progress",
        "_active": "_active_lock",
    }

    def __init__(
        self,
        broker: Broker,
        executor: Optional[Executor] = None,
        config: Optional[DeweConfig] = None,
        name: str = "worker-0",
    ):
        self.broker = broker
        self.executor = executor or CallableExecutor()
        self.config = config or DeweConfig()
        self.name = name
        self.jobs_started = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self._active = 0
        self._active_lock = _shims.make_lock(f"{name}.active")
        #: Guards the progress counters; notified on every job outcome.
        self._progress = _shims.make_condition(f"{name}.progress")
        self._stop = _shims.make_event(f"{name}.stop")
        self._killed = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._hb_thread: Optional[threading.Thread] = None
        self._job_threads: list = []

    def _trace(self, op: str, site: str) -> None:
        """Report a counter access to the race recorder, if any."""
        rec = _conc.active()
        if rec is not None:
            hook = rec.on_read if op == "read" else rec.on_write
            hook("worker.progress", id(self), site)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerDaemon":
        if self._thread is not None:
            raise RuntimeError(f"worker {self.name} already started")
        self._thread = _shims.new_thread(self._loop, f"dewe-{self.name}")
        self._thread.start()
        if self.config.heartbeat_interval > 0:
            self._hb_thread = _shims.new_thread(
                self._heartbeat_loop, f"dewe-{self.name}-hb"
            )
            self._hb_thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop pulling, let in-flight jobs finish."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._hb_thread is not None:
            self._hb_thread.join()
            self._hb_thread = None
        for t in self._job_threads:
            t.join()
        self._job_threads.clear()

    def kill(self) -> None:
        """Abrupt death: in-flight jobs never acknowledge (fault injection)."""
        self._killed.set()
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._hb_thread is not None:
            self._hb_thread.join()
            self._hb_thread = None

    def join_jobs(self, timeout: Optional[float] = None) -> None:
        """Wait for in-flight job threads (after :meth:`kill`, the acks
        are suppressed but the threads still wind down)."""
        for t in self._job_threads:
            t.join(timeout)

    def __enter__(self) -> "WorkerDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def active_jobs(self) -> int:
        with self._active_lock:
            return self._active

    # -- progress observation ----------------------------------------------
    @property
    def progress(self) -> Tuple[int, int, int]:
        """(started, completed, failed) under the progress condition."""
        with self._progress:
            self._trace("read", "worker.progress_read")
            return (self.jobs_started, self.jobs_completed, self.jobs_failed)

    def wait_progress(
        self, seen: int, timeout: Optional[float] = None
    ) -> int:
        """Block until completed+failed exceeds ``seen`` (or timeout);
        returns the current completed+failed count.  The event-driven
        replacement for polling the counters with ``time.sleep``."""
        with self._progress:
            self._progress.wait_for(
                lambda: self.jobs_completed + self.jobs_failed > seen,
                timeout,
            )
            self._trace("read", "worker.wait_progress")
            return self.jobs_completed + self.jobs_failed

    # -- internals -----------------------------------------------------------
    def _ack(self, msg: JobDispatch, kind: AckKind, error: str = None) -> None:
        if self._killed.is_set():
            return  # a dead process sends nothing
        self.broker.publish(
            TOPIC_ACK,
            JobAck(
                workflow_name=msg.workflow_name,
                job_id=msg.job_id,
                kind=kind,
                worker=self.name,
                attempt=msg.attempt,
                error=error,
            ),
        )

    def _record_outcome(self, failed: bool) -> None:
        """Count one finished job and wake :meth:`wait_progress` waiters."""
        with self._progress:
            self._trace("write", "worker.record_outcome")
            if failed:
                self.jobs_failed += 1
            else:
                self.jobs_completed += 1
            self._progress.notify_all()

    def _run_job(self, msg: JobDispatch) -> None:
        try:
            self.executor.run(msg.job)
        except Exception as exc:  # noqa: BLE001 - worker must survive any job
            self._record_outcome(failed=True)
            self._ack(msg, AckKind.FAILED, error=repr(exc))
        else:
            self._record_outcome(failed=False)
            self._ack(msg, AckKind.COMPLETED)
        finally:
            with self._active_lock:
                self._active -= 1

    def _heartbeat_loop(self) -> None:
        """Renew the liveness lease every ``heartbeat_interval`` seconds.

        The first beat announces the worker (the master grants a lease on
        first contact); a killed worker stops beating immediately, which
        is exactly the signal the lease sweep turns into a fence.
        """
        seq = 0
        self.broker.publish(TOPIC_HEARTBEAT, WorkerHeartbeat(worker=self.name))
        # Event-wait between beats (lint CL008): wakes early on stop/kill.
        while not self._stop.wait(self.config.heartbeat_interval):
            if self._killed.is_set():
                return
            seq += 1
            self.broker.publish(
                TOPIC_HEARTBEAT, WorkerHeartbeat(worker=self.name, seq=seq)
            )

    def _loop(self) -> None:
        slots = self.config.worker_slots
        poll = self.config.worker_poll_interval
        while not self._stop.is_set():
            with self._active_lock:
                full = self._active >= slots
            if full:
                # At the concurrency cap: stop pulling (paper §III.D).
                self._stop.wait(poll)
                continue
            msg = self.broker.consume(TOPIC_DISPATCH, timeout=poll)
            if msg is None:
                continue
            if self._stop.is_set():
                if not self._killed.is_set():
                    # Graceful shutdown mid-checkout: hand the job back.
                    self.broker.publish(TOPIC_DISPATCH, msg)
                break
            with self._progress:
                self._trace("write", "worker.job_started")
                self.jobs_started += 1
            with self._active_lock:
                self._active += 1
            self._ack(msg, AckKind.RUNNING)
            thread = _shims.new_thread(
                self._run_job, f"{self.name}-job", args=(msg,)
            )
            self._job_threads.append(thread)
            thread.start()
