"""Configuration for the real DEWE v2 daemons."""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["DeweConfig"]


@dataclass(frozen=True)
class DeweConfig:
    """Tunables for the master and worker daemons.

    Attributes
    ----------
    default_timeout:
        System-wide job timeout in seconds (paper §III.B); a job whose
        completion ack misses it is resubmitted.
    master_poll_interval:
        Sleep between master loop iterations when all topics are idle.
    worker_poll_interval:
        Worker's blocking-consume timeout on the dispatch topic.
    max_concurrent_jobs:
        Worker thread cap; ``0`` means one per CPU (paper §III.D: "the
        worker daemon stops pulling ... when the number of concurrent job
        execution threads equals the number of CPUs").
    heartbeat_interval:
        Liveness protocol (docs/FAULTS.md): workers beat this often and
        the master fences a worker's lease after ``lease_miss_threshold``
        consecutive missed beats, requeueing its in-flight jobs.  ``0``
        disables the protocol (the paper's behaviour: only the job
        timeout recovers lost workers).
    lease_miss_threshold:
        Missed beats before a lease is fenced.
    admission_max_pending:
        Admission control: reject new workflow submissions while the
        dispatch backlog is at or above this many queued jobs
        (reject-new before degrade-running).  ``0`` disables the gate.
    admission_retry_after:
        Retry-after hint (seconds) recorded with a shed submission.
    """

    default_timeout: float = 600.0
    master_poll_interval: float = 0.01
    worker_poll_interval: float = 0.02
    max_concurrent_jobs: int = 0
    heartbeat_interval: float = 0.0
    lease_miss_threshold: int = 3
    admission_max_pending: int = 0
    admission_retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.default_timeout <= 0:
            raise ValueError("default_timeout must be positive")
        if self.master_poll_interval <= 0 or self.worker_poll_interval <= 0:
            raise ValueError("poll intervals must be positive")
        if self.max_concurrent_jobs < 0:
            raise ValueError("max_concurrent_jobs must be >= 0")
        if self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if self.lease_miss_threshold < 1:
            raise ValueError("lease_miss_threshold must be at least 1")
        if self.admission_max_pending < 0:
            raise ValueError("admission_max_pending must be >= 0")
        if self.admission_retry_after <= 0:
            raise ValueError("admission_retry_after must be positive")

    @property
    def worker_slots(self) -> int:
        if self.max_concurrent_jobs > 0:
            return self.max_concurrent_jobs
        return os.cpu_count() or 1
