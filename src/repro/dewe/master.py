"""The DEWE v2 master daemon (real, threaded).

The master "only manages the progress of the workflow, and publishes jobs
that are eligible to run to a message queue.  It has no knowledge about
the worker nodes" (paper §III.B).  One background thread services all
three topics:

* submissions — parse/validate the DAG, store a
  :class:`~repro.dewe.state.WorkflowState`, publish the initially
  eligible jobs;
* acknowledgments — update job status; completions may make children
  eligible, which are published immediately (jobs of *different*
  workflows share the one dispatch topic, so ensembles run in parallel);
* timeouts — periodically republish jobs whose completion ack is overdue.

A :class:`~repro.faults.retry.RetryPolicy` governs re-dispatches: failed
and timed-out jobs back off exponentially (with deterministic jitter)
before republication, and a job that exhausts its attempt budget is
dead-lettered instead of republished forever — the workflow then
*settles* (every job completed or dead) and waiters are released, so one
poison job cannot livelock an ensemble.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, List, Optional, Tuple

import repro.analysis.concurrency.recorder as _conc
import repro.analysis.sanitizer as _sanitizer
from repro.analysis.concurrency import shims as _shims
from repro.dewe.config import DeweConfig
from repro.dewe.state import JobStatus, WorkflowState
from repro.faults.retry import DeadLetterEntry, RetryPolicy
from repro.liveness import (
    AdmissionControl,
    LeaseConfig,
    LeaseTable,
    new_liveness_stats,
)
from repro.mq.broker import Broker
from repro.mq.priority import RepriorityPolicy, base_band, rank_for_sla
from repro.mq.tcpbroker import RemoteBroker
from repro.mq.messages import (
    TOPIC_ACK,
    TOPIC_DISPATCH,
    TOPIC_HEARTBEAT,
    TOPIC_SUBMIT,
    AckKind,
    JobAck,
    JobDispatch,
    WorkflowSubmission,
)

__all__ = ["MasterDaemon"]


class MasterDaemon:
    """Manages workflow progress over the broker; start()/stop() lifecycle.

    Locking discipline (lint CL005 enforces the ``_guarded_by_`` map):
    all scheduler state is guarded by ``_state_lock`` so that
    :meth:`checkpoint` — callable from *any* thread — always sees a
    consistent cut between message handlers; the completion-event
    registry has its own ``_events_lock`` (never nested with the state
    lock).  Private handlers document ``Requires: ``_state_lock``​``
    instead of re-acquiring it.
    """

    _guarded_by_ = {
        "states": "_state_lock",
        "makespans": "_state_lock",
        "rejected": "_state_lock",
        "dropped_acks": "_state_lock",
        "_submit_times": "_state_lock",
        "_delayed": "_state_lock",
        "_delayed_seq": "_state_lock",
        "_assignments": "_state_lock",
        "_last_sweep": "_state_lock",
        "liveness": "_state_lock",
        "shed_submissions": "_state_lock",
        "_events": "_events_lock",
    }

    def __init__(
        self,
        broker: Broker,
        config: Optional[DeweConfig] = None,
        retry: Optional[RetryPolicy] = None,
        repriority: Optional[RepriorityPolicy] = None,
    ):
        self.broker = broker
        self.config = config or DeweConfig()
        self.retry = retry or RetryPolicy()
        #: Live-reprioritization policy (``None`` keeps every dispatch at
        #: priority 0.0 — FIFO order).  Set once here, never rebound.
        self._repriority = repriority
        #: Wall-clock time of the last aging sweep (``_check_timeouts``).
        self._last_sweep = time.monotonic()
        self.states: Dict[str, WorkflowState] = {}
        #: Rejected submissions: name -> reason (duplicate, invalid DAG...).
        self.rejected: Dict[str, str] = {}
        self.makespans: Dict[str, float] = {}
        #: Acks for unknown workflows, dropped on arrival.  A nonzero
        #: count flags misrouted traffic (a worker pool shared by two
        #: masters, a submission that raced ahead of its acks...).
        self.dropped_acks = 0
        self._submit_times: Dict[str, float] = {}
        #: Backoff queue: (due_time, seq, workflow, job_id, attempt).
        self._delayed: List[Tuple[float, int, str, str, int]] = []
        self._delayed_seq = 0
        #: Liveness counters (docs/FAULTS.md), shared with the lease table.
        self.liveness: Dict[str, int] = new_liveness_stats()
        #: Heartbeat/lease failure detector, or ``None`` when the
        #: protocol is off (heartbeat_interval == 0).  The *reference*
        #: is set once here and never rebound; the table's contents are
        #: only touched under ``_state_lock``.
        self._lease: Optional[LeaseTable] = None
        if self.config.heartbeat_interval > 0:
            self._lease = LeaseTable(
                LeaseConfig(
                    heartbeat_interval=self.config.heartbeat_interval,
                    miss_threshold=self.config.lease_miss_threshold,
                ),
                stats=self.liveness,
            )
        #: (workflow, job_id) -> (worker, attempt) of RUNNING deliveries,
        #: so a fenced worker's in-flight jobs can be requeued.
        self._assignments: Dict[Tuple[str, str], Tuple[str, int]] = {}
        #: The shared backlog gate (repro.liveness), or ``None`` when
        #: admission control is off.  Set once here, never rebound.
        self._admission: Optional[AdmissionControl] = None
        if self.config.admission_max_pending > 0:
            self._admission = AdmissionControl(
                max_pending_jobs=self.config.admission_max_pending,
                retry_after=self.config.admission_retry_after,
            )
        #: Admission-shed submissions: name -> retry-after hint (seconds,
        #: scaled with backlog overshoot — see AdmissionControl.retry_hint).
        self.shed_submissions: Dict[str, float] = {}
        self._events: Dict[str, threading.Event] = {}
        self._events_lock = _shims.make_lock("master.events")
        #: Guards scheduler state (states/makespans/_delayed/_submit_times)
        #: so :meth:`checkpoint` sees a consistent cut between handlers.
        self._state_lock = _shims.make_lock("master.state")
        self._stop = _shims.make_event("master.stop")
        self._thread: Optional[threading.Thread] = None

    def _trace(self, op: str, site: str) -> None:
        """Report a scheduler-state access to the race recorder, if any."""
        rec = _conc.active()
        if rec is not None:
            hook = rec.on_read if op == "read" else rec.on_write
            hook("master.state", id(self), site)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "MasterDaemon":
        if self._thread is not None:
            raise RuntimeError("master daemon already started")
        self._thread = _shims.new_thread(self._loop, "dewe-master")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "MasterDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- public queries ------------------------------------------------------
    def completion_event(self, workflow_name: str) -> threading.Event:
        with self._events_lock:
            event = self._events.get(workflow_name)
            if event is None:
                event = _shims.make_event(f"master.done.{workflow_name}")
                self._events[workflow_name] = event
            return event

    def wait(self, workflow_name: str, timeout: Optional[float] = None) -> bool:
        """Block until ``workflow_name`` settles; True on settlement.

        Under an unbounded retry policy settlement equals completion;
        with an attempt budget a workflow may settle with dead letters —
        check :attr:`dead_letters` afterwards.
        """
        return self.completion_event(workflow_name).wait(timeout)

    def makespan(self, workflow_name: str) -> float:
        """Seconds from submission to settlement (raises if not done)."""
        with self._state_lock:
            self._trace("read", "master.makespan")
            return self.makespans[workflow_name]

    def liveness_stats(self) -> Dict[str, int]:
        """Snapshot of the robustness counters (docs/FAULTS.md):
        heartbeat misses, lease fencings/regrants, shed submissions."""
        with self._state_lock:
            self._trace("read", "master.liveness_stats")
            return dict(self.liveness)

    @property
    def dead_letters(self) -> List[DeadLetterEntry]:
        """Dead-lettered jobs across every submitted workflow."""
        out: List[DeadLetterEntry] = []
        with self._state_lock:
            self._trace("read", "master.dead_letters")
            for state in self.states.values():
                out.extend(state.dead_letters)
        return out

    # -- checkpoint / restore ------------------------------------------------
    def checkpoint(self) -> "object":
        """A consistent snapshot of the whole scheduler state
        (:class:`~repro.recovery.checkpoint.MasterCheckpoint`).

        Taken under the state lock, so it falls between message
        handlers — the threaded analogue of the DES journal's
        checkpoint records.  Safe to call from any thread while the
        daemon runs.
        """
        from repro.recovery.checkpoint import MasterCheckpoint

        now = time.monotonic()
        with self._state_lock:
            self._trace("read", "master.checkpoint")
            return MasterCheckpoint(
                states={
                    name: (state.workflow, state.snapshot())
                    for name, state in self.states.items()
                },
                elapsed={
                    name: now - t for name, t in self._submit_times.items()
                },
                makespans=dict(self.makespans),
                rejected=dict(self.rejected),
            )

    @classmethod
    def from_checkpoint(
        cls,
        broker: Broker,
        checkpoint: "object",
        config: Optional[DeweConfig] = None,
        retry: Optional[RetryPolicy] = None,
        republish: bool = True,
    ) -> "MasterDaemon":
        """Rebuild a master from a :meth:`checkpoint` after a crash.

        Completed jobs stay completed — nothing that settled before the
        checkpoint is re-run.  With ``republish`` (the default), every
        job that was in flight at the checkpoint is re-dispatched with a
        fresh attempt number: the old delivery may still be held by a
        worker, and at-least-once idempotency absorbs whichever ack
        loses the race.  The caller still has to :meth:`start` the
        daemon.
        """
        master = cls(broker, config=config, retry=retry)
        now = time.monotonic()
        for name, (workflow, snapshot) in checkpoint.states.items():
            state = WorkflowState.restore(
                workflow,
                snapshot,
                default_timeout=master.config.default_timeout,
                retry=master.retry,
            )
            state.track_queue_age = master._repriority is not None
            master.states[name] = state
            master._submit_times[name] = now - checkpoint.elapsed.get(name, 0.0)
        master.makespans.update(checkpoint.makespans)
        master.rejected.update(checkpoint.rejected)
        for name in checkpoint.makespans:
            master.completion_event(name).set()
        if republish:
            for state in master.states.values():
                if state.is_settled:
                    master._finish(state)
                    continue
                for job_id in state.requeue_in_flight(now):
                    master._dispatch(state, job_id)
        return master

    # -- internals ----------------------------------------------------------
    def _priority_of(self, state: WorkflowState, job_id: str, now: float) -> float:
        """SLA band + bounded heuristic score (0.0 with the policy off)."""
        if self._repriority is None:
            return 0.0
        return state.job_priority(
            job_id, now, self._repriority, base_band(rank_for_sla(state.sla))
        )

    def _dispatch(self, state: WorkflowState, job_id: str) -> None:
        """Publish one eligible job.

        Requires: ``_state_lock``
        """
        now = time.monotonic()
        state.mark_dispatched(job_id, now, force=self._lease is not None)
        self.broker.publish(
            TOPIC_DISPATCH,
            JobDispatch(
                workflow_name=state.name,
                job_id=job_id,
                attempt=state.current_attempt(job_id),
                job=state.workflow.job(job_id),
            ),
            tag=(state.tenant, state.sla) if state.tenant else None,
            priority=self._priority_of(state, job_id, now),
        )

    def _rerank(self, state: WorkflowState, now: float) -> None:
        """Re-score the member's still-queued dispatches broker-side
        (the OSPREY ``asynch_repriority`` pattern — called as
        completions land and from the periodic aging sweep).

        Requires: ``_state_lock``
        """
        remote = isinstance(self.broker, RemoteBroker)
        for job_id in state.queued_jobs():
            prio = state.job_priority(
                job_id, now, self._repriority,
                base_band(rank_for_sla(state.sla)),
            )
            if remote:
                # Selectors cannot cross the wire: the TCP broker retags
                # by (workflow, job) fields via a PriorityUpdate message.
                self.broker.reprioritize(
                    TOPIC_DISPATCH, prio,
                    workflow_name=state.name, job_id=job_id,
                )
            else:
                self.broker.reprioritize(
                    TOPIC_DISPATCH,
                    lambda m, n=state.name, j=job_id: (
                        m.workflow_name == n and m.job_id == j
                    ),
                    prio,
                )

    def _republish(self, state: WorkflowState, job_id: str) -> None:
        """Re-dispatch after the policy's backoff (immediately if none).

        Requires: ``_state_lock``
        """
        self._trace("write", "master.republish")
        attempts = state.current_attempt(job_id) - 1  # deliveries so far
        delay = self.retry.backoff(attempts, key=f"{state.name}/{job_id}")
        if delay <= 0:
            self._dispatch(state, job_id)
            return
        self._delayed_seq += 1
        heapq.heappush(
            self._delayed,
            (
                time.monotonic() + delay,
                self._delayed_seq,
                state.name,
                job_id,
                state.current_attempt(job_id),
            ),
        )

    def _drain_delayed(self, now: float) -> None:
        """Fire backed-off redispatches that have come due.

        Requires: ``_state_lock``
        """
        while self._delayed and self._delayed[0][0] <= now:
            _due, _seq, name, job_id, attempt = heapq.heappop(self._delayed)
            state = self.states.get(name)
            if state is None:
                continue
            # Only fire if the delivery we backed off is still the
            # current one (a completion or a newer resubmission wins).
            if (
                state.status.get(job_id) is JobStatus.QUEUED
                and state.current_attempt(job_id) == attempt
            ):
                self._dispatch(state, job_id)

    def _handle_submission(self, msg: WorkflowSubmission) -> None:
        """Validate and admit one submitted workflow.

        Requires: ``_state_lock``
        """
        self._trace("write", "master.handle_submission")
        if msg.workflow.name in self.states:
            raise ValueError(f"workflow {msg.workflow.name!r} already submitted")
        if self._admission is not None:
            backlog = self.broker.depth(TOPIC_DISPATCH)
            if not self._admission.admits(backlog):
                # Reject-new before degrade-running: shed the submission
                # with a retry-after hint scaled by the backlog overshoot
                # rather than letting the backlog grow and slow every
                # admitted ensemble down.
                self.liveness["shed_submissions"] += 1
                if msg.sla:
                    key = f"shed_{msg.sla}"
                    self.liveness[key] = self.liveness.get(key, 0) + 1
                retry_after = self._admission.retry_hint(backlog)
                self.shed_submissions[msg.workflow.name] = retry_after
                raise RuntimeError(
                    f"admission: dispatch backlog {backlog} >= "
                    f"{self._admission.max_pending_jobs}; "
                    f"retry after {retry_after:g}s"
                )
        state = WorkflowState(
            msg.workflow, self.config.default_timeout, retry=self.retry,
            tenant=msg.tenant, sla=msg.sla,
        )
        state.arrival = time.monotonic()
        # Only the repriority aging term reads queue ages; skip the
        # per-dispatch bookkeeping when the policy is off.
        state.track_queue_age = self._repriority is not None
        self.states[state.name] = state
        self._submit_times[state.name] = state.arrival
        for job_id in state.initial_ready():
            self._dispatch(state, job_id)
        if state.is_settled:  # degenerate empty-DAG guard
            self._finish(state)

    def _finish(self, state: WorkflowState) -> None:
        """Record settlement and release waiters.

        Requires: ``_state_lock``
        """
        if state.name in self.makespans:
            return
        self._trace("write", "master.finish")
        self.makespans[state.name] = time.monotonic() - self._submit_times[state.name]
        self.completion_event(state.name).set()

    def _handle_ack(self, ack: JobAck) -> None:
        """Apply one worker acknowledgment to the state machine.

        Requires: ``_state_lock``
        """
        self._trace("write", "master.handle_ack")
        now = time.monotonic()
        if self._lease is not None and ack.worker:
            # Renew-on-contact: any ack from a live worker renews its
            # lease, and contact from a fenced or unknown worker
            # re-admits it under a fresh epoch *before* the ack is
            # applied.  Exactly-once settlement is carried by attempt
            # staleness — fencing bumped the attempt of everything the
            # worker held — so no settlement is ever applied from a
            # still-fenced lease (the sanitizer hook below verifies it).
            self._lease.observe(ack.worker, now)
        state = self.states.get(ack.workflow_name)
        if state is None:
            self.dropped_acks += 1
            return  # ack for an unknown workflow: drop (but count)
        if ack.kind is AckKind.RUNNING:
            accepted = state.on_running(ack.job_id, ack.attempt, now)
            if accepted and self._lease is not None and ack.worker:
                self._assignments[(ack.workflow_name, ack.job_id)] = (
                    ack.worker,
                    ack.attempt,
                )
        elif ack.kind is AckKind.COMPLETED:
            if self._lease is not None and ack.worker:
                san = _sanitizer._ACTIVE
                if san is not None:
                    san.check_lease_fencing(
                        ack.workflow_name,
                        ack.job_id,
                        ack.worker,
                        stale=self._lease.is_fenced(ack.worker),
                    )
            self._assignments.pop((ack.workflow_name, ack.job_id), None)
            for job_id in state.on_completed(ack.job_id, ack.attempt):
                self._dispatch(state, job_id)
            if self._repriority is not None and not state.is_settled:
                self._rerank(state, now)
            if state.is_settled:
                self._finish(state)
        else:  # FAILED: resubmission with backoff, or dead-letter
            self._assignments.pop((ack.workflow_name, ack.job_id), None)
            republish = state.on_failed(ack.job_id, ack.attempt, now)
            if republish is not None:
                self._republish(state, republish)
            elif state.is_settled:
                self._finish(state)

    def _check_timeouts(self) -> None:
        """Sweep deadlines and the backoff queue.

        Requires: ``_state_lock``
        """
        self._trace("write", "master.check_timeouts")
        now = time.monotonic()
        for state in self.states.values():
            for job_id in state.expired(now):
                self._republish(state, job_id)
            if state.is_settled:
                self._finish(state)
        self._drain_delayed(now)
        if self._lease is not None:
            for worker in self._lease.expire(now):
                self._fence_worker(worker, now)
        policy = self._repriority
        if (
            policy is not None
            and policy.interval > 0
            and now - self._last_sweep >= policy.interval
        ):
            # Aging sweep: re-score every queued job so starving work
            # accrues enough age to outrank fresher peers of its band.
            self._last_sweep = now
            for state in self.states.values():
                if not state.is_settled:
                    self._rerank(state, now)

    def _fence_worker(self, worker: str, now: float) -> None:
        """Fence a lapsed worker's lease and requeue its in-flight jobs.

        The liveness recovery path (docs/FAULTS.md): the worker missed
        ``lease_miss_threshold`` beats — hung, partitioned, or dead —
        so every delivery it holds is presumed lost and re-queued
        through the retry policy with a fresh attempt number (late acks
        from the fenced delivery become stale).  The worker rejoins on
        its next contact under a fresh epoch.

        Requires: ``_state_lock``
        """
        self._trace("write", "master.fence_worker")
        self._lease.fence(worker, now)
        held = sorted(
            key for key, value in self._assignments.items() if value[0] == worker
        )
        for key in held:
            name, job_id = key
            _worker, attempt = self._assignments.pop(key)
            state = self.states.get(name)
            if state is None:
                continue
            republish = state.on_lease_expired(job_id, attempt, now)
            if republish is not None:
                self._republish(state, republish)
            elif state.is_settled:
                self._finish(state)

    def _reject(self, workflow_name: str, exc: Exception) -> None:
        """Record a rejected submission.

        Historically this wrote :attr:`rejected` with no lock, racing
        :meth:`checkpoint`'s snapshot of the same dict from the
        checkpointer thread — the race detector's fingerprint for it is
        pinned in ``tests/test_concurrency_detector.py``.
        """
        with self._state_lock:
            self._trace("write", "master.reject")
            self.rejected[workflow_name] = repr(exc)

    def _loop(self) -> None:
        broker = self.broker
        while not self._stop.is_set():
            busy = False
            msg = broker.consume(TOPIC_SUBMIT)
            if msg is not None:
                try:
                    with self._state_lock:
                        self._handle_submission(msg)
                except Exception as exc:  # noqa: BLE001
                    # A malformed or duplicate submission must not kill
                    # the daemon: record the rejection and keep serving.
                    self._reject(msg.workflow.name, exc)
                busy = True
            while True:
                ack = broker.consume(TOPIC_ACK)
                if ack is None:
                    break
                with self._state_lock:
                    self._handle_ack(ack)
                busy = True
            if self._lease is not None:
                while True:
                    beat = broker.consume(TOPIC_HEARTBEAT)
                    if beat is None:
                        break
                    with self._state_lock:
                        self._trace("write", "master.handle_heartbeat")
                        self._lease.observe(beat.worker, time.monotonic())
                    busy = True
            with self._state_lock:
                self._check_timeouts()
            if not busy:
                # Not a bare sleep (lint CL008): a stop() request must
                # wake the loop immediately.
                self._stop.wait(self.config.master_poll_interval)
