"""Output-equivalence verification (paper §V.A).

"We verify that the results obtained from DEWE v2 and Pegasus are
identical by comparing the size and MD5 check sum of the final output
images produced by job mJpeg."  The same methodology for this library:

* :func:`run_reference` — execute a workflow's actions sequentially in
  topological order (the trivially correct executor);
* :func:`outputs_digest` — size + MD5 of every declared output file;
* :func:`verify_equivalence` — compare two digest maps, reporting every
  mismatch.

Any concurrent execution (the threaded DEWE v2 daemons, arbitrary worker
counts, fault injection with at-least-once re-execution) must produce
digests identical to the reference, provided the job actions are
deterministic and idempotent — which re-executable scientific codes like
the Montage tools are.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.workflow.dag import Workflow

__all__ = ["run_reference", "outputs_digest", "verify_equivalence"]

_PathLike = Union[str, Path]


def run_reference(workflow: Workflow) -> int:
    """Execute every job action sequentially in topological order.

    The ground-truth executor: no concurrency, no retries, no engine.
    Callable actions are invoked; argv-list actions run as subprocesses
    (mirroring :class:`~repro.dewe.executors.SubprocessExecutor`).
    Returns the number of actions executed.
    """
    import subprocess

    executed = 0
    for job in workflow.topological_order():
        if job.action is None:
            continue
        if callable(job.action):
            job.action()
        else:
            subprocess.run([str(a) for a in job.action], check=True)
        executed += 1
    return executed


def outputs_digest(
    workflow: Workflow, workdir: _PathLike, kind: str = "output"
) -> Dict[str, Tuple[int, str]]:
    """``{file_name: (size, md5)}`` for the workflow's ``kind`` files.

    File names are resolved relative to ``workdir`` (the workflow folder
    on the shared file system).  Missing files raise — a missing output
    is a failed run, not a mismatch.
    """
    root = Path(workdir)
    digests: Dict[str, Tuple[int, str]] = {}
    for f in workflow.files().values():
        if f.kind != kind:
            continue
        path = root / f.name
        if not path.exists():
            raise FileNotFoundError(f"declared {kind} file missing: {path}")
        data = path.read_bytes()
        digests[f.name] = (len(data), hashlib.md5(data).hexdigest())
    return digests


def verify_equivalence(
    reference: Dict[str, Tuple[int, str]],
    candidate: Dict[str, Tuple[int, str]],
) -> list:
    """Compare two digest maps; returns a list of human-readable
    mismatch descriptions (empty = equivalent)."""
    problems = []
    for name in sorted(set(reference) | set(candidate)):
        ref = reference.get(name)
        cand = candidate.get(name)
        if ref is None:
            problems.append(f"{name}: extra output (not in reference)")
        elif cand is None:
            problems.append(f"{name}: missing output")
        elif ref[0] != cand[0]:
            problems.append(f"{name}: size {cand[0]} != reference {ref[0]}")
        elif ref[1] != cand[1]:
            problems.append(f"{name}: MD5 {cand[1]} != reference {ref[1]}")
    return problems
