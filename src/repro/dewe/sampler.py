"""Background metrics sampler for the real threaded system.

The paper ran "a background monitoring process on all worker nodes to
collect operating system level metrics every 3 seconds using mpstat and
iostat" (§IV.A).  For the threaded DEWE v2 this sampler records the
worker daemon's concurrent-job count (Fig 6a's "concurrent threads") on a
fixed interval, without touching the daemons' hot path.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.dewe.worker import WorkerDaemon

__all__ = ["WorkerSampler"]


class WorkerSampler:
    """Samples one or more worker daemons' active-job counts."""

    def __init__(self, workers: List[WorkerDaemon], interval: float = 0.05):
        if not workers:
            raise ValueError("need at least one worker to sample")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.workers = list(workers)
        self.interval = interval
        self.samples: List[Tuple[float, Tuple[int, ...]]] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0

    def start(self) -> "WorkerSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._t0 = time.monotonic()
        self._thread = threading.Thread(
            target=self._loop, name="dewe-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "WorkerSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.is_set():
            t = time.monotonic() - self._t0
            counts = tuple(w.active_jobs for w in self.workers)
            self.samples.append((t, counts))
            self._stop.wait(self.interval)

    # -- analysis ------------------------------------------------------------
    @property
    def peak_concurrency(self) -> int:
        """Highest total active-job count observed (Fig 6a's peak)."""
        if not self.samples:
            return 0
        return max(sum(counts) for _t, counts in self.samples)

    def series(self) -> Tuple[List[float], List[int]]:
        """(times, total active jobs) for plotting."""
        times = [t for t, _ in self.samples]
        totals = [sum(c) for _, c in self.samples]
        return times, totals
