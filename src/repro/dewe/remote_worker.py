"""Standalone worker-daemon process.

Run one DEWE v2 worker daemon in its own OS process, connected to a
:class:`~repro.mq.tcpbroker.BrokerServer` — the deployment shape of the
paper, where every node runs a worker daemon whose only configuration is
the broker address::

    python -m repro.dewe.remote_worker --host 127.0.0.1 --port 5672 \
        --name node-7 --slots 32

The process exits on SIGTERM/SIGINT or after ``--idle-exit`` seconds
without executing a job (useful for tests and elastic scale-in).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.dewe.config import DeweConfig
from repro.dewe.executors import CallableExecutor, NullExecutor, SubprocessExecutor
from repro.dewe.worker import WorkerDaemon
from repro.mq.tcpbroker import RemoteBroker

EXECUTORS = {
    "callable": CallableExecutor,
    "subprocess": SubprocessExecutor,
    "null": NullExecutor,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description="Run a DEWE v2 worker daemon."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--name", default="remote-worker")
    parser.add_argument("--slots", type=int, default=0,
                        help="concurrent jobs; 0 = one per CPU")
    parser.add_argument("--executor", choices=sorted(EXECUTORS), default="subprocess")
    parser.add_argument("--idle-exit", type=float, default=0.0,
                        help="exit after this many idle seconds (0 = run forever)")
    parser.add_argument("--heartbeat", type=float, default=0.0,
                        help="renew the liveness lease this often in seconds "
                             "(0 = no heartbeats; docs/FAULTS.md)")
    args = parser.parse_args(argv)

    config = DeweConfig(
        max_concurrent_jobs=args.slots, heartbeat_interval=args.heartbeat
    )
    broker = RemoteBroker(args.host, args.port)
    worker = WorkerDaemon(
        broker, EXECUTORS[args.executor](), config, name=args.name
    ).start()
    print(f"worker {args.name} connected to {args.host}:{args.port}", flush=True)

    last_progress = time.monotonic()
    seen = 0
    try:
        while True:
            # Condition-wait on the worker's progress counters instead of
            # polling them (lint CL008); wakes on every job outcome.
            done = worker.wait_progress(seen, timeout=0.25)
            if done > seen:
                seen = done
                last_progress = time.monotonic()
            if args.idle_exit > 0 and time.monotonic() - last_progress > args.idle_exit:
                break
    except KeyboardInterrupt:
        pass
    finally:
        worker.stop()
        broker.close()
    print(f"worker {args.name} exiting after {seen} jobs", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
