"""Folder-based workflow packaging (paper §III.B).

"A workflow is encapsulated in a folder on the shared file system,
including the DAG file, the executable binaries, as well as the input
and output files."  This module implements that convention for the real
engine: a workflow folder holds

* ``workflow.json`` (or ``workflow.dax``) — the DAG with the cost model;
* ``bin/`` — executables referenced by subprocess jobs (optional);
* ``inputs/``, ``outputs/`` — data directories (optional).

The submission application can then be pointed at folders, matching the
paper's two-parameter interface (workflow name, folder path).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.dewe.submit import submit_workflow
from repro.mq.broker import Broker
from repro.workflow.dag import Workflow
from repro.workflow.serialize import load_dax, load_json, save_json
from repro.workflow.validation import validate_workflow

__all__ = ["create_workflow_folder", "load_workflow_folder", "submit_workflow_folder"]

_PathLike = Union[str, Path]

DAG_JSON = "workflow.json"
DAG_DAX = "workflow.dax"


def create_workflow_folder(workflow: Workflow, folder: _PathLike) -> Path:
    """Materialise the folder layout for ``workflow``; returns its path."""
    root = Path(folder)
    if root.exists() and any(root.iterdir()):
        raise FileExistsError(f"workflow folder {root} exists and is not empty")
    for sub in ("bin", "inputs", "outputs"):
        (root / sub).mkdir(parents=True, exist_ok=True)
    save_json(workflow, root / DAG_JSON)
    return root


def load_workflow_folder(folder: _PathLike) -> Workflow:
    """Parse the DAG file of a workflow folder (JSON first, then DAX)."""
    root = Path(folder)
    if not root.is_dir():
        raise FileNotFoundError(f"workflow folder not found: {root}")
    json_path = root / DAG_JSON
    dax_path = root / DAG_DAX
    if json_path.exists():
        workflow = load_json(json_path)
    elif dax_path.exists():
        workflow = load_dax(dax_path)
    else:
        raise FileNotFoundError(
            f"no DAG file in {root}: expected {DAG_JSON} or {DAG_DAX}"
        )
    return validate_workflow(workflow)


def submit_workflow_folder(broker: Broker, folder: _PathLike) -> str:
    """The paper's submission interface: hand a folder to the master."""
    root = Path(folder)
    workflow = load_workflow_folder(root)
    return submit_workflow(broker, workflow, folder=str(root))
