"""Job executors for the real worker daemon.

An executor turns a :class:`~repro.workflow.dag.Job` into actual work.
Three are provided:

* :class:`CallableExecutor` — runs ``job.action`` (a Python callable);
  this is the default for library users embedding computations.
* :class:`SubprocessExecutor` — runs ``job.action`` as an argv list via
  ``subprocess`` (how real Montage binaries would be invoked).
* :class:`NullExecutor` — completes instantly (control-plane tests) or
  after a scaled sleep (``time_scale > 0``) to emulate job duration.
"""

from __future__ import annotations

import subprocess
import time
from typing import Protocol

from repro.workflow.dag import Job

__all__ = ["Executor", "CallableExecutor", "SubprocessExecutor", "NullExecutor"]


class Executor(Protocol):
    """Executes one job; raises on failure."""

    def run(self, job: Job) -> None:  # pragma: no cover - protocol
        ...


class CallableExecutor:
    """Runs ``job.action()``; jobs without an action complete trivially."""

    def run(self, job: Job) -> None:
        if job.action is not None:
            job.action()


class SubprocessExecutor:
    """Runs ``job.action`` as an argv list in a subprocess.

    ``job.action`` must be a sequence like ``["mProjectPP", "in.fits",
    "out.fits"]``.  Non-zero exit raises ``CalledProcessError`` which the
    worker converts into a FAILED ack.
    """

    def __init__(self, check: bool = True, timeout: float | None = None):
        self.check = check
        self.timeout = timeout

    def run(self, job: Job) -> None:
        argv = job.action
        if argv is None:
            return
        if callable(argv):
            raise TypeError(
                f"job {job.id}: SubprocessExecutor needs an argv list, got a callable"
            )
        subprocess.run(list(argv), check=self.check, timeout=self.timeout)


class NullExecutor:
    """No-op executor, optionally sleeping ``runtime * time_scale``.

    With ``time_scale=0.001`` a 600-second workflow plays back in ~0.6 s
    of wall time, preserving relative job durations — used by the
    robustness tests to exercise timeouts without real work.
    """

    def __init__(self, time_scale: float = 0.0):
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        self.time_scale = time_scale

    def run(self, job: Job) -> None:
        if self.time_scale > 0 and job.runtime > 0:
            time.sleep(job.runtime * self.time_scale)
