"""DAG state machine shared by the real master daemon and the simulated
pull engine.

Tracks, per job: remaining unfinished parents, lifecycle status, delivery
attempt counter and completion deadline.  The logic implements the paper's
at-least-once execution discipline:

* a job becomes **eligible** when its last parent completes and is then
  published (QUEUED);
* a **running** ack arms the job's timeout ("a job can have a user-defined
  timeout value or a system-wide default timeout value", §III.B);
* if the completion ack misses the deadline, the job is **resubmitted**
  with an incremented attempt counter;
* a completion ack from *any* attempt completes the job (the original
  worker may still finish after a resubmission — first ack wins, duplicates
  are ignored).

Time is an argument everywhere, so the same class serves wall-clock
threads and the DES.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional

from repro.workflow.dag import Workflow
from repro.workflow.validation import validate_workflow

__all__ = ["JobStatus", "WorkflowState"]


class JobStatus(Enum):
    WAITING = "waiting"      # has unfinished parents
    QUEUED = "queued"        # published to the job-dispatching topic
    RUNNING = "running"      # checked out by a worker (running ack seen)
    COMPLETED = "completed"


class WorkflowState:
    """Execution state of one submitted workflow."""

    def __init__(
        self,
        workflow: Workflow,
        default_timeout: float = 600.0,
        validate: bool = True,
    ):
        if default_timeout <= 0:
            raise ValueError(f"default_timeout must be positive, got {default_timeout}")
        if validate:
            validate_workflow(workflow)
        self.workflow = workflow
        self.name = workflow.name
        self.default_timeout = default_timeout
        self.pending: Dict[str, int] = {}
        self.status: Dict[str, JobStatus] = {}
        self.attempt: Dict[str, int] = {}
        self.deadline: Dict[str, float] = {}
        self.resubmissions = 0
        self._n_completed = 0
        for job in workflow.jobs.values():
            self.pending[job.id] = len(job.parents)
            self.status[job.id] = JobStatus.WAITING

    # -- lifecycle ---------------------------------------------------------
    def initial_ready(self) -> List[str]:
        """Jobs eligible at submission; marks them QUEUED."""
        ready = []
        for job_id, count in self.pending.items():
            if count == 0 and self.status[job_id] is JobStatus.WAITING:
                self.status[job_id] = JobStatus.QUEUED
                self.attempt[job_id] = 1
                ready.append(job_id)
        return ready

    def on_running(self, job_id: str, attempt: int, now: float) -> bool:
        """Handle a running ack; returns False for stale/duplicate acks."""
        status = self.status[job_id]
        if status is JobStatus.COMPLETED:
            return False
        if attempt != self.attempt[job_id]:
            return False  # ack from a superseded delivery
        self.status[job_id] = JobStatus.RUNNING
        timeout = self.workflow.job(job_id).timeout or self.default_timeout
        self.deadline[job_id] = now + timeout
        return True

    def on_completed(self, job_id: str, attempt: int) -> List[str]:
        """Handle a completion ack; returns newly eligible job ids (QUEUED).

        Completion is accepted from any attempt — with at-least-once
        delivery the first finisher wins and later duplicates are no-ops.
        """
        if self.status[job_id] is JobStatus.COMPLETED:
            return []
        self.status[job_id] = JobStatus.COMPLETED
        self.deadline.pop(job_id, None)
        self._n_completed += 1
        newly_ready: List[str] = []
        for child_id in self.workflow.job(job_id).children:
            self.pending[child_id] -= 1
            if self.pending[child_id] == 0:
                self.status[child_id] = JobStatus.QUEUED
                self.attempt[child_id] = 1
                newly_ready.append(child_id)
        return newly_ready

    def on_failed(self, job_id: str, attempt: int) -> Optional[str]:
        """Handle a failure ack: resubmit immediately (attempt + 1).

        Returns the job id to republish, or ``None`` for stale acks.
        """
        if self.status[job_id] is JobStatus.COMPLETED:
            return None
        if attempt != self.attempt[job_id]:
            return None
        self.attempt[job_id] += 1
        self.status[job_id] = JobStatus.QUEUED
        self.deadline.pop(job_id, None)
        self.resubmissions += 1
        return job_id

    def expired(self, now: float) -> List[str]:
        """Jobs whose completion ack missed its deadline; re-QUEUED with a
        fresh attempt number, ready to be republished."""
        out = []
        for job_id, deadline in list(self.deadline.items()):
            if now >= deadline and self.status[job_id] is JobStatus.RUNNING:
                self.attempt[job_id] += 1
                self.status[job_id] = JobStatus.QUEUED
                del self.deadline[job_id]
                self.resubmissions += 1
                out.append(job_id)
        return out

    # -- inspection ----------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.status)

    @property
    def n_completed(self) -> int:
        return self._n_completed

    @property
    def is_complete(self) -> bool:
        return self._n_completed == len(self.status)

    def current_attempt(self, job_id: str) -> int:
        return self.attempt.get(job_id, 0)

    def counts(self) -> Dict[str, int]:
        out = {s.value: 0 for s in JobStatus}
        for status in self.status.values():
            out[status.value] += 1
        return out
