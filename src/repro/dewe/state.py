"""DAG state machine shared by the real master daemon and the simulated
pull engine.

Tracks, per job: remaining unfinished parents, lifecycle status, delivery
attempt counter and completion deadline.  The logic implements the paper's
at-least-once execution discipline:

* a job becomes **eligible** when its last parent completes and is then
  published (QUEUED);
* a **running** ack arms the job's timeout ("a job can have a user-defined
  timeout value or a system-wide default timeout value", §III.B) — with a
  ``redispatch_lost`` retry policy the deadline is armed already at
  dispatch, so lost dispatch messages are recovered too;
* if the completion ack misses the deadline, the job is **resubmitted**
  with an incremented attempt counter;
* a completion ack from *any* attempt completes the job (the original
  worker may still finish after a resubmission — first ack wins, duplicates
  are ignored and counted in ``duplicate_acks``);
* a :class:`~repro.faults.retry.RetryPolicy` attempt budget turns a job
  that keeps failing or timing out into a **dead letter** instead of
  livelocking the workflow; descendants that can never become eligible are
  cascaded into the dead-letter list, and the workflow *settles* once
  every job is completed or dead.

Time is an argument everywhere, so the same class serves wall-clock
threads and the DES.

**Arena storage** (docs/PERFORMANCE.md): the dense per-job state — status,
dependency count, attempt counter — lives in flat per-member arrays
(``bytearray`` / ``array``) indexed through the shared
:class:`~repro.workflow.dag.SkeletonArena`, not in per-job dict entries.
A 200 x 6.0-degree Montage ensemble holds 1.7M jobs; three dicts per
member cost hundreds of MB and a dict-build per member at admission,
while the arenas cost ~9 bytes per job and one ``memcpy``-speed copy.
The public ``status`` / ``pending`` / ``attempt`` attributes remain
mapping-shaped *views* over the arrays, so the sanitizer, journal,
repriority layer and tests keep their dict idioms unchanged.  The sparse
maps — armed ``deadline`` entries, ``queued_at`` ages — stay real dicts:
they hold only in-flight jobs, never all of them.
"""

from __future__ import annotations

from array import array
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

import repro.analysis.concurrency.recorder as _conc
import repro.analysis.sanitizer as _sanitizer
from repro.faults.retry import DeadLetterEntry, RetryPolicy
from repro.workflow.dag import Workflow
from repro.workflow.validation import validate_workflow

__all__ = ["JobStatus", "WorkflowState"]


class JobStatus(Enum):
    WAITING = "waiting"      # has unfinished parents
    QUEUED = "queued"        # published to the job-dispatching topic
    RUNNING = "running"      # checked out by a worker (running ack seen)
    COMPLETED = "completed"
    DEAD = "dead"            # dead-lettered: attempt budget exhausted


# Arena status codes (bytearray cells).  WAITING must be 0 so a fresh
# ``bytearray(n)`` is "every job waiting" without an initialisation pass.
_WAITING, _QUEUED, _RUNNING, _COMPLETED, _DEAD = range(5)
_STATUS_BY_CODE: Tuple[JobStatus, ...] = (
    JobStatus.WAITING,
    JobStatus.QUEUED,
    JobStatus.RUNNING,
    JobStatus.COMPLETED,
    JobStatus.DEAD,
)
_CODE_BY_STATUS: Dict[JobStatus, int] = {
    status: code for code, status in enumerate(_STATUS_BY_CODE)
}
_CODE_BY_VALUE: Dict[str, int] = {
    status.value: code for code, status in enumerate(_STATUS_BY_CODE)
}
_VALUE_BY_CODE: Tuple[str, ...] = tuple(s.value for s in _STATUS_BY_CODE)


class _StatusView:
    """Mapping-shaped view of the status bytearray (job id -> JobStatus)."""

    __slots__ = ("_arr", "_index_of", "_job_ids")

    def __init__(self, arr: bytearray, arena):
        self._arr = arr
        self._index_of = arena.index_of
        self._job_ids = arena.job_ids

    def __getitem__(self, job_id: str) -> JobStatus:
        return _STATUS_BY_CODE[self._arr[self._index_of[job_id]]]

    def __setitem__(self, job_id: str, status: JobStatus) -> None:
        self._arr[self._index_of[job_id]] = _CODE_BY_STATUS[status]

    def get(self, job_id: str, default=None):
        i = self._index_of.get(job_id)
        return default if i is None else _STATUS_BY_CODE[self._arr[i]]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._index_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._job_ids)

    def __len__(self) -> int:
        return len(self._arr)

    def keys(self) -> Tuple[str, ...]:
        return self._job_ids

    def values(self) -> List[JobStatus]:
        by_code = _STATUS_BY_CODE
        return [by_code[code] for code in self._arr]

    def items(self) -> List[Tuple[str, JobStatus]]:
        by_code = _STATUS_BY_CODE
        return [
            (job_id, by_code[code])
            for job_id, code in zip(self._job_ids, self._arr)
        ]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, _StatusView):
            return self._job_ids == other._job_ids and self._arr == other._arr
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"_StatusView({dict(self.items())!r})"


class _PendingView:
    """Mapping-shaped view of the pending-parents array (job id -> int)."""

    __slots__ = ("_arr", "_index_of", "_job_ids")

    def __init__(self, arr: array, arena):
        self._arr = arr
        self._index_of = arena.index_of
        self._job_ids = arena.job_ids

    def __getitem__(self, job_id: str) -> int:
        return self._arr[self._index_of[job_id]]

    def __setitem__(self, job_id: str, count: int) -> None:
        self._arr[self._index_of[job_id]] = count

    def get(self, job_id: str, default=None):
        i = self._index_of.get(job_id)
        return default if i is None else self._arr[i]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._index_of

    def __iter__(self) -> Iterator[str]:
        return iter(self._job_ids)

    def __len__(self) -> int:
        return len(self._arr)

    def keys(self) -> Tuple[str, ...]:
        return self._job_ids

    def values(self) -> List[int]:
        return list(self._arr)

    def items(self) -> List[Tuple[str, int]]:
        return list(zip(self._job_ids, self._arr))

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, _PendingView):
            return self._job_ids == other._job_ids and self._arr == other._arr
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"_PendingView({dict(self.items())!r})"


class _AttemptView:
    """Mapping-shaped view of the attempt array (job id -> int).

    The dict era only held entries for jobs that had been queued at least
    once; the arena holds a cell per job with 0 meaning "never queued".
    Iteration therefore skips zeros, so ``dict(state.attempt)`` and the
    snapshot/journal digests keep their historical shape, while
    ``attempt[job_id]`` returns 0 instead of raising for untouched jobs
    (every call site already used ``.get(job_id, 0)`` for that case).
    """

    __slots__ = ("_arr", "_index_of", "_job_ids")

    def __init__(self, arr: array, arena):
        self._arr = arr
        self._index_of = arena.index_of
        self._job_ids = arena.job_ids

    def __getitem__(self, job_id: str) -> int:
        return self._arr[self._index_of[job_id]]

    def __setitem__(self, job_id: str, count: int) -> None:
        self._arr[self._index_of[job_id]] = count

    def get(self, job_id: str, default=None):
        i = self._index_of.get(job_id)
        return default if i is None else self._arr[i]

    def __contains__(self, job_id: str) -> bool:
        i = self._index_of.get(job_id)
        return i is not None and self._arr[i] != 0

    def __iter__(self) -> Iterator[str]:
        arr = self._arr
        return (job_id for job_id, a in zip(self._job_ids, arr) if a)

    def __len__(self) -> int:
        return len(self._arr) - self._arr.count(0)

    def keys(self) -> List[str]:
        return [job_id for job_id, a in zip(self._job_ids, self._arr) if a]

    def values(self) -> List[int]:
        return [a for a in self._arr if a]

    def items(self) -> List[Tuple[str, int]]:
        return [
            (job_id, a) for job_id, a in zip(self._job_ids, self._arr) if a
        ]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, _AttemptView):
            return self._job_ids == other._job_ids and self._arr == other._arr
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"_AttemptView({dict(self.items())!r})"


class WorkflowState:
    """Execution state of one submitted workflow."""

    def __init__(
        self,
        workflow: Workflow,
        default_timeout: float = 600.0,
        validate: bool = True,
        retry: Optional[RetryPolicy] = None,
        tenant: str = "",
        sla: str = "",
    ):
        if default_timeout <= 0:
            raise ValueError(f"default_timeout must be positive, got {default_timeout}")
        if validate:
            validate_workflow(workflow)
        self.workflow = workflow
        self.name = workflow.name
        self.default_timeout = default_timeout
        self.retry = retry or RetryPolicy()
        #: Service-plane attribution (empty for single-owner runs):
        #: stamped on every dead-letter entry so post-mortems can say
        #: *whose* work was lost and at which SLA class.
        self.tenant = tenant
        self.sla = sla
        self.deadline: Dict[str, float] = {}
        self.resubmissions = 0
        #: Completion (or running) acks ignored as duplicates/stale —
        #: nonzero under at-least-once delivery with duplicated messages.
        self.duplicate_acks = 0
        self.dead_letters: List[DeadLetterEntry] = []
        #: Jobs re-run (or inputs re-staged) to regenerate lost/corrupt
        #: data files — the data-aware recovery counter.
        self.data_recoveries = 0
        #: producer job id -> consumers WAITING on its re-completion to
        #: regenerate a lost/corrupt intermediate file.
        self.regen_waiters: Dict[str, Set[str]] = {}
        #: Live-reprioritization inputs (set by the engine at admission;
        #: only priority-aware runs read them).  ``arrival`` anchors the
        #: member's deadline — ``arrival + deadline_factor * cp_total``
        #: — and ``queued_at`` records each job's first dispatch time
        #: for the starvation-avoidance aging term.  ``queued_at`` is
        #: deliberately not snapshotted: after a failover ages restart
        #: from the takeover, which is deterministic within a run.
        #: ``track_queue_age`` is flipped *off* by engines running
        #: without a repriority policy: nothing ever reads the ages
        #: there, so they skip the per-dispatch dict write entirely.
        self.arrival = 0.0
        self.deadline_factor = 1.0
        self.track_queue_age = True
        self.queued_at: Dict[str, float] = {}
        self._cp_total: Optional[float] = None
        self._n_completed = 0
        self._n_dead = 0
        # Copy-on-write per-member state: the shared skeleton arena
        # provides the structure and the initial dependency counts once
        # per jobs table; each member gets its own flat mutable arrays
        # (never aliased — sanitizer-checked).
        skeleton = workflow.skeleton()
        arena = skeleton.arena()
        self._arena = arena
        self._status_arr = bytearray(arena.n)  # all cells _WAITING
        self._pending_arr = array("i", arena.initial_pending)
        self._attempt_arr = array("I", bytes(4 * arena.n))
        self.status = _StatusView(self._status_arr, arena)
        self.pending = _PendingView(self._pending_arr, arena)
        self.attempt = _AttemptView(self._attempt_arr, arena)
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_cow_isolation(self, skeleton)

    def _trace(self, op: str, site: str) -> None:
        """Report a status-map access to the race recorder, if any.

        The state machine itself is lock-free by design (its callers —
        master daemon, pull engine — serialize access); registering the
        accesses lets the happens-before detector prove that claim for
        every recorded run instead of trusting it.
        """
        rec = _conc.active()
        if rec is not None:
            hook = rec.on_read if op == "read" else rec.on_write
            hook("wfstate.status", id(self), site)

    # -- lifecycle ---------------------------------------------------------
    def initial_ready(self) -> List[str]:
        """Jobs eligible at submission; marks them QUEUED."""
        self._trace("write", "state.initial_ready")
        ready = []
        status_arr = self._status_arr
        attempt_arr = self._attempt_arr
        job_ids = self._arena.job_ids
        for i in self._arena.root_indices:
            if status_arr[i] == _WAITING:
                status_arr[i] = _QUEUED
                attempt_arr[i] = 1
                ready.append(job_ids[i])
        return ready

    def _timeout_of(self, job_id: str) -> float:
        return self._timeout_at(self._arena.index_of[job_id])

    def _timeout_at(self, i: int) -> float:
        timeout = self._arena.timeouts[i]
        return timeout if timeout > 0.0 else self.default_timeout

    def exhausted(self, job_id: str) -> bool:
        """Attempt budget check: the job's own ``max_attempts`` override
        when set (0 = unlimited), else the shared retry policy."""
        return self._exhausted_at(self._arena.index_of[job_id])

    def _exhausted_at(self, i: int) -> bool:
        limit = self._arena.max_attempts[i]
        attempts = self._attempt_arr[i]
        if limit >= 0:
            return limit > 0 and attempts >= limit
        return self.retry.exhausted(attempts)

    def mark_dispatched(self, job_id: str, now: float, force: bool = False) -> None:
        """Arm the dispatch-loss deadline when the policy asks for it.

        Called by the master/engine right before publishing the job.  A
        ``redispatch_lost`` policy treats "published but never reported
        running" exactly like "running but never reported completed", so
        a dispatch message swallowed by a lossy broker is resubmitted by
        the ordinary timeout sweep.

        ``force`` arms the deadline regardless of the policy: the lease
        protocol requires it, because a worker pulling through an
        asymmetric partition consumes deliveries whose running acks are
        then rejected as stale — without a deadline such a job would
        stay QUEUED forever (it never reaches the fencing requeue, which
        only covers validly-acked assignments).
        """
        self._trace("write", "state.mark_dispatched")
        if self.track_queue_age:
            # First dispatch time, kept across resubmissions: the aging
            # term measures how long the job has been waiting overall.
            self.queued_at.setdefault(job_id, now)
        if not (force or self.retry.redispatch_lost):
            return
        i = self._arena.index_of[job_id]
        if self._status_arr[i] == _QUEUED:
            self.deadline[job_id] = now + self._timeout_at(i)

    # -- live reprioritization ---------------------------------------------
    def queued_jobs(self) -> List[str]:
        """Job ids currently QUEUED (published, not yet running), in the
        deterministic jobs-table insertion order."""
        self._trace("read", "state.queued_jobs")
        job_ids = self._arena.job_ids
        return [
            job_ids[i]
            for i, code in enumerate(self._status_arr)
            if code == _QUEUED
        ]

    def job_priority(self, job_id: str, now: float, policy, base: float = 0.0) -> float:
        """Current priority of one queued job under ``policy``.

        ``base`` is the SLA band (:func:`repro.mq.priority.base_band`);
        the policy adds a bounded score from the job's critical-path
        seconds remaining, the member's deadline slack
        (``arrival + deadline_factor * cp_total - now - cp_remaining``)
        and the job's queue age.  Pure function of simulated time and
        structure — same seed, same priorities.
        """
        skeleton = self.workflow.skeleton()
        cp_remaining = skeleton.critical_path().get(job_id, 0.0)
        total = self._cp_total
        if total is None:
            total = self._cp_total = skeleton.critical_path_total()
        slack = (self.arrival + self.deadline_factor * total) - now - cp_remaining
        age = now - self.queued_at.get(job_id, now)
        return base + policy.score(cp_remaining, slack, age)

    def on_running(self, job_id: str, attempt: int, now: float) -> bool:
        """Handle a running ack; returns False for stale/duplicate acks."""
        self._trace("write", "state.on_running")
        i = self._arena.index_of[job_id]
        status_arr = self._status_arr
        code = status_arr[i]
        if code == _COMPLETED or code == _DEAD:
            self.duplicate_acks += 1
            return False
        # A state rewound to a checkpoint (standby-master takeover) may
        # see late acks for jobs it has not dispatched yet — attempt 0
        # means every real attempt number is stale.
        if attempt != self._attempt_arr[i]:
            self.duplicate_acks += 1
            return False  # ack from a superseded delivery
        status_arr[i] = _RUNNING
        self.deadline[job_id] = now + self._timeout_at(i)
        return True

    def on_completed(self, job_id: str, attempt: int) -> List[str]:
        """Handle a completion ack; returns newly eligible job ids (QUEUED).

        Completion is accepted from any attempt — with at-least-once
        delivery the first finisher wins and later duplicates are no-ops.
        A completion for a job already dead-lettered is likewise dropped:
        its descendants have been cascaded and must not be revived.
        """
        self._trace("write", "state.on_completed")
        arena = self._arena
        i = arena.index_of[job_id]
        status_arr = self._status_arr
        code = status_arr[i]
        if code == _COMPLETED or code == _DEAD:
            self.duplicate_acks += 1
            return []
        status_arr[i] = _COMPLETED
        self.deadline.pop(job_id, None)
        if self.queued_at:
            self.queued_at.pop(job_id, None)
        self._n_completed += 1
        newly_ready: List[str] = []
        pending_arr = self._pending_arr
        if self.regen_waiters:
            waiters = self.regen_waiters.pop(job_id, None)
            if waiters is not None:
                # Re-completion of a producer re-run to regenerate a data
                # file: only the registered waiters were re-blocked on it —
                # its ordinary children already had their pending count
                # decremented at the first completion.  Waiters keep their
                # (bumped) attempt number so stale pre-recovery acks stay
                # stale.
                index_of = arena.index_of
                for child_id in sorted(waiters):
                    ci = index_of[child_id]
                    pending_arr[ci] -= 1
                    if pending_arr[ci] == 0 and status_arr[ci] == _WAITING:
                        status_arr[ci] = _QUEUED
                        newly_ready.append(child_id)
                return newly_ready
        attempt_arr = self._attempt_arr
        job_ids = arena.job_ids
        for ci in arena.children[i]:
            remaining = pending_arr[ci] - 1
            pending_arr[ci] = remaining
            if remaining == 0 and status_arr[ci] == _WAITING:
                status_arr[ci] = _QUEUED
                attempt_arr[ci] = 1
                newly_ready.append(job_ids[ci])
        return newly_ready

    def on_failed(self, job_id: str, attempt: int, now: float = 0.0) -> Optional[str]:
        """Handle a failure ack: resubmit (attempt + 1) or dead-letter.

        Returns the job id to republish, or ``None`` for stale acks and
        for jobs whose attempt budget is exhausted (the caller should
        then check :attr:`is_settled`).
        """
        self._trace("write", "state.on_failed")
        i = self._arena.index_of[job_id]
        status_arr = self._status_arr
        code = status_arr[i]
        if code == _COMPLETED or code == _DEAD:
            return None
        if attempt != self._attempt_arr[i]:
            return None  # stale ack (superseded, or state rewound)
        if self._exhausted_at(i):
            self._dead_letter(job_id, "failed", now)
            return None
        self._attempt_arr[i] += 1
        status_arr[i] = _QUEUED
        self.deadline.pop(job_id, None)
        self.resubmissions += 1
        return job_id

    def on_corrupt(
        self,
        job_id: str,
        attempt: int,
        producers: List[str],
        now: float = 0.0,
    ) -> Optional[List[str]]:
        """Handle a data-integrity ack: a worker found the consumer's
        input files corrupt or missing.

        ``producers`` are the jobs whose outputs must be regenerated
        (deduplicated, in detection order); files with no producer (raw
        inputs) are re-staged by the caller and need no entry here.
        Returns ``None`` for stale/duplicate acks, else the job ids to
        (re)publish: the consumer itself when only raw inputs were lost,
        else the minimal set of completed producers to re-run — the
        consumer goes back to WAITING on them and is re-queued by
        :meth:`on_completed`'s regeneration path.
        """
        self._trace("write", "state.on_corrupt")
        arena = self._arena
        index_of = arena.index_of
        i = index_of[job_id]
        status_arr = self._status_arr
        attempt_arr = self._attempt_arr
        code = status_arr[i]
        if code == _COMPLETED or code == _DEAD:
            self.duplicate_acks += 1
            return None
        if attempt != attempt_arr[i]:
            self.duplicate_acks += 1
            return None  # stale ack (superseded, or state rewound)
        self.data_recoveries += 1
        # Bump the consumer's attempt so acks from the aborted delivery
        # (or duplicated broker messages) are dropped as stale.
        attempt_arr[i] += 1
        self.deadline.pop(job_id, None)
        self.resubmissions += 1
        if not producers:
            status_arr[i] = _QUEUED
            return [job_id]
        status_arr[i] = _WAITING
        to_dispatch: List[str] = []
        for producer_id in producers:
            pi = index_of[producer_id]
            waiters = self.regen_waiters.setdefault(producer_id, set())
            if job_id not in waiters:
                waiters.add(job_id)
                self._pending_arr[i] += 1
            producer_code = status_arr[pi]
            if producer_code == _COMPLETED:
                if self._exhausted_at(pi):
                    # Cannot regenerate within the attempt budget: the
                    # producer dead-letters and the cascade takes the
                    # WAITING consumer down as upstream-dead.  It is no
                    # longer completed — its data is gone for good.
                    self._n_completed -= 1
                    self._dead_letter(producer_id, "data-loss", now)
                    continue
                # Un-complete the producer: it re-runs to rewrite its
                # outputs.  Its ordinary children keep their state; only
                # the registered waiters block on the re-completion.
                status_arr[pi] = _QUEUED
                self._n_completed -= 1
                attempt_arr[pi] += 1
                self.resubmissions += 1
                to_dispatch.append(producer_id)
            elif producer_code == _DEAD:
                self._dead_letter_waiters(producer_id, now)
            # QUEUED / RUNNING / WAITING: already being (re)generated —
            # the waiter registration above is all that is needed.
        return to_dispatch

    def on_lease_expired(
        self, job_id: str, attempt: int, now: float = 0.0
    ) -> Optional[str]:
        """The worker holding ``job_id``'s delivery lost its lease.

        The liveness plane's recovery transition (docs/FAULTS.md): the
        master fenced the worker's heartbeat lease, so the delivery is
        presumed lost — hung worker, network partition, silent death —
        and the job is re-QUEUED with a fresh attempt number, making any
        late ack from the fenced delivery stale.  Returns the job id to
        republish; ``None`` for stale calls, already-settled jobs, and
        exhausted attempt budgets (dead-letter ``lease-expired``).
        """
        self._trace("write", "state.on_lease_expired")
        i = self._arena.index_of[job_id]
        status_arr = self._status_arr
        code = status_arr[i]
        if code != _RUNNING and code != _QUEUED:
            return None
        if attempt != self._attempt_arr[i]:
            return None
        if self._exhausted_at(i):
            self._dead_letter(job_id, "lease-expired", now)
            return None
        self._attempt_arr[i] += 1
        status_arr[i] = _QUEUED
        self.deadline.pop(job_id, None)
        self.resubmissions += 1
        return job_id

    def requeue_in_flight(self, now: float = 0.0) -> List[str]:
        """Requeue every QUEUED/RUNNING job with a fresh attempt number.

        The master-restart path: after restoring from a checkpoint, any
        job that was in flight at the crash may or may not still be held
        by a worker — at-least-once semantics make blind redelivery
        safe (a late completion from the old delivery is absorbed as a
        duplicate).  Jobs out of attempt budget dead-letter instead.
        """
        self._trace("write", "state.requeue_in_flight")
        out: List[str] = []
        status_arr = self._status_arr
        job_ids = self._arena.job_ids
        for i, code in enumerate(status_arr):
            if code == _QUEUED or code == _RUNNING:
                job_id = job_ids[i]
                if self._exhausted_at(i):
                    self._dead_letter(job_id, "master-crash", now)
                    continue
                self._attempt_arr[i] += 1
                status_arr[i] = _QUEUED
                self.deadline.pop(job_id, None)
                self.resubmissions += 1
                out.append(job_id)
        return out

    def expired(self, now: float) -> List[str]:
        """Jobs whose completion ack missed its deadline; re-QUEUED with a
        fresh attempt number, ready to be republished.  Jobs that exhaust
        their attempt budget are dead-lettered instead (and not returned)."""
        self._trace("write", "state.expired")
        out = []
        index_of = self._arena.index_of
        status_arr = self._status_arr
        for job_id, deadline in list(self.deadline.items()):
            i = index_of[job_id]
            code = status_arr[i]
            if now >= deadline and (code == _RUNNING or code == _QUEUED):
                if self._exhausted_at(i):
                    self._dead_letter(job_id, "timeout", now)
                    continue
                self._attempt_arr[i] += 1
                status_arr[i] = _QUEUED
                del self.deadline[job_id]
                self.resubmissions += 1
                out.append(job_id)
        return out

    def _dead_letter(self, job_id: str, reason: str, now: float) -> None:
        """Take ``job_id`` out of circulation and cascade to descendants.

        A dead parent never completes, so any WAITING descendant can
        never become eligible; cascading it keeps the workflow able to
        *settle* (completed + dead == all jobs) instead of hanging.
        """
        self._trace("write", "state.dead_letter")
        arena = self._arena
        i = arena.index_of[job_id]
        status_arr = self._status_arr
        status_arr[i] = _DEAD
        self.deadline.pop(job_id, None)
        self._n_dead += 1
        self.dead_letters.append(
            DeadLetterEntry(
                self.name, job_id, self._attempt_arr[i], reason, now,
                self.tenant, self.sla,
            )
        )
        self._dead_letter_waiters(job_id, now)
        job_ids = arena.job_ids
        children = arena.children
        stack = list(children[i])
        while stack:
            ci = stack.pop()
            if status_arr[ci] != _WAITING:
                continue
            status_arr[ci] = _DEAD
            self._n_dead += 1
            self.dead_letters.append(
                DeadLetterEntry(
                    self.name, job_ids[ci], 0, "upstream-dead", now,
                    self.tenant, self.sla,
                )
            )
            self._dead_letter_waiters(job_ids[ci], now)
            stack.extend(children[ci])

    def _dead_letter_waiters(self, producer_id: str, now: float) -> None:
        """A producer that can never re-complete takes its regeneration
        waiters down with it (they are its DAG descendants, but guard
        here too in case the cascade visited them in a different order)."""
        if not self.regen_waiters:
            return
        index_of = self._arena.index_of
        status_arr = self._status_arr
        for waiter_id in sorted(self.regen_waiters.pop(producer_id, ())):
            wi = index_of[waiter_id]
            if status_arr[wi] == _WAITING:
                status_arr[wi] = _DEAD
                self._n_dead += 1
                self.dead_letters.append(
                    DeadLetterEntry(
                        self.name, waiter_id,
                        self._attempt_arr[wi], "upstream-dead", now,
                        self.tenant, self.sla,
                    )
                )
                self._dead_letter_waiters(waiter_id, now)

    # -- inspection ----------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return self._arena.n

    @property
    def n_completed(self) -> int:
        return self._n_completed

    @property
    def n_dead(self) -> int:
        return self._n_dead

    @property
    def is_complete(self) -> bool:
        """Every job completed (no dead letters)."""
        return self._n_completed == self._arena.n

    @property
    def is_settled(self) -> bool:
        """No job will ever change state again: completed or dead-lettered.

        This is the termination condition under a bounded retry policy —
        a workflow with a poison job never *completes* but must still
        *settle* so the rest of the ensemble can be accounted for.
        """
        return self._n_completed + self._n_dead == self._arena.n

    def dead_jobs(self) -> List[str]:
        return [e.job_id for e in self.dead_letters]

    def current_attempt(self, job_id: str) -> int:
        return self._attempt_arr[self._arena.index_of[job_id]]

    def counts(self) -> Dict[str, int]:
        status_arr = self._status_arr
        return {
            value: status_arr.count(code)
            for code, value in enumerate(_VALUE_BY_CODE)
        }

    # -- checkpoint / restore ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of the full scheduler state for this
        workflow — everything needed to resume after a master crash, and
        the input to the journal's checkpoint digest."""
        self._trace("read", "state.snapshot")
        job_ids = self._arena.job_ids
        return {
            "name": self.name,
            "tenant": self.tenant,
            "sla": self.sla,
            "status": {
                j: _VALUE_BY_CODE[c]
                for j, c in zip(job_ids, self._status_arr)
            },
            "attempt": {
                j: a for j, a in zip(job_ids, self._attempt_arr) if a
            },
            "pending": dict(zip(job_ids, self._pending_arr)),
            "deadline": dict(self.deadline),
            "resubmissions": self.resubmissions,
            "duplicate_acks": self.duplicate_acks,
            "data_recoveries": self.data_recoveries,
            "dead_letters": [
                [e.workflow, e.job_id, e.attempts, e.reason, e.time,
                 e.tenant, e.sla]
                for e in self.dead_letters
            ],
            "regen_waiters": {
                j: sorted(w) for j, w in self.regen_waiters.items()
            },
        }

    @classmethod
    def restore(
        cls,
        workflow: Workflow,
        snapshot: Dict[str, Any],
        default_timeout: float = 600.0,
        retry: Optional[RetryPolicy] = None,
    ) -> "WorkflowState":
        """Rebuild a state machine from a :meth:`snapshot`.

        The workflow structure itself is not checkpointed — the caller
        supplies the same DAG that produced the snapshot.
        """
        if snapshot["name"] != workflow.name:
            raise ValueError(
                f"snapshot is for workflow {snapshot['name']!r}, "
                f"got {workflow.name!r}"
            )
        state = cls(
            workflow, default_timeout=default_timeout,
            validate=False, retry=retry,
            tenant=snapshot.get("tenant", ""), sla=snapshot.get("sla", ""),
        )
        index_of = state._arena.index_of
        status_arr = state._status_arr
        for j, v in snapshot["status"].items():
            status_arr[index_of[j]] = _CODE_BY_VALUE[v]
        attempt_arr = state._attempt_arr
        for j, a in snapshot["attempt"].items():
            attempt_arr[index_of[j]] = int(a)
        pending_arr = state._pending_arr
        for j, p in snapshot["pending"].items():
            pending_arr[index_of[j]] = int(p)
        state.deadline = {j: float(d) for j, d in snapshot["deadline"].items()}
        state.resubmissions = int(snapshot["resubmissions"])
        state.duplicate_acks = int(snapshot["duplicate_acks"])
        state.data_recoveries = int(snapshot.get("data_recoveries", 0))
        # Pre-service snapshots hold 5-element dead-letter rows (no
        # tenant/class attribution); both shapes load.
        state.dead_letters = [
            DeadLetterEntry(
                row[0], row[1], int(row[2]), row[3], float(row[4]),
                *[str(x) for x in row[5:7]],
            )
            for row in snapshot["dead_letters"]
        ]
        state.regen_waiters = {
            j: set(w) for j, w in snapshot.get("regen_waiters", {}).items()
        }
        state._n_completed = status_arr.count(_COMPLETED)
        state._n_dead = status_arr.count(_DEAD)
        return state
