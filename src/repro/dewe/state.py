"""DAG state machine shared by the real master daemon and the simulated
pull engine.

Tracks, per job: remaining unfinished parents, lifecycle status, delivery
attempt counter and completion deadline.  The logic implements the paper's
at-least-once execution discipline:

* a job becomes **eligible** when its last parent completes and is then
  published (QUEUED);
* a **running** ack arms the job's timeout ("a job can have a user-defined
  timeout value or a system-wide default timeout value", §III.B) — with a
  ``redispatch_lost`` retry policy the deadline is armed already at
  dispatch, so lost dispatch messages are recovered too;
* if the completion ack misses the deadline, the job is **resubmitted**
  with an incremented attempt counter;
* a completion ack from *any* attempt completes the job (the original
  worker may still finish after a resubmission — first ack wins, duplicates
  are ignored and counted in ``duplicate_acks``);
* a :class:`~repro.faults.retry.RetryPolicy` attempt budget turns a job
  that keeps failing or timing out into a **dead letter** instead of
  livelocking the workflow; descendants that can never become eligible are
  cascaded into the dead-letter list, and the workflow *settles* once
  every job is completed or dead.

Time is an argument everywhere, so the same class serves wall-clock
threads and the DES.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional

from repro.faults.retry import DeadLetterEntry, RetryPolicy
from repro.workflow.dag import Workflow
from repro.workflow.validation import validate_workflow

__all__ = ["JobStatus", "WorkflowState"]


class JobStatus(Enum):
    WAITING = "waiting"      # has unfinished parents
    QUEUED = "queued"        # published to the job-dispatching topic
    RUNNING = "running"      # checked out by a worker (running ack seen)
    COMPLETED = "completed"
    DEAD = "dead"            # dead-lettered: attempt budget exhausted


class WorkflowState:
    """Execution state of one submitted workflow."""

    def __init__(
        self,
        workflow: Workflow,
        default_timeout: float = 600.0,
        validate: bool = True,
        retry: Optional[RetryPolicy] = None,
    ):
        if default_timeout <= 0:
            raise ValueError(f"default_timeout must be positive, got {default_timeout}")
        if validate:
            validate_workflow(workflow)
        self.workflow = workflow
        self.name = workflow.name
        self.default_timeout = default_timeout
        self.retry = retry or RetryPolicy()
        self.pending: Dict[str, int] = {}
        self.status: Dict[str, JobStatus] = {}
        self.attempt: Dict[str, int] = {}
        self.deadline: Dict[str, float] = {}
        self.resubmissions = 0
        #: Completion (or running) acks ignored as duplicates/stale —
        #: nonzero under at-least-once delivery with duplicated messages.
        self.duplicate_acks = 0
        self.dead_letters: List[DeadLetterEntry] = []
        self._n_completed = 0
        self._n_dead = 0
        for job in workflow.jobs.values():
            self.pending[job.id] = len(job.parents)
            self.status[job.id] = JobStatus.WAITING

    # -- lifecycle ---------------------------------------------------------
    def initial_ready(self) -> List[str]:
        """Jobs eligible at submission; marks them QUEUED."""
        ready = []
        for job_id, count in self.pending.items():
            if count == 0 and self.status[job_id] is JobStatus.WAITING:
                self.status[job_id] = JobStatus.QUEUED
                self.attempt[job_id] = 1
                ready.append(job_id)
        return ready

    def _timeout_of(self, job_id: str) -> float:
        return self.workflow.job(job_id).timeout or self.default_timeout

    def mark_dispatched(self, job_id: str, now: float) -> None:
        """Arm the dispatch-loss deadline when the policy asks for it.

        Called by the master/engine right before publishing the job.  A
        ``redispatch_lost`` policy treats "published but never reported
        running" exactly like "running but never reported completed", so
        a dispatch message swallowed by a lossy broker is resubmitted by
        the ordinary timeout sweep.
        """
        if not self.retry.redispatch_lost:
            return
        if self.status[job_id] is JobStatus.QUEUED:
            self.deadline[job_id] = now + self._timeout_of(job_id)

    def on_running(self, job_id: str, attempt: int, now: float) -> bool:
        """Handle a running ack; returns False for stale/duplicate acks."""
        status = self.status[job_id]
        if status is JobStatus.COMPLETED or status is JobStatus.DEAD:
            self.duplicate_acks += 1
            return False
        if attempt != self.attempt[job_id]:
            self.duplicate_acks += 1
            return False  # ack from a superseded delivery
        self.status[job_id] = JobStatus.RUNNING
        self.deadline[job_id] = now + self._timeout_of(job_id)
        return True

    def on_completed(self, job_id: str, attempt: int) -> List[str]:
        """Handle a completion ack; returns newly eligible job ids (QUEUED).

        Completion is accepted from any attempt — with at-least-once
        delivery the first finisher wins and later duplicates are no-ops.
        A completion for a job already dead-lettered is likewise dropped:
        its descendants have been cascaded and must not be revived.
        """
        status = self.status[job_id]
        if status is JobStatus.COMPLETED or status is JobStatus.DEAD:
            self.duplicate_acks += 1
            return []
        self.status[job_id] = JobStatus.COMPLETED
        self.deadline.pop(job_id, None)
        self._n_completed += 1
        newly_ready: List[str] = []
        for child_id in self.workflow.job(job_id).children:
            self.pending[child_id] -= 1
            if (
                self.pending[child_id] == 0
                and self.status[child_id] is JobStatus.WAITING
            ):
                self.status[child_id] = JobStatus.QUEUED
                self.attempt[child_id] = 1
                newly_ready.append(child_id)
        return newly_ready

    def on_failed(self, job_id: str, attempt: int, now: float = 0.0) -> Optional[str]:
        """Handle a failure ack: resubmit (attempt + 1) or dead-letter.

        Returns the job id to republish, or ``None`` for stale acks and
        for jobs whose attempt budget is exhausted (the caller should
        then check :attr:`is_settled`).
        """
        status = self.status[job_id]
        if status is JobStatus.COMPLETED or status is JobStatus.DEAD:
            return None
        if attempt != self.attempt[job_id]:
            return None
        if self.retry.exhausted(self.attempt[job_id]):
            self._dead_letter(job_id, "failed", now)
            return None
        self.attempt[job_id] += 1
        self.status[job_id] = JobStatus.QUEUED
        self.deadline.pop(job_id, None)
        self.resubmissions += 1
        return job_id

    def expired(self, now: float) -> List[str]:
        """Jobs whose completion ack missed its deadline; re-QUEUED with a
        fresh attempt number, ready to be republished.  Jobs that exhaust
        their attempt budget are dead-lettered instead (and not returned)."""
        out = []
        for job_id, deadline in list(self.deadline.items()):
            status = self.status[job_id]
            if now >= deadline and (
                status is JobStatus.RUNNING or status is JobStatus.QUEUED
            ):
                if self.retry.exhausted(self.attempt[job_id]):
                    self._dead_letter(job_id, "timeout", now)
                    continue
                self.attempt[job_id] += 1
                self.status[job_id] = JobStatus.QUEUED
                del self.deadline[job_id]
                self.resubmissions += 1
                out.append(job_id)
        return out

    def _dead_letter(self, job_id: str, reason: str, now: float) -> None:
        """Take ``job_id`` out of circulation and cascade to descendants.

        A dead parent never completes, so any WAITING descendant can
        never become eligible; cascading it keeps the workflow able to
        *settle* (completed + dead == all jobs) instead of hanging.
        """
        self.status[job_id] = JobStatus.DEAD
        self.deadline.pop(job_id, None)
        self._n_dead += 1
        self.dead_letters.append(
            DeadLetterEntry(self.name, job_id, self.attempt.get(job_id, 0), reason, now)
        )
        stack = list(self.workflow.job(job_id).children)
        while stack:
            child_id = stack.pop()
            if self.status[child_id] is not JobStatus.WAITING:
                continue
            self.status[child_id] = JobStatus.DEAD
            self._n_dead += 1
            self.dead_letters.append(
                DeadLetterEntry(self.name, child_id, 0, "upstream-dead", now)
            )
            stack.extend(self.workflow.job(child_id).children)

    # -- inspection ----------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.status)

    @property
    def n_completed(self) -> int:
        return self._n_completed

    @property
    def n_dead(self) -> int:
        return self._n_dead

    @property
    def is_complete(self) -> bool:
        """Every job completed (no dead letters)."""
        return self._n_completed == len(self.status)

    @property
    def is_settled(self) -> bool:
        """No job will ever change state again: completed or dead-lettered.

        This is the termination condition under a bounded retry policy —
        a workflow with a poison job never *completes* but must still
        *settle* so the rest of the ensemble can be accounted for.
        """
        return self._n_completed + self._n_dead == len(self.status)

    def dead_jobs(self) -> List[str]:
        return [e.job_id for e in self.dead_letters]

    def current_attempt(self, job_id: str) -> int:
        return self.attempt.get(job_id, 0)

    def counts(self) -> Dict[str, int]:
        out = {s.value: 0 for s in JobStatus}
        for status in self.status.values():
            out[status.value] += 1
        return out
