"""The workflow submission application (paper §III.E).

"The workflow submission application accepts two parameters from the
user — workflow name and the path to the related folder on the shared
file system" — and publishes them to the workflow-submission topic.
Scientists can submit workflows "from any nodes at any time"; here that
means any thread with a reference to the broker.
"""

from __future__ import annotations

from repro.mq.broker import Broker
from repro.mq.messages import TOPIC_SUBMIT, WorkflowSubmission
from repro.workflow.dag import Workflow

__all__ = ["submit_workflow"]


def submit_workflow(
    broker: Broker,
    workflow: Workflow,
    folder: str = "",
    tenant: str = "",
    sla: str = "",
) -> str:
    """Publish ``workflow`` for execution; returns its name immediately.

    The master daemon picks the submission up asynchronously; use
    :meth:`~repro.dewe.master.MasterDaemon.wait` to block on completion.
    ``tenant``/``sla`` tag the submission for the multi-tenant service
    plane (attribution on shed records and dead letters).
    """
    broker.publish(
        TOPIC_SUBMIT,
        WorkflowSubmission(
            workflow=workflow, folder=folder, tenant=tenant, sla=sla
        ),
    )
    return workflow.name
