"""Deterministic parallel experiment runner and benchmark harness.

The paper's evaluation sweeps whole grids of independent simulated runs
(engines x cluster sizes x ensemble sizes, §V).  Each run is a
self-contained discrete-event simulation, so the sweep is embarrassingly
parallel — :func:`run_many` shards the runs across worker processes and
merges the results in canonical submission order, producing output
byte-identical to the serial :func:`run_serial` path.

One *giant* ensemble shards the same way: :func:`run_sharded` splits a
single run into per-member-group shards (disjoint sub-clusters, paper
§V), executes them serially or across a pool, and merges the per-shard
digests with :func:`merge_digests` into one result byte-identical to the
:func:`run_sharded_serial` reference.

See docs/PERFORMANCE.md for the execution model and determinism
contract; :mod:`repro.parallel.bench` holds the ``repro-bench`` kernel
benchmark harness.
"""

from repro.parallel.runner import (
    RunDigest,
    RunSpec,
    digest_result,
    execute_spec,
    merge_digests,
    run_many,
    run_serial,
    run_sharded,
    run_sharded_serial,
    shard_ensemble,
)

__all__ = [
    "RunDigest",
    "RunSpec",
    "digest_result",
    "execute_spec",
    "merge_digests",
    "run_many",
    "run_serial",
    "run_sharded",
    "run_sharded_serial",
    "shard_ensemble",
]
