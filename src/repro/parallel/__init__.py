"""Deterministic parallel experiment runner and benchmark harness.

The paper's evaluation sweeps whole grids of independent simulated runs
(engines x cluster sizes x ensemble sizes, §V).  Each run is a
self-contained discrete-event simulation, so the sweep is embarrassingly
parallel — :func:`run_many` shards the runs across worker processes and
merges the results in canonical submission order, producing output
byte-identical to the serial :func:`run_serial` path.

See docs/PERFORMANCE.md for the execution model and determinism
contract; :mod:`repro.parallel.bench` holds the ``repro-bench`` kernel
benchmark harness.
"""

from repro.parallel.runner import (
    RunDigest,
    RunSpec,
    digest_result,
    execute_spec,
    run_many,
    run_serial,
)

__all__ = [
    "RunDigest",
    "RunSpec",
    "digest_result",
    "execute_spec",
    "run_many",
    "run_serial",
]
