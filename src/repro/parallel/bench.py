"""Kernel benchmark harness behind the ``repro-bench`` CLI.

Measures the throughput of the layers the fast path optimised — the raw
event loop, the pull engine, the scheduling engine — plus the
:mod:`repro.parallel` sweep runner, and writes/compares the
``BENCH_kernel.json`` snapshot committed at the repo root.

Two kinds of numbers per benchmark:

* **rates** (ticks/s, jobs/s, wall seconds) — machine-dependent; the CI
  compare gate allows a configurable slack (default 30%, with a soft
  warning printed from 10% drift) because shared runners drift;
* **deterministic counters** (jobs executed, events scheduled) — must
  match the committed snapshot exactly; a mismatch means the simulated
  behaviour changed and the snapshot must be regenerated deliberately.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.parallel.runner import RunSpec, run_many, run_serial, run_sharded

__all__ = [
    "BENCH_FILENAME",
    "run_benchmarks",
    "compare_benchmarks",
    "compare_warnings",
    "render_report",
]

BENCH_FILENAME = "BENCH_kernel.json"
SCHEMA_VERSION = 1


def _best_of(repeats: int, fn: Callable[[], Dict]) -> Dict:
    """Run ``fn`` ``repeats`` times, keep the fastest (max rate) sample."""
    best: Optional[Dict] = None
    for _ in range(max(1, repeats)):
        sample = fn()
        if best is None or sample.get("rate", 0.0) > best.get("rate", 0.0):
            best = sample
    assert best is not None
    return best


def bench_event_loop(ticks: int = 20000, n_processes: int = 4) -> Dict:
    """Raw kernel throughput: concurrent tickers yielding zero-work timeouts."""
    from repro.sim import Simulator

    sim = Simulator()

    def ticker(period: float):
        while True:
            yield sim.timeout(period)

    for i in range(n_processes):
        sim.process(ticker(1.0 + i * 0.1))
    t0 = time.perf_counter()
    sim.run(until=float(ticks))
    wall = time.perf_counter() - t0
    return {
        "rate": sim._seq / wall if wall > 0 else 0.0,
        "unit": "events/s",
        "wall_s": wall,
        "events_scheduled": sim._seq,
    }


def _bench_engine(engine_name: str, degree: float) -> Dict:
    spec = RunSpec(
        engine=engine_name, workflow="montage", size=degree,
        workflows=1, nodes=1, filesystem="local", record_jobs=False,
    )
    from repro.parallel.runner import execute_spec

    t0 = time.perf_counter()
    digest = execute_spec(spec)
    wall = time.perf_counter() - t0
    return {
        "rate": digest.jobs_executed / wall if wall > 0 else 0.0,
        "unit": "jobs/s",
        "wall_s": wall,
        "jobs": digest.jobs_executed,
        "events_scheduled": digest.events_scheduled,
        "makespan_s": digest.makespan,
    }


def bench_pull_engine(degree: float = 1.0) -> Dict:
    """The headline number: simulated DEWE v2 jobs per wall-clock second."""
    return _bench_engine("dewe-v2", degree)


def bench_scheduling_engine(degree: float = 1.0) -> Dict:
    return _bench_engine("pegasus", degree)


def bench_ensemble_scale(members: int = 5, degree: float = 2.0) -> Dict:
    """Shared-structure ensembles: many relabelled members, multi-node."""
    from repro.parallel.runner import execute_spec

    spec = RunSpec(
        engine="dewe-v2", workflow="montage", size=degree,
        workflows=members, nodes=4, record_jobs=False,
    )
    t0 = time.perf_counter()
    digest = execute_spec(spec)
    wall = time.perf_counter() - t0
    return {
        "rate": digest.jobs_executed / wall if wall > 0 else 0.0,
        "unit": "jobs/s",
        "wall_s": wall,
        "jobs": digest.jobs_executed,
        "members": members,
        "events_scheduled": digest.events_scheduled,
    }


def bench_fig10_scale(members: int = 200, degree: float = 6.0,
                      nodes: int = 25, shards: int = 25,
                      budget_s: float = 60.0) -> Dict:
    """Paper-scale single ensemble: 200 x 6.0-degree Montage (~1.7M jobs).

    The giant run is member-sharded (disjoint sub-clusters, paper §V)
    through :func:`~repro.parallel.runner.run_sharded`; a replicated
    ensemble dedupes to one executed shard per distinct shape, so the
    figure fits a CI wall-clock budget (``budget_s``, gated by the
    compare step) even on a single-core runner.  The merged fingerprint
    is an exact counter: any drift from the committed snapshot means the
    simulated behaviour changed.
    """
    spec = RunSpec(
        engine="dewe-v2", workflow="montage", size=degree,
        workflows=members, nodes=nodes, filesystem="moosefs",
        record_jobs=False, label="fig10",
    )
    t0 = time.perf_counter()
    digest = run_sharded(spec, shards=shards)
    wall = time.perf_counter() - t0
    return {
        "rate": digest.jobs_executed / wall if wall > 0 else 0.0,
        "unit": "jobs/s",
        "wall_s": wall,
        "budget_s": budget_s,
        "jobs": digest.jobs_executed,
        "members": members,
        "shards": shards,
        "events_scheduled": digest.events_scheduled,
        "exact": {
            "fingerprint": digest.fingerprint,
            "makespan": repr(digest.makespan),
            "n_workflows": digest.n_workflows,
        },
    }


def bench_parallel_runner(workers: int = 4, n_specs: int = 8,
                          workflows_per_spec: int = 4) -> Dict:
    """Serial vs sharded sweep: identical digests, wall-clock speedup.

    The speedup is hardware-bound — on a single-core runner a pool
    cannot beat serial, so the requested worker count is capped at
    ``cpu_count`` (``shards_capped`` records that this happened) and
    consumers must gate speedup expectations on ``cpu_count`` (the
    compare gate does).
    """
    requested = workers
    workers = max(1, min(workers, os.cpu_count() or 1))
    specs = [
        RunSpec(
            engine="dewe-v2", workflow="montage", size=1.0,
            workflows=workflows_per_spec, nodes=1, filesystem="local",
            record_jobs=False, label=f"sweep-{i:02d}",
        )
        for i in range(n_specs)
    ]
    t0 = time.perf_counter()
    serial = run_serial(specs)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = run_many(specs, workers=workers)
    parallel_s = time.perf_counter() - t0
    identical = [d.fingerprint for d in serial] == [d.fingerprint for d in sharded]
    return {
        "rate": 1.0 / parallel_s if parallel_s > 0 else 0.0,
        "unit": "sweeps/s",
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "workers": workers,
        "workers_requested": requested,
        "shards_capped": workers < requested,
        "n_specs": n_specs,
        "digests_identical": identical,
        "jobs": sum(d.jobs_executed for d in serial),
    }


def bench_priority_vs_fifo() -> Dict:
    """Deadline-skewed ensemble: FIFO dispatch vs live reprioritization.

    One long serial chain (the deadline-critical member) arrives *behind*
    three wide embarrassingly parallel members.  Under FIFO the chain's
    root queues behind every wide job and the chain's critical path
    starts late; under a :class:`~repro.mq.priority.RepriorityPolicy`
    the chain's far larger critical-path-remaining score pulls it to the
    front immediately, so the ensemble makespan approaches the chain's
    critical path.  Both runs execute the identical workload, so the
    job tallies (and the zero-starvation count under aging) are exact
    deterministic counters; the makespan improvement is the headline.
    """
    from repro.cloud import ClusterSpec
    from repro.engines import PullEngine
    from repro.mq.priority import RepriorityPolicy
    from repro.workflow import Ensemble, Workflow

    def chain_member(name: str, links: int = 24, runtime: float = 2.0):
        wf = Workflow(name)
        prev = None
        for i in range(links):
            job = wf.new_job(f"link{i:03d}", "chain", runtime=runtime)
            if prev is not None:
                wf.add_dependency(prev.id, job.id)
            prev = job
        return wf

    def wide_member(name: str, leaves: int = 30, runtime: float = 1.0):
        wf = Workflow(name)
        for i in range(leaves):
            wf.new_job(f"leaf{i:03d}", "wide", runtime=runtime)
        return wf

    # Wide members first: FIFO order is exactly the worst case for the
    # chain.  One m3.2xlarge = 8 worker slots, so the 90 wide jobs hold
    # the cluster for many waves before the chain's root gets a slot.
    members = [wide_member(f"wide-{i}") for i in range(3)]
    members.append(chain_member("deadline-chain"))
    spec = ClusterSpec("m3.2xlarge", 1, filesystem="local")

    def run_once(repriority):
        t0 = time.perf_counter()
        result = PullEngine(spec, repriority=repriority).run(
            Ensemble([wf.relabel(wf.name) for wf in members])
        )
        wall = time.perf_counter() - t0
        # Admitted jobs never executed by settlement = starved.
        starved = sum(
            count
            for counts in result.job_counts.values()
            for status, count in counts.items()
            if status != "completed"
        )
        return result, wall, starved

    fifo, fifo_wall, fifo_starved = run_once(None)
    # Aging gentle enough that the wide members (which are *not*
    # starving — they hold 7 of the 8 slots) cannot out-age the chain's
    # critical-path score before they drain.
    prio, prio_wall, prio_starved = run_once(
        RepriorityPolicy(aging_rate=0.25, interval=2.0)
    )
    wall = fifo_wall + prio_wall
    total_jobs = fifo.jobs_executed + prio.jobs_executed
    return {
        "rate": total_jobs / wall if wall > 0 else 0.0,
        "unit": "jobs/s",
        "wall_s": wall,
        "jobs": total_jobs,
        "fifo_makespan_s": fifo.makespan,
        "priority_makespan_s": prio.makespan,
        "makespan_improvement": (
            1.0 - prio.makespan / fifo.makespan if fifo.makespan > 0 else 0.0
        ),
        "exact": {
            "fifo_jobs": fifo.jobs_executed,
            "priority_jobs": prio.jobs_executed,
            "starved": fifo_starved + prio_starved,
            "priority_wins": bool(prio.makespan < fifo.makespan),
        },
    }


def run_benchmarks(quick: bool = False, workers: int = 4,
                   only: Optional[str] = None) -> Dict:
    """Run the suite; return the ``BENCH_kernel.json`` payload.

    ``only`` restricts the run to benchmarks whose name contains the
    substring (``repro-bench --filter fig10`` runs just the paper-scale
    point); the resulting partial payload is for ad-hoc timing, not for
    ``--write``.
    """
    # Even quick mode keeps best-of-3 for the _best_of benchmarks: the
    # 212-job engine runs cost ~10 ms each, and a single sample on a
    # noisy shared runner can drift below any honest tolerance.
    repeats = 3

    def want(name: str) -> bool:
        return only is None or only in name

    results: Dict[str, Dict] = {}
    if want("event_loop"):
        results["event_loop"] = _best_of(
            repeats, lambda: bench_event_loop(5000 if quick else 20000)
        )
    if want("pull_engine"):
        results["pull_engine"] = _best_of(
            repeats, lambda: bench_pull_engine(1.0)
        )
    if want("scheduling_engine"):
        results["scheduling_engine"] = _best_of(
            repeats, lambda: bench_scheduling_engine(1.0)
        )
    if not quick and want("ensemble_scale"):
        results["ensemble_scale"] = bench_ensemble_scale()
    # Same workload in quick and full mode (it is tiny either way), so
    # its exact counters are gated whenever the quick flags line up.
    if want("priority_vs_fifo"):
        results["priority_vs_fifo"] = bench_priority_vs_fifo()
    if want("parallel_runner"):
        results["parallel_runner"] = bench_parallel_runner(
            workers=workers,
            n_specs=4 if quick else 8,
            workflows_per_spec=2 if quick else 4,
        )
    # Paper-scale figure: quick mode shrinks the members/degree but keeps
    # the same shard geometry (25 shards, 1 node each) so the sharding
    # and merge machinery is exercised either way.
    if want("fig10_scale"):
        results["fig10_scale"] = (
            bench_fig10_scale(members=25, degree=1.0, nodes=25, shards=25,
                              budget_s=30.0)
            if quick
            else bench_fig10_scale()
        )
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro-bench",
        "quick": quick,
        "machine": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
        },
        "benchmarks": results,
    }


def compare_benchmarks(current: Dict, committed: Dict,
                       tolerance: float = 0.30) -> List[str]:
    """Regression gate: return a list of failure messages (empty = pass).

    * rates may drop at most ``tolerance`` relative to the snapshot;
    * deterministic counters (``jobs``, ``digests_identical``, and any
      key inside a benchmark's ``exact`` block — the service suite's
      admitted/shed tallies) must match exactly — a drift means
      simulated behaviour changed;
    * a benchmark with a ``budget_s`` (the paper-scale figure) must
      finish inside that wall-clock budget;
    * the parallel speedup is only gated on machines with >=2 CPUs.

    :func:`compare_warnings` reports sub-gate drift for the same pair.
    """
    failures: List[str] = []
    committed_benchmarks = committed.get("benchmarks", {})
    # Quick mode runs a subset of the suite on smaller workloads, so a
    # quick run compared against a full snapshot (the CI configuration)
    # only gates rates, not workload-sized counters.
    same_workload = bool(current.get("quick")) == bool(committed.get("quick"))
    for name, snap in committed_benchmarks.items():
        cur = current["benchmarks"].get(name)
        if cur is None:
            if not same_workload:
                continue
            failures.append(f"{name}: benchmark missing from current run")
            continue
        floor = snap.get("rate", 0.0) * (1.0 - tolerance)
        if cur.get("rate", 0.0) < floor:
            failures.append(
                f"{name}: rate regressed beyond {tolerance:.0%} — "
                f"{cur.get('rate', 0.0):.1f} {cur.get('unit', '')} vs "
                f"snapshot {snap.get('rate', 0.0):.1f} "
                f"(floor {floor:.1f})"
            )
        if same_workload and "budget_s" in snap:
            budget = snap["budget_s"]
            if cur.get("wall_s", 0.0) > budget:
                failures.append(
                    f"{name}: wall clock {cur.get('wall_s', 0.0):.1f}s "
                    f"blew the {budget:.0f}s budget"
                )
        if same_workload and "jobs" in snap and cur.get("jobs") != snap["jobs"]:
            failures.append(
                f"{name}: simulated job count changed "
                f"({cur.get('jobs')} vs snapshot {snap['jobs']}) — "
                f"regenerate {BENCH_FILENAME} if intentional"
            )
        if same_workload and "exact" in snap:
            cur_exact = cur.get("exact", {})
            for key in sorted(snap["exact"]):
                if cur_exact.get(key) != snap["exact"][key]:
                    failures.append(
                        f"{name}: deterministic counter {key!r} changed "
                        f"({cur_exact.get(key)} vs snapshot "
                        f"{snap['exact'][key]}) — simulated behaviour "
                        f"drifted; regenerate the snapshot if intentional"
                    )
    par = current["benchmarks"].get("parallel_runner")
    if par is not None:
        if not par.get("digests_identical", False):
            failures.append(
                "parallel_runner: sharded sweep diverged from serial run"
            )
        cpus = current.get("machine", {}).get("cpu_count", 1)
        if cpus >= 2 and par.get("speedup", 0.0) < min(2.0, 0.5 * cpus):
            failures.append(
                f"parallel_runner: speedup {par['speedup']:.2f}x on "
                f"{par['workers']} workers / {cpus} CPUs "
                f"(expected >= {min(2.0, 0.5 * cpus):.1f}x)"
            )
    return failures


def compare_warnings(current: Dict, committed: Dict,
                     threshold: float = 0.10) -> List[str]:
    """Soft drift report: rates that dropped past ``threshold``.

    Printed (not gated) by ``repro-bench --compare`` so a slow slide
    toward the hard tolerance is visible in CI logs before it fails.
    """
    warnings: List[str] = []
    for name, snap in committed.get("benchmarks", {}).items():
        cur = current["benchmarks"].get(name)
        if cur is None:
            continue
        snap_rate = snap.get("rate", 0.0)
        cur_rate = cur.get("rate", 0.0)
        if snap_rate > 0.0 and cur_rate < snap_rate * (1.0 - threshold):
            warnings.append(
                f"{name}: rate drifted {1.0 - cur_rate / snap_rate:.0%} "
                f"below snapshot ({cur_rate:.1f} vs {snap_rate:.1f} "
                f"{cur.get('unit', '')})"
            )
    return warnings


def render_report(payload: Dict) -> str:
    lines = ["benchmark            rate              notes"]
    for name, sample in payload["benchmarks"].items():
        rate = f"{sample.get('rate', 0.0):>12,.1f} {sample.get('unit', ''):<8}"
        notes = []
        if "jobs" in sample:
            notes.append(f"jobs={sample['jobs']}")
        if "events_scheduled" in sample:
            notes.append(f"events={sample['events_scheduled']}")
        if "speedup" in sample:
            notes.append(
                f"speedup={sample['speedup']:.2f}x"
                f" identical={sample['digests_identical']}"
            )
        if "budget_s" in sample:
            notes.append(
                f"wall={sample['wall_s']:.1f}s/" f"{sample['budget_s']:.0f}s"
            )
        lines.append(f"{name:<20} {rate}  {' '.join(notes)}")
    machine = payload.get("machine", {})
    lines.append(
        f"(python {machine.get('python')}, {machine.get('cpu_count')} CPU(s), "
        f"quick={payload.get('quick')})"
    )
    return "\n".join(lines)


def load_snapshot(path: str) -> Dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def save_snapshot(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
