"""Seeded deterministic process-pool runner for independent simulations.

Design constraints:

* **Determinism** — a sweep's output must not depend on how it was
  executed.  Every run is described by a picklable :class:`RunSpec`;
  workers rebuild the workload from the spec (never from shared state)
  and the parent merges digests by submission index, so
  ``run_many(specs)`` returns exactly ``run_serial(specs)`` regardless
  of worker count, scheduling order, or which runs race ahead.
* **Picklability** — :class:`~repro.engines.base.EngineResult` holds the
  live simulator (suspended generator frames) and cannot cross a process
  boundary.  Workers therefore reduce each result to a :class:`RunDigest`
  of plain scalars plus a SHA-256 fingerprint over the full per-workflow
  span table, which is what the determinism tests compare.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "RunSpec",
    "RunDigest",
    "digest_result",
    "execute_spec",
    "run_serial",
    "run_many",
    "shard_ensemble",
    "merge_digests",
    "run_sharded",
    "run_sharded_serial",
]


@dataclass(frozen=True)
class RunSpec:
    """One independent simulated run of a workflow ensemble.

    Everything needed to reproduce the run bit-for-bit in a fresh
    process.  ``seed`` feeds the engine's fault models when a chaos
    scenario is attached; for fault-free runs it only labels the spec.
    """

    engine: str = "dewe-v2"
    workflow: str = "montage"
    size: float = 1.0
    workflows: int = 1
    interval: float = 0.0
    instance_type: str = "c3.8xlarge"
    nodes: int = 1
    filesystem: Optional[str] = None
    timeout: float = 600.0
    record_jobs: bool = False
    seed: int = 0
    label: str = ""

    def title(self) -> str:
        return self.label or (
            f"{self.engine}:{self.workflow}x{self.workflows}"
            f"@{self.size}/{self.instance_type}x{self.nodes}"
        )


@dataclass(frozen=True)
class RunDigest:
    """Picklable reduction of an :class:`EngineResult` for sweep merging."""

    label: str
    engine: str
    n_workflows: int
    jobs_executed: int
    makespan: float
    mean_workflow_makespan: float
    cpu_seconds: float
    bytes_read: float
    bytes_written: float
    resubmissions: int
    cost_usd: float
    events_scheduled: int
    #: SHA-256 over the canonical JSON of every per-workflow span plus
    #: the scalar metrics — byte-identical runs have identical digests.
    fingerprint: str = ""
    #: Per-workflow ``name -> (start, end)`` spans (submission order
    #: restored by sorting on name; names encode submission index).
    workflow_spans: Tuple[Tuple[str, float, float], ...] = field(
        default_factory=tuple
    )

    def to_dict(self) -> Dict:
        return asdict(self)


def digest_result(result, label: str = "", events_scheduled: int = 0) -> RunDigest:
    """Reduce an EngineResult to a :class:`RunDigest` (picklable)."""
    spans = tuple(
        (name, float(start), float(end))
        for name, (start, end) in sorted(result.workflow_spans.items())
    )
    body = {
        "engine": result.engine,
        "n_workflows": result.n_workflows,
        "jobs_executed": result.jobs_executed,
        "makespan": repr(result.makespan),
        "resubmissions": result.resubmissions,
        "bytes_read": repr(result.total_disk_read_bytes()),
        "bytes_written": repr(result.total_disk_write_bytes()),
        "spans": [(n, repr(s), repr(e)) for n, s, e in spans],
    }
    fingerprint = hashlib.sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return RunDigest(
        label=label,
        engine=result.engine,
        n_workflows=result.n_workflows,
        jobs_executed=result.jobs_executed,
        makespan=result.makespan,
        mean_workflow_makespan=result.mean_workflow_makespan(),
        cpu_seconds=result.total_cpu_seconds(),
        bytes_read=result.total_disk_read_bytes(),
        bytes_written=result.total_disk_write_bytes(),
        resubmissions=result.resubmissions,
        cost_usd=result.cost(),
        events_scheduled=events_scheduled,
        fingerprint=fingerprint,
        workflow_spans=spans,
    )


def _build_engine(spec: RunSpec):
    from repro.cloud import ClusterSpec
    from repro.engines import DeweV1Engine, PullEngine, SchedulingEngine
    from repro.engines.base import RunConfig

    engines = {
        "dewe-v2": PullEngine,
        "pegasus": SchedulingEngine,
        "dewe-v1": DeweV1Engine,
    }
    if spec.engine not in engines:
        raise ValueError(f"unknown engine {spec.engine!r}")
    fs = spec.filesystem or ("local" if spec.nodes == 1 else "moosefs")
    cluster = ClusterSpec(spec.instance_type, spec.nodes, filesystem=fs)
    config = RunConfig(default_timeout=spec.timeout, record_jobs=spec.record_jobs)
    return engines[spec.engine](cluster, config)


def _build_ensemble(spec: RunSpec):
    from repro.generators import cybershake_workflow, ligo_workflow, montage_workflow
    from repro.workflow import Ensemble

    if spec.workflow == "montage":
        template = montage_workflow(degree=spec.size)
    elif spec.workflow == "ligo":
        template = ligo_workflow(blocks=max(1, int(spec.size)))
    elif spec.workflow == "cybershake":
        template = cybershake_workflow(ruptures=max(1, int(spec.size)))
    else:
        raise ValueError(f"unknown workflow kind {spec.workflow!r}")
    return Ensemble.replicated(template, spec.workflows, interval=spec.interval)


def execute_spec(spec: RunSpec) -> RunDigest:
    """Run one spec in the current process and return its digest.

    Module-level (picklable by reference) so :class:`ProcessPoolExecutor`
    can ship it to workers.
    """
    engine = _build_engine(spec)
    ensemble = _build_ensemble(spec)
    result = engine.run(ensemble)
    events = getattr(getattr(result.cluster, "sim", None), "_seq", 0)
    return digest_result(result, label=spec.title(), events_scheduled=events)


def run_serial(specs: Sequence[RunSpec]) -> List[RunDigest]:
    """Reference serial execution, in submission order."""
    return [execute_spec(spec) for spec in specs]


def run_many(
    specs: Sequence[RunSpec],
    workers: int = 0,
    chunksize: int = 1,
) -> List[RunDigest]:
    """Shard ``specs`` across a process pool; merge in submission order.

    ``workers <= 1`` (or a single spec) falls back to the serial path —
    same results, no pool overhead.  The returned list is indexed like
    ``specs``: digest ``i`` always belongs to spec ``i``, whatever order
    the workers finished in.
    """
    specs = list(specs)
    if workers <= 1 or len(specs) <= 1:
        return run_serial(specs)
    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        # Executor.map preserves input order while letting runs complete
        # out of order — the canonical-order merge is the iteration.
        return list(pool.map(execute_spec, specs, chunksize=chunksize))


# -- single-ensemble sharding ------------------------------------------------
#
# A sweep shards *across* specs; the paper-scale figures need to shard
# *within* one giant run: hundreds of ensemble members on a matching
# fleet of sub-clusters (paper §V: each member group gets its own
# provisioned slice, members in different slices never share a node or a
# link).  That independence is what makes member sharding exact: the
# giant run *is* the union of its shard runs, so executing the shards in
# one process or across a pool must — and does — merge to the same
# digest byte for byte.


def shard_ensemble(spec: RunSpec, shards: int) -> List[RunSpec]:
    """Split one giant ensemble run into per-member-group shard specs.

    ``shards`` must divide both ``spec.workflows`` and ``spec.nodes`` so
    every shard simulates the same members-per-nodes ratio.  The
    filesystem default is resolved *before* splitting: a 25-node shared-fs
    run must not silently turn into local-fs shards when the per-shard
    node count reaches 1.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive: {shards!r}")
    if spec.workflows % shards or spec.nodes % shards:
        raise ValueError(
            f"shards={shards} must divide workflows={spec.workflows} "
            f"and nodes={spec.nodes}"
        )
    fs = spec.filesystem or ("local" if spec.nodes == 1 else "moosefs")
    title = spec.title()
    return [
        replace(
            spec,
            workflows=spec.workflows // shards,
            nodes=spec.nodes // shards,
            filesystem=fs,
            label=f"{title}#s{i:02d}",
        )
        for i in range(shards)
    ]


def merge_digests(label: str, digests: Sequence[RunDigest]) -> RunDigest:
    """Merge per-shard digests into one ensemble-level :class:`RunDigest`.

    Scalars sum; the makespan is the max (shards run concurrently in
    simulated time on disjoint sub-clusters); spans are namespaced by
    shard index so relabelled members from different shards cannot
    collide.  The fingerprint hashes the ordered shard fingerprints, so
    the merged digest is byte-identical iff every shard is.
    """
    if not digests:
        raise ValueError("merge_digests needs at least one shard digest")
    n_workflows = sum(d.n_workflows for d in digests)
    spans = tuple(
        (f"s{i:02d}/{name}", start, end)
        for i, d in enumerate(digests)
        for name, start, end in d.workflow_spans
    )
    fingerprint = hashlib.sha256(
        json.dumps(
            {"shards": [d.fingerprint for d in digests]},
            sort_keys=True, separators=(",", ":"),
        ).encode()
    ).hexdigest()
    return RunDigest(
        label=label,
        engine=digests[0].engine,
        n_workflows=n_workflows,
        jobs_executed=sum(d.jobs_executed for d in digests),
        makespan=max(d.makespan for d in digests),
        mean_workflow_makespan=(
            sum(d.mean_workflow_makespan * d.n_workflows for d in digests)
            / n_workflows
            if n_workflows
            else 0.0
        ),
        cpu_seconds=sum(d.cpu_seconds for d in digests),
        bytes_read=sum(d.bytes_read for d in digests),
        bytes_written=sum(d.bytes_written for d in digests),
        resubmissions=sum(d.resubmissions for d in digests),
        cost_usd=sum(d.cost_usd for d in digests),
        events_scheduled=sum(d.events_scheduled for d in digests),
        fingerprint=fingerprint,
        workflow_spans=spans,
    )


def run_sharded_serial(spec: RunSpec, shards: int) -> RunDigest:
    """Reference path: execute every shard serially, then merge."""
    return merge_digests(spec.title(), run_serial(shard_ensemble(spec, shards)))


def run_sharded(
    spec: RunSpec,
    shards: int,
    workers: int = 0,
    dedupe: bool = True,
) -> RunDigest:
    """Execute one giant ensemble as member shards; merge to one digest.

    ``workers`` defaults to (and is always capped at) ``cpu_count`` — a
    pool wider than the machine only adds scheduling noise.  With
    ``dedupe`` on, structurally identical shards (same spec up to the
    label — the common case for a replicated ensemble) execute once and
    the digest is reused, which is exact because ``execute_spec`` is
    deterministic (pinned by the fast-path regression tests).
    """
    shard_specs = shard_ensemble(spec, shards)
    cpus = os.cpu_count() or 1
    workers = min(workers if workers > 0 else cpus, cpus)
    canon = [replace(s, label="") for s in shard_specs]
    if dedupe:
        unique: List[RunSpec] = []
        index_of: Dict[RunSpec, int] = {}
        for key in canon:
            if key not in index_of:
                index_of[key] = len(unique)
                unique.append(key)
    else:
        unique = canon
        index_of = {}  # positional 1:1 mapping below
    results = run_many(unique, workers=workers)
    digests = [
        replace(
            results[index_of[key] if dedupe else i],
            label=shard_specs[i].label,
        )
        for i, key in enumerate(canon)
    ]
    return merge_digests(spec.title(), digests)
