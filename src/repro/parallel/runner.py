"""Seeded deterministic process-pool runner for independent simulations.

Design constraints:

* **Determinism** — a sweep's output must not depend on how it was
  executed.  Every run is described by a picklable :class:`RunSpec`;
  workers rebuild the workload from the spec (never from shared state)
  and the parent merges digests by submission index, so
  ``run_many(specs)`` returns exactly ``run_serial(specs)`` regardless
  of worker count, scheduling order, or which runs race ahead.
* **Picklability** — :class:`~repro.engines.base.EngineResult` holds the
  live simulator (suspended generator frames) and cannot cross a process
  boundary.  Workers therefore reduce each result to a :class:`RunDigest`
  of plain scalars plus a SHA-256 fingerprint over the full per-workflow
  span table, which is what the determinism tests compare.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "RunSpec",
    "RunDigest",
    "digest_result",
    "execute_spec",
    "run_serial",
    "run_many",
]


@dataclass(frozen=True)
class RunSpec:
    """One independent simulated run of a workflow ensemble.

    Everything needed to reproduce the run bit-for-bit in a fresh
    process.  ``seed`` feeds the engine's fault models when a chaos
    scenario is attached; for fault-free runs it only labels the spec.
    """

    engine: str = "dewe-v2"
    workflow: str = "montage"
    size: float = 1.0
    workflows: int = 1
    interval: float = 0.0
    instance_type: str = "c3.8xlarge"
    nodes: int = 1
    filesystem: Optional[str] = None
    timeout: float = 600.0
    record_jobs: bool = False
    seed: int = 0
    label: str = ""

    def title(self) -> str:
        return self.label or (
            f"{self.engine}:{self.workflow}x{self.workflows}"
            f"@{self.size}/{self.instance_type}x{self.nodes}"
        )


@dataclass(frozen=True)
class RunDigest:
    """Picklable reduction of an :class:`EngineResult` for sweep merging."""

    label: str
    engine: str
    n_workflows: int
    jobs_executed: int
    makespan: float
    mean_workflow_makespan: float
    cpu_seconds: float
    bytes_read: float
    bytes_written: float
    resubmissions: int
    cost_usd: float
    events_scheduled: int
    #: SHA-256 over the canonical JSON of every per-workflow span plus
    #: the scalar metrics — byte-identical runs have identical digests.
    fingerprint: str = ""
    #: Per-workflow ``name -> (start, end)`` spans (submission order
    #: restored by sorting on name; names encode submission index).
    workflow_spans: Tuple[Tuple[str, float, float], ...] = field(
        default_factory=tuple
    )

    def to_dict(self) -> Dict:
        return asdict(self)


def digest_result(result, label: str = "", events_scheduled: int = 0) -> RunDigest:
    """Reduce an EngineResult to a :class:`RunDigest` (picklable)."""
    spans = tuple(
        (name, float(start), float(end))
        for name, (start, end) in sorted(result.workflow_spans.items())
    )
    body = {
        "engine": result.engine,
        "n_workflows": result.n_workflows,
        "jobs_executed": result.jobs_executed,
        "makespan": repr(result.makespan),
        "resubmissions": result.resubmissions,
        "bytes_read": repr(result.total_disk_read_bytes()),
        "bytes_written": repr(result.total_disk_write_bytes()),
        "spans": [(n, repr(s), repr(e)) for n, s, e in spans],
    }
    fingerprint = hashlib.sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return RunDigest(
        label=label,
        engine=result.engine,
        n_workflows=result.n_workflows,
        jobs_executed=result.jobs_executed,
        makespan=result.makespan,
        mean_workflow_makespan=result.mean_workflow_makespan(),
        cpu_seconds=result.total_cpu_seconds(),
        bytes_read=result.total_disk_read_bytes(),
        bytes_written=result.total_disk_write_bytes(),
        resubmissions=result.resubmissions,
        cost_usd=result.cost(),
        events_scheduled=events_scheduled,
        fingerprint=fingerprint,
        workflow_spans=spans,
    )


def _build_engine(spec: RunSpec):
    from repro.cloud import ClusterSpec
    from repro.engines import DeweV1Engine, PullEngine, SchedulingEngine
    from repro.engines.base import RunConfig

    engines = {
        "dewe-v2": PullEngine,
        "pegasus": SchedulingEngine,
        "dewe-v1": DeweV1Engine,
    }
    if spec.engine not in engines:
        raise ValueError(f"unknown engine {spec.engine!r}")
    fs = spec.filesystem or ("local" if spec.nodes == 1 else "moosefs")
    cluster = ClusterSpec(spec.instance_type, spec.nodes, filesystem=fs)
    config = RunConfig(default_timeout=spec.timeout, record_jobs=spec.record_jobs)
    return engines[spec.engine](cluster, config)


def _build_ensemble(spec: RunSpec):
    from repro.generators import cybershake_workflow, ligo_workflow, montage_workflow
    from repro.workflow import Ensemble

    if spec.workflow == "montage":
        template = montage_workflow(degree=spec.size)
    elif spec.workflow == "ligo":
        template = ligo_workflow(blocks=max(1, int(spec.size)))
    elif spec.workflow == "cybershake":
        template = cybershake_workflow(ruptures=max(1, int(spec.size)))
    else:
        raise ValueError(f"unknown workflow kind {spec.workflow!r}")
    return Ensemble.replicated(template, spec.workflows, interval=spec.interval)


def execute_spec(spec: RunSpec) -> RunDigest:
    """Run one spec in the current process and return its digest.

    Module-level (picklable by reference) so :class:`ProcessPoolExecutor`
    can ship it to workers.
    """
    engine = _build_engine(spec)
    ensemble = _build_ensemble(spec)
    result = engine.run(ensemble)
    events = getattr(getattr(result.cluster, "sim", None), "_seq", 0)
    return digest_result(result, label=spec.title(), events_scheduled=events)


def run_serial(specs: Sequence[RunSpec]) -> List[RunDigest]:
    """Reference serial execution, in submission order."""
    return [execute_spec(spec) for spec in specs]


def run_many(
    specs: Sequence[RunSpec],
    workers: int = 0,
    chunksize: int = 1,
) -> List[RunDigest]:
    """Shard ``specs`` across a process pool; merge in submission order.

    ``workers <= 1`` (or a single spec) falls back to the serial path —
    same results, no pool overhead.  The returned list is indexed like
    ``specs``: digest ``i`` always belongs to spec ``i``, whatever order
    the workers finished in.
    """
    specs = list(specs)
    if workers <= 1 or len(specs) <= 1:
        return run_serial(specs)
    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        # Executor.map preserves input order while letting runs complete
        # out of order — the canonical-order merge is the iteration.
        return list(pool.map(execute_spec, specs, chunksize=chunksize))
