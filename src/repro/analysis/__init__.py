"""Static analysis and runtime invariant checking for the repro system.

Three coordinated layers:

* :mod:`~repro.analysis.dataflow` — workflow/ensemble static analyzer
  (producer/consumer data-flow, cost-model sanity, shared-FS hotspots)
  reported via :mod:`~repro.analysis.report`;
* :mod:`~repro.analysis.sanitizer` — opt-in ASAN/TSAN-style runtime
  invariant checker hooked into the simulation kernel, resources, page
  cache and billing;
* :mod:`~repro.analysis.codelint` — AST lints for repo-specific hazards
  (wall-clock/RNG in deterministic code, set-iteration tie-breaks,
  ``__slots__`` violations, and the CL005-CL008 lock-discipline rules
  for the threaded daemons);
* :mod:`~repro.analysis.concurrency` — the concurrency correctness
  plane: the ``REPRO_RACEDETECT`` event recorder and shims, the offline
  happens-before/lockset race detector, and the seeded schedule
  explorer behind ``repro-schedules``.

The package ``__init__`` is lazy (PEP 562): instrumented hot modules import
``repro.analysis.sanitizer`` at startup, and that must not drag the
analyzer (and with it ``repro.workflow``/``repro.cloud``) into every
import of the simulation kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "AnalysisReport",
    "AnalyzerConfig",
    "Finding",
    "InvariantViolation",
    "LintFinding",
    "Race",
    "Sanitizer",
    "Severity",
    "analyze_ensemble",
    "analyze_workflow",
    "codelint",
    "concurrency",
    "dataflow",
    "detect_races",
    "race_report",
    "report",
    "sanitizer",
]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.analysis.dataflow import (
        AnalyzerConfig,
        analyze_ensemble,
        analyze_workflow,
    )
    from repro.analysis.report import AnalysisReport, Finding, Severity
    from repro.analysis.sanitizer import InvariantViolation, Sanitizer
    from repro.analysis.codelint import LintFinding
    from repro.analysis.concurrency.detector import (
        Race,
        detect_races,
        race_report,
    )

_EXPORTS = {
    "AnalysisReport": ("repro.analysis.report", "AnalysisReport"),
    "Finding": ("repro.analysis.report", "Finding"),
    "Severity": ("repro.analysis.report", "Severity"),
    "AnalyzerConfig": ("repro.analysis.dataflow", "AnalyzerConfig"),
    "analyze_ensemble": ("repro.analysis.dataflow", "analyze_ensemble"),
    "analyze_workflow": ("repro.analysis.dataflow", "analyze_workflow"),
    "InvariantViolation": ("repro.analysis.sanitizer", "InvariantViolation"),
    "Sanitizer": ("repro.analysis.sanitizer", "Sanitizer"),
    "LintFinding": ("repro.analysis.codelint", "LintFinding"),
    "Race": ("repro.analysis.concurrency.detector", "Race"),
    "detect_races": ("repro.analysis.concurrency.detector", "detect_races"),
    "race_report": ("repro.analysis.concurrency.detector", "race_report"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
