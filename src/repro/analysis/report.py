"""Structured findings report for the workflow static analyzer.

A :class:`Finding` pins one defect to a rule id, a severity, and a location
(workflow, job, file).  :class:`AnalysisReport` aggregates findings across
the templates of an ensemble and renders them for humans (``render``) or
machines (``to_dict``/``to_json``).

Severities follow the usual lint convention:

* ``ERROR`` — the workflow will misbehave (deadlock, overwrite, unrunnable
  job); ``repro-run --lint`` refuses to simulate.
* ``WARNING`` — probably a defect (dead outputs, zero-cost jobs); reported
  but not blocking.
* ``INFO`` — advisory notes (shared-FS hotspots); never affects exit codes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["AnalysisReport", "Finding", "Severity"]


class Severity(enum.IntEnum):
    """Finding severity; comparable (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Finding:
    """One defect: rule id, severity, and workflow/job/file location."""

    rule: str
    severity: Severity
    workflow: str
    message: str
    job_id: Optional[str] = None
    file_name: Optional[str] = None

    @property
    def location(self) -> str:
        parts = [self.workflow]
        if self.job_id is not None:
            parts.append(f"job {self.job_id}")
        if self.file_name is not None:
            parts.append(f"file {self.file_name}")
        return " / ".join(parts)

    def __str__(self) -> str:
        return f"{self.severity} {self.rule} [{self.location}] {self.message}"


@dataclass
class AnalysisReport:
    """Findings over one workflow or one ensemble's distinct templates."""

    findings: List[Finding] = field(default_factory=list)
    #: Distinct workflow templates analyzed (relabelled ensemble members
    #: share job objects and are analyzed once).
    workflows_analyzed: int = 0
    #: Ensemble members covered (>= ``workflows_analyzed``).
    members_analyzed: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    # -- queries ---------------------------------------------------------
    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    @property
    def problems(self) -> List[Finding]:
        """Findings at warning severity or above (what gates a run)."""
        return [f for f in self.findings if f.severity >= Severity.WARNING]

    def ok(self) -> bool:
        """True when there is nothing at warning severity or above."""
        return not self.problems

    def by_rule(self) -> Dict[str, List[Finding]]:
        out: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            out.setdefault(finding.rule, []).append(finding)
        return out

    # -- rendering -------------------------------------------------------
    def render(self, verbose: bool = False, limit: int = 25) -> str:
        """Human-readable report; ``verbose`` lifts the line cap."""
        header = (
            f"analyzed {self.workflows_analyzed} workflow template(s) "
            f"({self.members_analyzed} ensemble member(s)): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} note(s)"
        )
        ordered = sorted(
            self.findings, key=lambda f: (-f.severity, f.rule, f.location)
        )
        shown = ordered if verbose else ordered[:limit]
        lines = [header] + [f"  {finding}" for finding in shown]
        hidden = len(ordered) - len(shown)
        if hidden > 0:
            lines.append(f"  ... and {hidden} more (use --verbose to see all)")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "workflows_analyzed": self.workflows_analyzed,
            "members_analyzed": self.members_analyzed,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "findings": [
                {
                    "rule": f.rule,
                    "severity": str(f.severity),
                    "workflow": f.workflow,
                    "job": f.job_id,
                    "file": f.file_name,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
