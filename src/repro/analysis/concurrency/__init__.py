"""Concurrency correctness plane for the threaded daemons.

Four coordinated pieces (see ``docs/STATIC_ANALYSIS.md`` § Concurrency):

* :mod:`~repro.analysis.concurrency.recorder` — the ``REPRO_RACEDETECT``
  hook point; collects a :class:`~repro.analysis.concurrency.events.ConcEvent`
  log from instrumented runs;
* :mod:`~repro.analysis.concurrency.shims` — drop-in traced wrappers for
  ``threading`` primitives (plain primitives when no recorder is active);
* :mod:`~repro.analysis.concurrency.detector` — offline vector-clock
  happens-before race detection over the log, with stable fingerprints;
* :mod:`~repro.analysis.concurrency.explorer` — seeded cooperative
  schedule exploration (the ``repro-schedules`` CLI) with shrinking;
* :mod:`~repro.analysis.concurrency.lints` — AST lock-discipline lints
  CL005–CL008, dispatched from :mod:`repro.analysis.codelint`.

Lazy like :mod:`repro.analysis` itself: importing the package must not
drag the detector/explorer into instrumented production modules, which
only need :mod:`.recorder` and :mod:`.shims`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "ConcEvent",
    "Race",
    "Recorder",
    "detect_races",
    "detector",
    "events",
    "explorer",
    "lints",
    "race_report",
    "recorder",
    "shims",
]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.analysis.concurrency.detector import (
        Race,
        detect_races,
        race_report,
    )
    from repro.analysis.concurrency.events import ConcEvent
    from repro.analysis.concurrency.recorder import Recorder

_EXPORTS = {
    "ConcEvent": ("repro.analysis.concurrency.events", "ConcEvent"),
    "Race": ("repro.analysis.concurrency.detector", "Race"),
    "Recorder": ("repro.analysis.concurrency.recorder", "Recorder"),
    "detect_races": ("repro.analysis.concurrency.detector", "detect_races"),
    "race_report": ("repro.analysis.concurrency.detector", "race_report"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
