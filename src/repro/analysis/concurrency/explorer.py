"""Seeded cooperative schedule explorer (the ``repro-schedules`` engine).

Runs a *scenario* — a small concurrent program written against the
simulated primitives here — under controlled thread interleavings:

* execution is fully serialized: exactly one scenario thread runs at a
  time, and control transfers only at *yield points* (lock acquire /
  release, channel send / recv, explicit ``ctx.step()``), so every
  interleaving is a replayable list of thread choices;
* small state spaces are explored **exhaustively** by depth-first
  enumeration over the scheduling choices (prefix backtracking);
* beyond the exhaustive budget, schedules are **sampled PCT-style**:
  seeded random thread priorities with a few random priority-change
  points per run — deterministic for a given seed, so a failing seed is
  a reproduction recipe;
* any failing schedule (assertion, sanitizer violation, deadlock) is
  **shrunk** to a minimal-context-switch replayable trace.

Determinism contract: given the same scenario and seed, exploration,
failures and shrinking are byte-identical across runs.  Scenario code
must therefore never consult the wall clock or unseeded RNG (lint CL001
/ CL002 territory), and blocked operations carry explicit enabledness
predicates so the scheduler never spins.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

__all__ = [
    "DeadlockError",
    "ExploreOutcome",
    "Explorer",
    "RunResult",
    "ScheduleContext",
    "SimChannel",
    "SimLock",
    "shrink_schedule",
]


class DeadlockError(Exception):
    """Every unfinished thread is blocked on a disabled operation."""


class _Granted(Exception):
    """Internal: unwinds a scenario thread the controller abandons."""


# ---------------------------------------------------------------------------
# Simulated threads and primitives
# ---------------------------------------------------------------------------


class _SimThread:
    """One scenario thread; a real thread, but only runs when granted."""

    def __init__(self, tid: int, name: str, fn: Callable[[], None]) -> None:
        self.tid = tid
        self.name = name
        self.fn = fn
        self.go = threading.Event()
        self.paused = threading.Event()
        self.enabled: Callable[[], bool] = lambda: True
        self.op: str = "start"
        self.done = False
        self.error: Optional[BaseException] = None
        self.abandon = False
        self.thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )

    def _run(self) -> None:
        try:
            self._wait_grant()
            self.fn()
        except _Granted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            self.error = exc
        finally:
            self.done = True
            self.paused.set()

    def _wait_grant(self) -> None:
        self.paused.set()
        self.go.wait()
        self.go.clear()
        if self.abandon:
            raise _Granted()

    def pause(self, op: str, enabled: Callable[[], bool]) -> None:
        """Announce the next operation and wait to be scheduled."""
        self.op = op
        self.enabled = enabled
        self._wait_grant()


class SimLock:
    """Non-reentrant mutex for scenario code; acquire/release yield."""

    def __init__(self, ctx: "ScheduleContext", name: str) -> None:
        self._ctx = ctx
        self.name = name
        self.owner: Optional[int] = None

    def acquire(self) -> None:
        self._ctx._pause(f"acquire({self.name})", lambda: self.owner is None)
        assert self.owner is None, "scheduler granted a held lock"
        self.owner = self._ctx._current().tid

    def release(self) -> None:
        assert self.owner == self._ctx._current().tid, "release by non-owner"
        self.owner = None
        self._ctx._pause(f"release({self.name})", lambda: True)

    def __enter__(self) -> "SimLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class SimChannel:
    """Unbounded FIFO channel; ``recv`` blocks while empty."""

    def __init__(self, ctx: "ScheduleContext", name: str) -> None:
        self._ctx = ctx
        self.name = name
        self.items: Deque = deque()

    def send(self, item: object) -> None:
        self._ctx._pause(f"send({self.name})", lambda: True)
        self.items.append(item)

    def recv(self) -> object:
        self._ctx._pause(f"recv({self.name})", lambda: bool(self.items))
        return self.items.popleft()

    def __len__(self) -> int:
        return len(self.items)


class ScheduleContext:
    """What a scenario's ``build`` function programs against."""

    def __init__(self) -> None:
        self._threads: List[_SimThread] = []
        self._current_tid: Optional[int] = None

    # -- scenario-facing API ---------------------------------------------
    def spawn(self, fn: Callable[[], None], name: str) -> None:
        """Register a scenario thread (started by the controller)."""
        tid = len(self._threads)
        self._threads.append(_SimThread(tid, name, fn))

    def lock(self, name: str) -> SimLock:
        return SimLock(self, name)

    def channel(self, name: str) -> SimChannel:
        return SimChannel(self, name)

    def step(self, label: str = "step") -> None:
        """An explicit preemption point between shared-state accesses."""
        self._pause(label, lambda: True)

    # -- controller plumbing ---------------------------------------------
    def _current(self) -> _SimThread:
        assert self._current_tid is not None
        return self._threads[self._current_tid]

    def _pause(self, op: str, enabled: Callable[[], bool]) -> None:
        self._current().pause(op, enabled)


@dataclass
class RunResult:
    """One executed interleaving."""

    schedule: List[int]
    #: At each step, the (sorted) tids that were enabled — the DFS
    #: enumerator branches over these.
    enabled_sets: List[Tuple[int, ...]]
    #: Human-readable ``thread:op`` labels, aligned with ``schedule``.
    trace: List[str]
    failure: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    @property
    def switches(self) -> int:
        return sum(
            1
            for a, b in zip(self.schedule, self.schedule[1:])
            if a != b
        )

    def render_trace(self) -> str:
        lines = [f"  {i:3d}. {label}" for i, label in enumerate(self.trace)]
        status = self.failure or "ok"
        return "\n".join(lines + [f"  => {status}"])


Picker = Callable[[int, Sequence[int]], int]  # (step, enabled) -> tid


def _first_picker(step: int, enabled: Sequence[int]) -> int:
    return enabled[0]


def replay_picker(schedule: Sequence[int]) -> Picker:
    """Follow ``schedule``; fall back to the first enabled tid when the
    scheduled thread is finished or blocked (used by shrinking)."""

    def pick(step: int, enabled: Sequence[int]) -> int:
        if step < len(schedule) and schedule[step] in enabled:
            return schedule[step]
        return enabled[0]

    return pick


def pct_picker(
    rng: random.Random, change_points: int = 3, horizon: int = 12
) -> Picker:
    """PCT-style: random static priorities plus a few random points where
    the running thread's priority drops to the bottom.

    ``horizon`` bounds where change points land; it should be on the
    order of the scenario's step count or the demotions never fire.
    """
    priorities: Dict[int, float] = {}
    k = min(change_points, horizon)
    demote_steps = sorted(rng.sample(range(horizon), k=k))
    floor = 0.0

    def pick(step: int, enabled: Sequence[int]) -> int:
        nonlocal floor
        for tid in enabled:
            if tid not in priorities:
                priorities[tid] = rng.random() + 1.0
        chosen = max(enabled, key=lambda t: priorities[t])
        if demote_steps and step == demote_steps[0]:
            demote_steps.pop(0)
            floor -= 1.0
            priorities[chosen] = floor
        return chosen

    return pick


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------

MAX_STEPS = 10_000


class Explorer:
    """Runs one scenario under many schedules.

    ``build`` receives a fresh :class:`ScheduleContext`, spawns threads,
    and returns a *check* callable evaluated after all threads finish —
    returning an error string (the bug) or ``None`` (clean).
    """

    def __init__(
        self, build: Callable[[ScheduleContext], Callable[[], Optional[str]]]
    ) -> None:
        self.build = build
        self.runs = 0

    # -- single run ------------------------------------------------------
    def run_once(self, picker: Picker) -> RunResult:
        self.runs += 1
        ctx = ScheduleContext()
        check = self.build(ctx)
        threads = ctx._threads
        for sim in threads:
            sim.thread.start()
            sim.paused.wait()
            sim.paused.clear()
        schedule: List[int] = []
        enabled_sets: List[Tuple[int, ...]] = []
        trace: List[str] = []
        failure: Optional[str] = None
        step = 0
        try:
            while True:
                live = [t for t in threads if not t.done]
                if not live:
                    break
                enabled = tuple(
                    sorted(t.tid for t in live if t.enabled())
                )
                if not enabled:
                    blocked = ", ".join(
                        f"{t.name}@{t.op}" for t in live
                    )
                    raise DeadlockError(f"deadlock: {blocked}")
                tid = picker(step, enabled)
                assert tid in enabled, "picker chose a disabled thread"
                sim = threads[tid]
                schedule.append(tid)
                enabled_sets.append(enabled)
                trace.append(f"{sim.name}:{sim.op}")
                ctx._current_tid = tid
                sim.paused.clear()
                sim.go.set()
                sim.paused.wait()
                if sim.error is not None:
                    raise sim.error
                step += 1
                if step > MAX_STEPS:
                    raise RuntimeError("scenario exceeded MAX_STEPS")
        except DeadlockError as exc:
            failure = str(exc)
        except AssertionError as exc:
            failure = f"assertion: {exc}"
        finally:
            self._reap(threads)
        if failure is None:
            failure = check()
        return RunResult(schedule, enabled_sets, trace, failure)

    @staticmethod
    def _reap(threads: List[_SimThread]) -> None:
        """Unwind any still-parked scenario threads."""
        for sim in threads:
            if not sim.done:
                sim.abandon = True
                sim.go.set()
                sim.thread.join(timeout=5.0)

    # -- exploration strategies -----------------------------------------
    def explore_exhaustive(
        self, max_schedules: int = 200
    ) -> "ExploreOutcome":
        """DFS over scheduling choices via prefix backtracking.

        Complete when the state space fits in ``max_schedules`` runs;
        otherwise reports how much was covered.
        """
        stack: List[List[int]] = [[]]
        executed = 0
        exhausted = True
        while stack:
            if executed >= max_schedules:
                exhausted = False
                break
            prefix = stack.pop()
            result = self.run_once(replay_picker(prefix))
            executed += 1
            if result.failed:
                return ExploreOutcome(
                    failure=result, schedules_run=executed, complete=False
                )
            # Branch on every choice point at/after the forced prefix.
            for i in range(len(prefix), len(result.schedule)):
                taken = result.schedule[i]
                for alt in result.enabled_sets[i]:
                    if alt != taken:
                        stack.append(result.schedule[:i] + [alt])
        return ExploreOutcome(
            failure=None, schedules_run=executed, complete=exhausted
        )

    def explore_random(
        self, seed: int, schedules: int = 100, change_points: int = 3
    ) -> "ExploreOutcome":
        """Seeded PCT-style sampling; deterministic per seed."""
        master = random.Random(seed)
        for i in range(schedules):
            rng = random.Random(master.getrandbits(64))
            result = self.run_once(pct_picker(rng, change_points))
            if result.failed:
                return ExploreOutcome(
                    failure=result, schedules_run=i + 1, complete=False
                )
        return ExploreOutcome(
            failure=None, schedules_run=schedules, complete=False
        )


@dataclass
class ExploreOutcome:
    """What an exploration pass concluded."""

    failure: Optional[RunResult]
    schedules_run: int
    complete: bool
    shrunk: Optional[RunResult] = None

    @property
    def found_bug(self) -> bool:
        return self.failure is not None


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _blocks(schedule: Sequence[int]) -> List[Tuple[int, int]]:
    """Run-length encode: [(tid, length), ...]."""
    out: List[Tuple[int, int]] = []
    for tid in schedule:
        if out and out[-1][0] == tid:
            out[-1] = (tid, out[-1][1] + 1)
        else:
            out.append((tid, 1))
    return out


def shrink_schedule(explorer: Explorer, failing: RunResult) -> RunResult:
    """Minimize context switches in a failing interleaving.

    Greedily deletes run-blocks from the schedule and replays (the
    replay picker fills gaps with the first enabled thread, which merges
    neighbouring runs); a candidate is kept when it still fails with
    strictly fewer switches.  The result is a locally-minimal, fully
    replayable trace.
    """
    best = failing
    improved = True
    while improved:
        improved = False
        blocks = _blocks(best.schedule)
        for i in range(len(blocks)):
            candidate: List[int] = []
            for j, (tid, length) in enumerate(blocks):
                if j != i:
                    candidate.extend([tid] * length)
            result = explorer.run_once(replay_picker(candidate))
            if result.failed and result.switches < best.switches:
                best = result
                improved = True
                break
    return best
