"""Drop-in traced wrappers for ``threading`` primitives.

The threaded daemons create their synchronization objects through the
factory functions here (``make_lock``, ``make_condition``, ``make_event``,
``new_thread``).  With no recorder installed the factories return the
*plain* ``threading`` primitives — byte-for-byte the pre-instrumentation
behaviour and cost.  With a recorder active (``REPRO_RACEDETECT`` or
:func:`repro.analysis.concurrency.recorder.enabled`), they return traced
wrappers that log acquire/release, set/wait, notify/wake and fork/join
events for the happens-before analysis in
:mod:`repro.analysis.concurrency.detector`.

Recording order follows the recorder's discipline: clock-publishing ops
(``release``, ``set``/``notify``) are logged *before* the primitive op,
clock-receiving ops (``acquire``, waking from ``wait``) *after* it.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Tuple, Union

import repro.analysis.concurrency.recorder as _recorder

__all__ = [
    "TracedCondition",
    "TracedEvent",
    "TracedLock",
    "TracedThread",
    "make_condition",
    "make_event",
    "make_lock",
    "new_thread",
]


class TracedLock:
    """A ``threading.Lock`` that logs acquire/release edges."""

    __slots__ = ("_lock", "key")

    def __init__(self, name: str, key: Optional[Tuple] = None):
        self._lock = threading.Lock()
        rec = _recorder.active()
        self.key = key if key is not None else (
            rec.new_key("lock", name) if rec is not None else ("lock", name, 0)
        )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            rec = _recorder.active()
            if rec is not None:
                rec.on_acquire(self.key)
        return got

    def release(self) -> None:
        rec = _recorder.active()
        if rec is not None:
            rec.on_release(self.key)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()


class TracedEvent:
    """A ``threading.Event`` whose set→(observed)wait is a sync edge.

    An ``is_set()`` that returns True is treated like a zero-timeout
    successful wait: the caller has genuinely observed the set and may
    rely on everything that happened before it.
    """

    __slots__ = ("_event", "key")

    def __init__(self, name: str):
        self._event = threading.Event()
        rec = _recorder.active()
        self.key = rec.new_key("event", name) if rec is not None else (
            "event", name, 0
        )

    def set(self) -> None:
        rec = _recorder.active()
        if rec is not None:
            rec.on_set(self.key)
        self._event.set()

    def clear(self) -> None:
        self._event.clear()

    def is_set(self) -> bool:
        value = self._event.is_set()
        if value:
            rec = _recorder.active()
            if rec is not None:
                rec.on_wait(self.key)
        return value

    def wait(self, timeout: Optional[float] = None) -> bool:
        value = self._event.wait(timeout)
        if value:
            rec = _recorder.active()
            if rec is not None:
                rec.on_wait(self.key)
        return value


class TracedCondition:
    """A ``threading.Condition`` logging both its lock and notify edges."""

    __slots__ = ("_cond", "lock_key", "cv_key")

    def __init__(self, name: str):
        self._cond = threading.Condition()
        rec = _recorder.active()
        if rec is not None:
            self.lock_key = rec.new_key("lock", name + ".lock")
            self.cv_key = rec.new_key("cv", name)
        else:
            self.lock_key = ("lock", name + ".lock", 0)
            self.cv_key = ("cv", name, 0)

    def acquire(self, *args: Any) -> bool:
        got = self._cond.acquire(*args)
        if got:
            rec = _recorder.active()
            if rec is not None:
                rec.on_acquire(self.lock_key)
        return got

    def release(self) -> None:
        rec = _recorder.active()
        if rec is not None:
            rec.on_release(self.lock_key)
        self._cond.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def notify(self, n: int = 1) -> None:
        rec = _recorder.active()
        if rec is not None:
            rec.on_set(self.cv_key)
        self._cond.notify(n)

    def notify_all(self) -> None:
        rec = _recorder.active()
        if rec is not None:
            rec.on_set(self.cv_key)
        self._cond.notify_all()

    def wait(self, timeout: Optional[float] = None) -> bool:
        rec = _recorder.active()
        if rec is not None:
            # wait() releases the condition lock while sleeping.
            rec.on_release(self.lock_key)
        woke = self._cond.wait(timeout)
        if rec is not None:
            rec.on_acquire(self.lock_key)
            if woke:
                rec.on_wait(self.cv_key)
        return woke

    def wait_for(
        self, predicate: Callable[[], bool], timeout: Optional[float] = None
    ) -> bool:
        rec = _recorder.active()
        if rec is None:
            return self._cond.wait_for(predicate, timeout)
        rec.on_release(self.lock_key)
        ok = self._cond.wait_for(predicate, timeout)
        rec.on_acquire(self.lock_key)
        if ok:
            rec.on_wait(self.cv_key)
        return ok


class TracedThread(threading.Thread):
    """A thread with fork/begin/end/join edges and a stable logical id."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        rec = _recorder.active()
        ltid = rec.new_ltid(self.name) if rec is not None else 0
        setattr(self, _recorder._LTID_ATTR, ltid)

    @property
    def ltid(self) -> int:
        return getattr(self, _recorder._LTID_ATTR)

    def start(self) -> None:
        rec = _recorder.active()
        if rec is not None:
            rec.on_fork(self.ltid)
        super().start()

    def run(self) -> None:
        rec = _recorder.active()
        if rec is not None:
            rec.on_begin(self.ltid)
        try:
            super().run()
        finally:
            rec = _recorder.active()
            if rec is not None:
                rec.on_end(self.ltid)

    def join(self, timeout: Optional[float] = None) -> None:
        super().join(timeout)
        if not self.is_alive():
            rec = _recorder.active()
            if rec is not None:
                rec.on_join(self.ltid)


# ---------------------------------------------------------------------------
# Factories: plain primitives when the recorder is off
# ---------------------------------------------------------------------------


def make_lock(name: str) -> Union[threading.Lock, TracedLock]:
    """A lock, traced iff a recorder is active at creation time."""
    if _recorder.active() is not None:
        return TracedLock(name)
    return threading.Lock()


def make_event(name: str) -> Union[threading.Event, TracedEvent]:
    """An event, traced iff a recorder is active at creation time."""
    if _recorder.active() is not None:
        return TracedEvent(name)
    return threading.Event()


def make_condition(name: str) -> Union[threading.Condition, TracedCondition]:
    """A condition, traced iff a recorder is active at creation time."""
    if _recorder.active() is not None:
        return TracedCondition(name)
    return threading.Condition()


def new_thread(
    target: Callable[..., Any],
    name: str,
    args: Tuple = (),
    daemon: bool = True,
) -> threading.Thread:
    """A thread, traced iff a recorder is active at creation time."""
    cls = TracedThread if _recorder.active() is not None else threading.Thread
    return cls(target=target, name=name, args=args, daemon=daemon)
