"""Concurrency event log: the record format shared by the recorder,
the happens-before race detector and the schedule explorer.

One :class:`ConcEvent` is appended per synchronization operation or
registered shared-state access.  The log is a *total order only as an
artifact of recording*; the detector never relies on inter-thread log
order except where the recorder guarantees it (a ``release``/``send``/
``set`` is always appended before the matching ``acquire``/``recv``/
``wait`` — see :mod:`repro.analysis.concurrency.recorder`).

Operations
----------

=========  ==============================================================
op         meaning (``key`` identifies the object)
=========  ==============================================================
fork       parent is about to start the child thread ``key``
begin      first event of traced thread ``key`` (inherits the fork clock)
end        last event of traced thread ``key``
join       parent observed the child ``key`` terminate
acquire    lock/condition-lock acquired
release    lock/condition-lock about to be released
send       message ``seq`` published to channel ``key``
recv       message ``seq`` consumed from channel ``key``
set        event set / condition notified
wait       event-wait or condition-wait observed the set/notify
read       registered shared state read at ``site``
write      registered shared state written at ``site``
=========  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ConcEvent", "SYNC_OPS", "ACCESS_OPS"]

SYNC_OPS = frozenset(
    {"fork", "begin", "end", "join", "acquire", "release",
     "send", "recv", "set", "wait"}
)
ACCESS_OPS = frozenset({"read", "write"})


@dataclass(frozen=True)
class ConcEvent:
    """One recorded concurrency event.

    ``ltid`` is the recorder-assigned logical thread id (never reused,
    unlike ``threading.get_ident``); ``key`` identifies the sync object
    or shared variable; ``seq`` is the per-channel message sequence for
    ``send``/``recv``; ``site`` is a stable human-readable code location
    label for accesses (it feeds the race fingerprint, so it must not
    contain line numbers that churn)."""

    index: int
    ltid: int
    op: str
    key: Tuple
    seq: Optional[int] = None
    site: Optional[str] = None

    def __str__(self) -> str:
        parts = [f"#{self.index}", f"T{self.ltid}", self.op, repr(self.key)]
        if self.seq is not None:
            parts.append(f"seq={self.seq}")
        if self.site is not None:
            parts.append(f"@{self.site}")
        return " ".join(parts)
