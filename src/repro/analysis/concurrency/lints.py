"""Lock-discipline AST lints (CL005–CL009).

Dispatched from :mod:`repro.analysis.codelint` for the threaded
sub-packages (``repro/dewe``, ``repro/mq``); rule ids live in that
module's ``RULES`` table.  The analyses are lexical over one class at a
time — deliberately so: the daemons keep their locking self-contained,
and a lexical checker stays precise enough to run with zero suppressions
in the tier-1 suite.  The one exception is CL009, which is a
*module-level* pass: CL005's per-class view is structurally blind to a
method of class A reading ``b.attr`` where ``b`` is an element of class
B reached through a container (the ``Broker.stats()`` regression read
``topic.published`` under only the broker's lock); CL009 infers element
classes from ``__init__`` container annotations
(``self._topics: Dict[str, Topic] = {}``) and requires every guarded
attribute of such an element to be accessed under the *element's* own
lock.

CL005 uses two in-code annotations, in the spirit of clang's
thread-safety analysis:

* a class-level ``_guarded_by_ = {"attr": "_lock", ...}`` dict declares
  which lock protects which attribute; every ``self.attr`` access must
  then sit lexically inside ``with self._lock:`` (or an equivalent
  ``try``/``finally`` is out of scope — use ``with``);
* a method docstring line ``Requires: ``_lock``​`` declares the caller
  holds the lock for the whole method body (for private helpers only
  ever invoked under the lock).

``__init__`` is exempt: no other thread can hold a reference yet.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.codelint import LintFinding, _dotted

__all__ = ["lint_concurrency"]

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_REQUIRES_RE = re.compile(r"``([^`]+)``")

#: Call targets that block the calling thread (CL007).
_BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)
#: Method names that block when invoked on another sync object / thread.
_BLOCKING_METHODS = frozenset({"join", "wait", "wait_for"})


def _guarded_map(class_def: ast.ClassDef) -> Dict[str, str]:
    """The literal ``_guarded_by_`` dict of a class, or empty."""
    for stmt in class_def.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "_guarded_by_"
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            return {}
        mapping: Dict[str, str] = {}
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                mapping[key.value] = value.value
        return mapping
    return {}


def _required_locks(function: _FunctionDef) -> Set[str]:
    """Locks declared held-on-entry via ``Requires: ``name``​`` lines."""
    doc = ast.get_docstring(function)
    if not doc:
        return set()
    locks: Set[str] = set()
    for line in doc.splitlines():
        if "Requires:" in line:
            locks.update(_REQUIRES_RE.findall(line))
    return locks


def _self_name(function: _FunctionDef) -> Optional[str]:
    if function.args.args:
        return function.args.args[0].arg
    return None


def _with_locks(node: ast.With, self_name: str) -> List[Tuple[str, int]]:
    """``self.X`` context managers of a ``with``, as (dotted, line)."""
    out: List[Tuple[str, int]] = []
    for item in node.items:
        dotted = _dotted(item.context_expr)
        if dotted is not None and dotted.startswith(self_name + "."):
            out.append((dotted, item.context_expr.lineno))
    return out


def _is_blocking_call(
    call: ast.Call, held: Set[str]
) -> Optional[str]:
    """A short description when ``call`` blocks, else None.

    ``wait``/``wait_for`` on a *held* context object is exempt — waiting
    on the condition you hold is the one correct blocking-under-lock
    pattern (the wait releases it).
    """
    dotted = _dotted(call.func)
    if dotted is not None and dotted in _BLOCKING_DOTTED:
        return f"{dotted}()"
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method not in _BLOCKING_METHODS:
            return None
        receiver = _dotted(call.func.value)
        if method in ("wait", "wait_for") and receiver in held:
            return None
        if method == "join":
            # ",".join(parts) and friends: only flag joins that look like
            # thread joins — a name/attribute receiver with no arguments
            # or a single numeric timeout.
            if receiver is None:
                return None
            if call.args and not (
                len(call.args) == 1
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, (int, float))
            ):
                return None
        return f"{receiver or '<expr>'}.{method}()"
    return None


class _MethodScan:
    """One pass over a method body tracking lexically held ``self`` locks."""

    def __init__(
        self,
        class_name: str,
        path: str,
        self_name: str,
        guarded: Dict[str, str],
        required: Set[str],
        active: FrozenSet[str],
        exempt_guard: bool,
    ) -> None:
        self.class_name = class_name
        self.path = path
        self.self_name = self_name
        self.guarded = guarded
        self.required = required
        self.active = active
        self.exempt_guard = exempt_guard
        self.findings: List[LintFinding] = []
        #: (outer_dotted, inner_dotted) -> first line the order was seen.
        self.order_edges: Dict[Tuple[str, str], int] = {}
        self._reported_005: Set[Tuple[str, int]] = set()

    def scan(self, node: ast.AST, held: Set[str]) -> None:
        if isinstance(node, ast.With):
            acquired = _with_locks(node, self.self_name)
            inner = set(held)
            for dotted, line in acquired:
                for outer in sorted(inner):
                    if outer != dotted:
                        self.order_edges.setdefault((outer, dotted), line)
                inner.add(dotted)
            for item in node.items:
                self.scan(item.context_expr, held)
            for stmt in node.body:
                # Same reset as the generic walk: a def nested in the
                # with-body still escapes the lock context.
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.scan(stmt, set())
                else:
                    self.scan(stmt, inner)
            return
        if isinstance(node, ast.Call):
            if "CL007" in self.active and held:
                blocking = _is_blocking_call(node, held)
                if blocking is not None:
                    self.findings.append(
                        LintFinding(
                            "CL007",
                            self.path,
                            node.lineno,
                            f"{self.class_name}: blocking call {blocking} "
                            f"while holding {', '.join(sorted(held))}",
                        )
                    )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "wait_for"
                and _dotted(node.func.value) in held
            ):
                # Condition.wait_for evaluates its predicate with the
                # condition re-acquired, so the lambda runs *under* the
                # lock — scan it with the held set, not a fresh context.
                self.scan(node.func, held)
                for arg in node.args:
                    self.scan(arg.body if isinstance(arg, ast.Lambda) else arg, held)
                for kw in node.keywords:
                    self.scan(kw.value, held)
                return
        if (
            not self.exempt_guard
            and "CL005" in self.active
            and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.self_name
            and node.attr in self.guarded
        ):
            lock = self.guarded[node.attr]
            lock_dotted = f"{self.self_name}.{lock}"
            if lock_dotted not in held and lock not in self.required:
                mark = (node.attr, node.lineno)
                if mark not in self._reported_005:
                    self._reported_005.add(mark)
                    self.findings.append(
                        LintFinding(
                            "CL005",
                            self.path,
                            node.lineno,
                            f"{self.class_name}.{node.attr} is guarded by "
                            f"{lock} but accessed without it (wrap in "
                            f"`with self.{lock}:` or document "
                            f"`Requires: ``{lock}``` )",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            # Nested functions get a fresh lock context: they may run on
            # another thread (e.g. a Thread target closure).
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan(child, set())
            elif isinstance(child, ast.Lambda):
                self.scan(child, set())
            else:
                self.scan(child, held)


def _sleep_in_loops(
    tree: ast.AST, path: str, findings: List[LintFinding]
) -> None:
    """CL008: ``time.sleep`` lexically inside a loop body is polling."""
    reported: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and _dotted(sub.func) == "time.sleep"
                and id(sub) not in reported
            ):
                reported.add(id(sub))
                findings.append(
                    LintFinding(
                        "CL008",
                        path,
                        sub.lineno,
                        "time.sleep polling inside a loop; wait on an "
                        "Event/Condition instead",
                    )
                )


def _cycle_findings(
    class_name: str,
    path: str,
    edges: Dict[Tuple[str, str], int],
) -> List[LintFinding]:
    """CL006: report each edge that closes a cycle in the lock-order graph."""
    graph: Dict[str, Set[str]] = {}
    for (outer, inner) in edges:
        graph.setdefault(outer, set()).add(inner)

    def reaches(src: str, dst: str) -> bool:
        stack, seen = [src], {src}
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for nxt in graph.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    findings: List[LintFinding] = []
    for (outer, inner), line in sorted(edges.items(), key=lambda e: e[1]):
        if reaches(inner, outer):
            findings.append(
                LintFinding(
                    "CL006",
                    path,
                    line,
                    f"{class_name}: acquires {inner} while holding {outer}, "
                    f"but the opposite order also occurs (deadlock-prone)",
                )
            )
    return findings


# -- CL009: cross-object guarded access through containers -------------------
def _element_types(
    class_def: ast.ClassDef, guarded_classes: Dict[str, Dict[str, str]]
) -> Dict[str, str]:
    """``self.<attr>`` -> guarded element class, from ``__init__``
    annotations (``self._topics: Dict[str, Topic] = {}``).  Direct
    references (``self._topic: Topic = ...``) count too."""
    out: Dict[str, str] = {}
    for stmt in class_def.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name != "__init__":
            continue
        self_name = _self_name(stmt)
        if self_name is None:
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.AnnAssign):
                continue
            target = node.target
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                continue
            for name_node in ast.walk(node.annotation):
                if (
                    isinstance(name_node, ast.Name)
                    and name_node.id in guarded_classes
                ):
                    out[target.attr] = name_node.id
                    break
    return out


class _CrossObjectScan:
    """One method pass binding container elements to their classes.

    Tracks locals that provably alias an element of an annotated guarded
    container — ``t = self._topics[name]``, ``for _n, t in
    self._topics.items()``, comprehension generators — and flags any
    access to one of the element's ``_guarded_by_`` attributes made
    outside a lexical ``with t.<its lock>:`` block.
    """

    #: Container methods whose iteration/return yields (key, element).
    _ITEMS = frozenset({"items"})
    #: Container methods whose iteration/return yields elements.
    _VALUES = frozenset({"values"})
    #: Container methods returning one element.
    _GETTERS = frozenset({"get", "pop", "setdefault"})

    def __init__(
        self,
        class_name: str,
        path: str,
        self_name: str,
        elements: Dict[str, str],
        guarded_classes: Dict[str, Dict[str, str]],
    ) -> None:
        self.class_name = class_name
        self.path = path
        self.self_name = self_name
        self.elements = elements
        self.guarded_classes = guarded_classes
        self.findings: List[LintFinding] = []
        self._reported: Set[Tuple[str, int]] = set()

    def _is_container(self, node: ast.AST) -> Optional[str]:
        """The element class when ``node`` is ``self.<container attr>``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.self_name
        ):
            return self.elements.get(node.attr)
        return None

    def _element_of(self, node: ast.AST) -> Optional[str]:
        """The element class an *expression* evaluates to, if inferable."""
        if isinstance(node, ast.Subscript):
            return self._is_container(node.value)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in self._GETTERS:
                return self._is_container(node.func.value)
        return None

    def _iter_binding(
        self, target: ast.AST, iter_node: ast.AST
    ) -> Optional[Tuple[str, str]]:
        """``(var, element class)`` bound by ``for target in iter_node``."""
        klass = None
        var_node: Optional[ast.AST] = None
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Attribute
        ):
            if iter_node.func.attr in self._VALUES:
                klass = self._is_container(iter_node.func.value)
                var_node = target
            elif iter_node.func.attr in self._ITEMS:
                klass = self._is_container(iter_node.func.value)
                if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                    var_node = target.elts[1]
        if klass is not None and isinstance(var_node, ast.Name):
            return var_node.id, klass
        return None

    def scan(self, node: ast.AST, env: Dict[str, str], held: Set[str]) -> None:
        if isinstance(node, ast.With):
            inner = set(held)
            for item in node.items:
                dotted = _dotted(item.context_expr)
                if dotted is not None:
                    inner.add(dotted)
                self.scan(item.context_expr, env, held)
            for stmt in node.body:
                self.scan(stmt, env, inner)
            return
        if isinstance(node, ast.Assign):
            klass = self._element_of(node.value)
            self.scan(node.value, env, held)
            if klass is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = klass
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.scan(node.iter, env, held)
            binding = self._iter_binding(node.target, node.iter)
            if binding is not None:
                env[binding[0]] = binding[1]
            for stmt in node.body + node.orelse:
                self.scan(stmt, env, held)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            comp_env = dict(env)
            for gen in node.generators:
                self.scan(gen.iter, comp_env, held)
                binding = self._iter_binding(gen.target, gen.iter)
                if binding is not None:
                    comp_env[binding[0]] = binding[1]
                for cond in gen.ifs:
                    self.scan(cond, comp_env, held)
            if isinstance(node, ast.DictComp):
                self.scan(node.key, comp_env, held)
                self.scan(node.value, comp_env, held)
            else:
                self.scan(node.elt, comp_env, held)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in env
        ):
            klass = env[node.value.id]
            guarded = self.guarded_classes[klass]
            if node.attr in guarded:
                lock = guarded[node.attr]
                if f"{node.value.id}.{lock}" not in held:
                    mark = (node.attr, node.lineno)
                    if mark not in self._reported:
                        self._reported.add(mark)
                        self.findings.append(
                            LintFinding(
                                "CL009",
                                self.path,
                                node.lineno,
                                f"{self.class_name}: {klass}.{node.attr} of "
                                f"element {node.value.id!r} is guarded by "
                                f"{klass}'s {lock}, accessed without it — "
                                f"holding the container's lock is not "
                                f"enough (wrap in `with "
                                f"{node.value.id}.{lock}:` or call a "
                                f"locking accessor)",
                            )
                        )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan(child, {}, set())
            elif isinstance(child, ast.Lambda):
                self.scan(child, dict(env), set())
            else:
                self.scan(child, env, held)


def _cross_object_findings(
    tree: ast.Module, path: str
) -> List[LintFinding]:
    """CL009 over one module: infer container element classes, then
    require cross-object guarded accesses to hold the element's lock."""
    guarded_classes: Dict[str, Dict[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            mapping = _guarded_map(node)
            if mapping:
                guarded_classes[node.name] = mapping
    if not guarded_classes:
        return []
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        elements = _element_types(node, guarded_classes)
        if not elements:
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self_name = _self_name(stmt)
            if self_name is None:
                continue
            scan = _CrossObjectScan(
                class_name=node.name,
                path=path,
                self_name=self_name,
                elements=elements,
                guarded_classes=guarded_classes,
            )
            for body_stmt in stmt.body:
                scan.scan(body_stmt, {}, set())
            findings.extend(scan.findings)
    return findings


def lint_concurrency(
    tree: ast.Module, path: str, active: FrozenSet[str]
) -> List[LintFinding]:
    """Run the CL005–CL009 analyses that are in ``active`` over ``tree``."""
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guarded = _guarded_map(node) if "CL005" in active else {}
        class_edges: Dict[Tuple[str, str], int] = {}
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self_name = _self_name(stmt)
            if self_name is None:
                continue
            scan = _MethodScan(
                class_name=node.name,
                path=path,
                self_name=self_name,
                guarded=guarded,
                required=_required_locks(stmt),
                active=active,
                exempt_guard=stmt.name == "__init__",
            )
            for body_stmt in stmt.body:
                scan.scan(body_stmt, set(_hold_set(scan, stmt)))
            findings.extend(scan.findings)
            if "CL006" in active:
                for edge, line in scan.order_edges.items():
                    class_edges.setdefault(edge, line)
        if "CL006" in active:
            findings.extend(_cycle_findings(node.name, path, class_edges))
    if "CL008" in active:
        _sleep_in_loops(tree, path, findings)
    if "CL009" in active:
        findings.extend(_cross_object_findings(tree, path))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _hold_set(scan: _MethodScan, function: _FunctionDef) -> Sequence[str]:
    """Locks held on entry per the ``Requires:`` docstring markers."""
    return [f"{scan.self_name}.{lock}" for lock in scan.required]
