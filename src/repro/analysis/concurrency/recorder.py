"""Concurrency event recorder (the ``REPRO_RACEDETECT`` hook point).

The runtime half of the race detector, built exactly like
:mod:`repro.analysis.sanitizer`: a module-level ``_ACTIVE`` recorder that
instrumented code checks with a single attribute load, ``enable`` /
``disable`` / ``enabled`` management, and an environment flag
(``REPRO_RACEDETECT``) that arms it globally before the first ``repro``
import.  When no recorder is installed the instrumented paths cost one
``is not None`` test; the shims in
:mod:`repro.analysis.concurrency.shims` then hand out *plain*
``threading`` primitives, so the production daemons pay nothing.

Recording discipline (what makes offline replay sound): an operation that
*publishes* a clock (``release``, ``send``, ``set``) is recorded **before**
the underlying primitive op while the publisher still excludes observers;
an operation that *receives* a clock (``acquire``, ``recv``, ``wait``) is
recorded **after** the primitive op succeeded.  The matching publish is
therefore always earlier in the log than its receive, and the detector
can replay the log front to back.

This module imports nothing from the rest of ``repro`` so that
instrumented modules (master, worker, broker, state, journal, cache) can
import it without cycles.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.concurrency.events import ConcEvent

__all__ = [
    "ENV_FLAG",
    "Recorder",
    "active",
    "disable",
    "enable",
    "enabled",
]

#: Environment variable consulted at import time, like ``REPRO_SANITIZER``.
ENV_FLAG = "REPRO_RACEDETECT"

#: Attribute stashed on traced threads carrying their logical thread id.
_LTID_ATTR = "_repro_ltid"


class Recorder:
    """Appends :class:`ConcEvent` records under a single internal lock.

    The internal lock orders *appends*, not program synchronization — it
    contributes no happens-before edges to the analysis.  Logical thread
    ids are assigned once per thread and never reused, so a worker's
    short-lived job threads cannot alias each other the way raw
    ``threading.get_ident`` values can.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[ConcEvent] = []
        self.thread_names: Dict[int, str] = {}
        self._next_ltid = 1
        self._next_serial = 1
        #: Fallback registry for threads not created via the shims
        #: (the pytest main thread, broker server handler threads...).
        self._ident_ltids: Dict[int, int] = {}

    # -- identity ---------------------------------------------------------
    def new_ltid(self, name: str) -> int:
        """A fresh logical thread id (for :class:`~.shims.TracedThread`)."""
        with self._lock:
            ltid = self._next_ltid
            self._next_ltid += 1
            self.thread_names[ltid] = name
            return ltid

    def new_key(self, kind: str, name: str) -> Tuple[str, str, int]:
        """A collision-free identity for a sync object.

        The serial (not ``id()``) disambiguates same-named objects and
        is immune to CPython id reuse after garbage collection."""
        with self._lock:
            serial = self._next_serial
            self._next_serial += 1
            return (kind, name, serial)

    def current_ltid(self) -> int:
        thread = threading.current_thread()
        # A traced thread carries its id; 0 means it was created while no
        # recorder was active — fall through to the ident registry.
        ltid = getattr(thread, _LTID_ATTR, 0)
        if ltid:
            return ltid
        ident = thread.ident or 0
        with self._lock:
            ltid = self._ident_ltids.get(ident)
            if ltid is None:
                ltid = self._next_ltid
                self._next_ltid += 1
                self._ident_ltids[ident] = ltid
                self.thread_names[ltid] = thread.name
            return ltid

    # -- recording --------------------------------------------------------
    def record(
        self,
        op: str,
        key: Tuple,
        seq: Optional[int] = None,
        site: Optional[str] = None,
        ltid: Optional[int] = None,
    ) -> None:
        if ltid is None:
            ltid = self.current_ltid()
        with self._lock:
            self.events.append(
                ConcEvent(len(self.events), ltid, op, key, seq=seq, site=site)
            )

    # Sync operations (called by the shims / instrumented broker).
    def on_fork(self, child_ltid: int) -> None:
        self.record("fork", ("thread", child_ltid))

    def on_begin(self, child_ltid: int) -> None:
        self.record("begin", ("thread", child_ltid), ltid=child_ltid)

    def on_end(self, child_ltid: int) -> None:
        self.record("end", ("thread", child_ltid), ltid=child_ltid)

    def on_join(self, child_ltid: int) -> None:
        self.record("join", ("thread", child_ltid))

    def on_acquire(self, key: Tuple) -> None:
        self.record("acquire", key)

    def on_release(self, key: Tuple) -> None:
        self.record("release", key)

    def on_send(self, key: Tuple, seq: int) -> None:
        self.record("send", key, seq=seq)

    def on_recv(self, key: Tuple, seq: int) -> None:
        self.record("recv", key, seq=seq)

    def on_set(self, key: Tuple) -> None:
        self.record("set", key)

    def on_wait(self, key: Tuple) -> None:
        self.record("wait", key)

    # Registered shared-state accesses (called by instrumented modules).
    def on_read(self, var: str, obj: int, site: str) -> None:
        self.record("read", ("var", var, obj), site=site)

    def on_write(self, var: str, obj: int, site: str) -> None:
        self.record("write", ("var", var, obj), site=site)


#: The installed recorder, or ``None`` (the common, zero-cost case).
#: Instrumented modules read this attribute directly on the hot path.
_ACTIVE: Optional[Recorder] = None


def active() -> Optional[Recorder]:
    """The currently installed recorder, or ``None`` when disabled."""
    return _ACTIVE


def enable() -> Recorder:
    """Install (and return) a fresh recorder, replacing any current one."""
    global _ACTIVE
    _ACTIVE = Recorder()
    return _ACTIVE


def disable() -> Optional[Recorder]:
    """Uninstall the recorder; returns it (with the collected log)."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


@contextmanager
def enabled() -> Iterator[Recorder]:
    """Context manager: record the block, restoring the previous state."""
    global _ACTIVE
    previous = _ACTIVE
    rec = Recorder()
    _ACTIVE = rec
    try:
        yield rec
    finally:
        _ACTIVE = previous


def _install_from_env() -> None:
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return
    enable()


_install_from_env()
