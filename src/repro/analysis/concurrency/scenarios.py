"""Bounded concurrency scenarios for ``repro-schedules``.

Each scenario is a miniature of a real coordination pattern in the
threaded daemons, written against the simulated primitives in
:mod:`repro.analysis.concurrency.explorer` so every interleaving is
replayable.  Scenarios marked ``expect_bug=True`` carry a seeded defect
the explorer must find (CI runs them with ``--expect-bug``); the clean
variants must survive every explored schedule.

The patterns mirror the daemons deliberately:

* ``counter-*`` — the worker's ``jobs_completed`` counters (the real
  race fixed in this package's PR; see ``tests/test_concurrency_detector``);
* ``ack-reorder`` — the master's requeue-timeout racing a late
  completion ack, guarded in production by the journal/idempotency
  layer and checked here with the sanitizer's completed-redispatch
  invariant;
* ``lock-order`` — the CL006 deadlock pattern, dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.concurrency.explorer import ScheduleContext
from repro.analysis.sanitizer import Sanitizer

__all__ = ["SCENARIOS", "Scenario", "get_scenario"]

Check = Callable[[], Optional[str]]


@dataclass(frozen=True)
class Scenario:
    """A named, bounded concurrent program plus its final-state check."""

    name: str
    description: str
    build: Callable[[ScheduleContext], Check]
    expect_bug: bool


def _counter(guarded: bool) -> Callable[[ScheduleContext], Check]:
    def build(ctx: ScheduleContext) -> Check:
        state = {"value": 0}
        lock = ctx.lock("counter")

        def incr(label: str) -> Callable[[], None]:
            def run() -> None:
                for _ in range(2):
                    if guarded:
                        lock.acquire()
                    seen = state["value"]
                    ctx.step(f"{label}:rmw")  # the read-modify-write window
                    state["value"] = seen + 1
                    if guarded:
                        lock.release()

            return run

        ctx.spawn(incr("w1"), "w1")
        ctx.spawn(incr("w2"), "w2")

        def check() -> Optional[str]:
            if state["value"] != 4:
                return f"lost update: counter={state['value']}, expected 4"
            return None

        return check

    return build


def _ack_reorder(ctx: ScheduleContext) -> Check:
    """A requeue timeout racing a late completion ack.

    The timeout handler samples the job status, yields (in production:
    takes the broker round-trip), then redispatches.  If the ack lands
    in the window, the job is redispatched *after completing* — the
    exact invariant :meth:`Sanitizer.check_dispatch` guards.
    """
    sanitizer = Sanitizer(strict=False)
    jobs = ctx.channel("jobs")
    state = {"status": "dispatched"}

    def acker() -> None:
        ctx.step("ack:arrive")
        state["status"] = "completed"

    def timeout() -> None:
        if state["status"] == "dispatched":
            ctx.step("timeout:window")  # status re-check is missing
            sanitizer.check_dispatch("wf", "j1", state["status"])
            jobs.send("j1")

    ctx.spawn(acker, "acker")
    ctx.spawn(timeout, "timeout")

    def check() -> Optional[str]:
        if sanitizer.violations:
            return str(sanitizer.violations[0])
        return None

    return check


def _lock_order(ctx: ScheduleContext) -> Check:
    """Two locks taken in opposite orders — deadlocks under the right
    interleaving (the dynamic face of lint CL006)."""
    a = ctx.lock("A")
    b = ctx.lock("B")

    def ab() -> None:
        with a:
            ctx.step("t1:between")
            with b:
                pass

    def ba() -> None:
        with b:
            ctx.step("t2:between")
            with a:
                pass

    ctx.spawn(ab, "t-ab")
    ctx.spawn(ba, "t-ba")
    return lambda: None


def _pipeline(ctx: ScheduleContext) -> Check:
    """Clean producer/consumer over a channel: FIFO and conservation."""
    jobs = ctx.channel("jobs")
    done: List[object] = []

    def producer() -> None:
        for i in range(3):
            jobs.send(i)

    def consumer() -> None:
        for _ in range(3):
            done.append(jobs.recv())

    ctx.spawn(producer, "producer")
    ctx.spawn(consumer, "consumer")

    def check() -> Optional[str]:
        if done != [0, 1, 2]:
            return f"reordered/lost messages: {done}"
        return None

    return check


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "counter-locked",
            "two workers increment a shared counter under a lock (clean)",
            _counter(guarded=True),
            expect_bug=False,
        ),
        Scenario(
            "counter-racy",
            "the same counter without the lock: lost updates (seeded bug)",
            _counter(guarded=False),
            expect_bug=True,
        ),
        Scenario(
            "ack-reorder",
            "requeue timeout races a late completion ack (seeded bug)",
            _ack_reorder,
            expect_bug=True,
        ),
        Scenario(
            "lock-order",
            "opposite lock-acquisition orders deadlock (seeded bug)",
            _lock_order,
            expect_bug=True,
        ),
        Scenario(
            "pipeline",
            "producer/consumer FIFO conservation over a channel (clean)",
            _pipeline,
            expect_bug=False,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
