"""Offline predictive race detector over a recorded event log.

A hybrid of the classic vector-clock happens-before construction and
Eraser's lockset discipline, tuned for *prediction*: the goal is to flag
every pair of accesses that can race in **some** schedule, not just the
ones whose window the recorded schedule happened to hit.

* every logical thread carries a vector clock, incremented after each of
  its own events;
* ``fork``/``begin`` seed a child with its parent's clock and
  ``end``/``join`` merge it back;
* a ``send`` stamps the message's per-channel sequence number with the
  sender's clock, the matching ``recv`` joins it (the broker's FIFO
  topics number messages at publish time, so the pairing is exact even
  with competing consumers);
* ``set``/``wait`` on events and ``notify``/``wait`` on conditions edge
  from all setters to each observed wake-up;
* ``acquire``/``release`` contribute **mutual exclusion only** — they
  maintain each thread's held-lock set but deliberately induce *no*
  ordering edge.  Lock-induced edges describe the accident of one
  schedule: a hot lock that every loop iteration bounces through would
  serialize the log and mask any unlocked access whose race window is
  microseconds wide (exactly the bug class this detector exists for).

Two accesses to the same registered variable **race** when at least one
is a write, they come from different threads, their held-lock sets are
disjoint (no common lock excludes them), and neither is ordered before
the other by the strong edges above (program order, fork/join, message,
event).  Properly locked code never trips the lockset test; genuinely
ordered code (publish via queue, set-then-wait, join) never trips the
clock test; everything else is a schedule away from corruption.

Each race gets a stable *fingerprint* — a hash of the variable name and
the two access sites (deliberately not line numbers, which churn) — so a
regression test can pin the exact race it guards against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.concurrency.events import ConcEvent
from repro.analysis.report import AnalysisReport, Finding, Severity

__all__ = ["Access", "Race", "detect_races", "race_fingerprint", "race_report"]

VC = Dict[int, int]


def _join(into: VC, other: VC) -> None:
    for tid, clock in other.items():
        if clock > into.get(tid, 0):
            into[tid] = clock


@dataclass(frozen=True)
class Access:
    """One side of a race: which thread touched the variable, how, where."""

    ltid: int
    thread: str
    op: str
    site: str

    def __str__(self) -> str:
        return f"{self.op} at {self.site} [{self.thread}]"


@dataclass(frozen=True)
class Race:
    """An unsynchronized conflicting pair of accesses to one variable."""

    var: str
    a: Access
    b: Access
    fingerprint: str

    def __str__(self) -> str:
        return (
            f"race {self.fingerprint} on {self.var}: "
            f"{self.a} vs {self.b}"
        )


def race_fingerprint(var: str, a: Tuple[str, str], b: Tuple[str, str]) -> str:
    """Stable id for a race: variable plus the two ``(op, site)`` pairs.

    Order-insensitive, thread-insensitive, line-number-free — reruns and
    refactors that keep the access sites produce the same fingerprint.
    """
    lo, hi = sorted([f"{a[0]}@{a[1]}", f"{b[0]}@{b[1]}"])
    digest = hashlib.sha256(f"{var}|{lo}|{hi}".encode()).hexdigest()
    return digest[:12]


_LockSet = FrozenSet[Tuple]


@dataclass
class _VarState:
    """Last access per (thread, held-lockset), with the local clock.

    Keying by lockset (not just thread) keeps an early unlocked access
    visible even after the same thread later touches the variable under
    the proper lock — the unlocked epoch is the racy one.
    """

    # (ltid, lockset) -> (accessor's own clock component at access, site)
    reads: Dict[Tuple[int, _LockSet], Tuple[int, str]] = field(
        default_factory=dict
    )
    writes: Dict[Tuple[int, _LockSet], Tuple[int, str]] = field(
        default_factory=dict
    )


def detect_races(
    events: Sequence[ConcEvent],
    thread_names: Optional[Dict[int, str]] = None,
) -> List[Race]:
    """Replay the log, build the ordering, return deduplicated races."""
    names = thread_names or {}
    clocks: Dict[int, VC] = {}
    chan_vc: Dict[Tuple, VC] = {}      # (channel key, seq) -> sender clock
    event_vc: Dict[Tuple, VC] = {}     # event/cv key -> join of setters
    fork_vc: Dict[int, VC] = {}        # child ltid -> parent clock at fork
    end_vc: Dict[int, VC] = {}         # child ltid -> clock at end
    held: Dict[int, List[Tuple]] = {}  # ltid -> stack of held lock keys
    vars_state: Dict[Tuple, _VarState] = {}
    races: List[Race] = []
    seen: set = set()

    def clock_of(ltid: int) -> VC:
        vc = clocks.get(ltid)
        if vc is None:
            vc = {ltid: 1}
            clocks[ltid] = vc
        return vc

    def thread_label(ltid: int) -> str:
        return names.get(ltid, f"thread-{ltid}")

    for ev in events:
        op = ev.op
        if op == "begin":
            child = ev.key[1]
            vc = dict(fork_vc.get(child, {}))
            vc[child] = vc.get(child, 0) + 1
            clocks[child] = vc
            continue
        vc = clock_of(ev.ltid)
        if op == "fork":
            fork_vc[ev.key[1]] = dict(vc)
        elif op == "end":
            end_vc[ev.ltid] = dict(vc)
        elif op == "join":
            child_end = end_vc.get(ev.key[1])
            if child_end is not None:
                _join(vc, child_end)
        elif op == "acquire":
            held.setdefault(ev.ltid, []).append(ev.key)
        elif op == "release":
            stack = held.get(ev.ltid)
            if stack and ev.key in stack:
                stack.remove(ev.key)
        elif op == "send":
            chan_vc[(ev.key, ev.seq)] = dict(vc)
        elif op == "recv":
            sent = chan_vc.pop((ev.key, ev.seq), None)
            if sent is not None:
                _join(vc, sent)
        elif op == "set":
            slot = event_vc.setdefault(ev.key, {})
            _join(slot, vc)
        elif op == "wait":
            slot = event_vc.get(ev.key)
            if slot is not None:
                _join(vc, slot)
        elif op == "read" or op == "write":
            state = vars_state.setdefault(ev.key, _VarState())
            site = ev.site or "?"
            locks = frozenset(held.get(ev.ltid, ()))
            # A prior access by thread u at local clock k is ordered
            # before this one iff k <= vc[u]; a common held lock
            # excludes the pair in every schedule.
            conflicting = (
                (("write", state.writes),)
                if op == "read"
                else (("write", state.writes), ("read", state.reads))
            )
            for other_op, table in conflicting:
                for (u, other_locks), (k, other_site) in table.items():
                    if u == ev.ltid or k <= vc.get(u, 0):
                        continue
                    if locks & other_locks:
                        continue
                    var_name = ev.key[1]
                    fp = race_fingerprint(
                        var_name, (other_op, other_site), (op, site)
                    )
                    if fp in seen:
                        continue
                    seen.add(fp)
                    races.append(
                        Race(
                            var=var_name,
                            a=Access(u, thread_label(u), other_op, other_site),
                            b=Access(
                                ev.ltid, thread_label(ev.ltid), op, site
                            ),
                            fingerprint=fp,
                        )
                    )
            table = state.reads if op == "read" else state.writes
            table[(ev.ltid, locks)] = (vc.get(ev.ltid, 0), site)
        # Any other op: ignore (forward compatibility).
        vc[ev.ltid] = vc.get(ev.ltid, 0) + 1

    races.sort(key=lambda r: (r.var, r.fingerprint))
    return races


def race_report(races: Sequence[Race]) -> AnalysisReport:
    """Render races through the standard analysis report machinery."""
    report = AnalysisReport()
    for race in races:
        report.add(
            Finding(
                rule="RC001",
                severity=Severity.ERROR,
                workflow=race.var,
                message=(
                    f"data race [{race.fingerprint}]: {race.a} "
                    f"is unordered with {race.b}"
                ),
            )
        )
    return report
