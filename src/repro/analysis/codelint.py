"""Repo-specific AST lint rules.

Generic linters cannot know that ``repro.sim`` must be bit-deterministic,
that scheduling tie-breaks must not depend on set iteration order, or that
the million-object hot classes rely on ``__slots__`` staying airtight.
These rules encode exactly that:

========  ==================================================================
rule id   meaning
========  ==================================================================
CL001     wall-clock call (``time.time``/``datetime.now``/...) inside
          deterministic simulation code (``repro/sim``, ``repro/cloud``)
CL002     nondeterministically seeded RNG call inside deterministic
          simulation code (module-level ``random.*``, unseeded
          ``default_rng()``)
CL003     iteration over a ``set`` in scheduling/provisioning decision code
          (``repro/sim``, ``repro/cloud``, ``repro/engines``,
          ``repro/provision``, ``repro/dewe``) — iteration order is
          nondeterministic across processes; sort first
CL004     a ``__slots__`` class assigns a ``self`` attribute not declared
          in its (resolvable) slots chain — raises ``AttributeError`` at
          runtime, usually on a rarely executed path.  In the hot
          sub-packages (``repro/sim``, ``repro/engines``) the rule also
          flags *slot-less* in-module classes instantiated inside a
          loop: each such instance drags a ``__dict__`` through the
          million-object engine paths
CL005     a ``_guarded_by_``-annotated shared attribute is accessed
          outside its guarding lock (threaded code: ``repro/dewe``,
          ``repro/mq``) — see
          :mod:`repro.analysis.concurrency.lints`
CL006     locks of one class are acquired in inconsistent nesting order
          (deadlock-prone)
CL007     a blocking call (``time.sleep``, ``subprocess``, thread
          ``join``/foreign ``wait``) is made while holding a lock
CL008     bare ``time.sleep`` polling inside a loop where an ``Event`` /
          ``Condition`` wait belongs
CL009     an element of *another* class's guarded state — reached through
          an annotated container (``self._topics: Dict[str, Topic]``) —
          has a ``_guarded_by_`` attribute accessed outside that
          element's own lock (holding the container's lock is not
          enough; the ``Broker.stats()`` regression was exactly this)
========  ==================================================================

Run via ``repro-lint --code`` or the tier-1 test
``tests/test_codelint.py::test_repo_is_clean``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Union

__all__ = [
    "ALL_RULES",
    "LintFinding",
    "RULES",
    "default_rules_for",
    "lint_file",
    "lint_paths",
    "lint_source",
]

RULES: Dict[str, str] = {
    "CL001": "wall-clock call inside deterministic simulation code",
    "CL002": "nondeterministic RNG call inside deterministic simulation code",
    "CL003": "iteration over an unordered set in decision code",
    "CL004": "__slots__ class assigns an attribute not declared in __slots__",
    "CL005": "guarded shared attribute accessed without its guarding lock",
    "CL006": "inconsistent lock-acquisition order (deadlock-prone)",
    "CL007": "blocking call while holding a lock",
    "CL008": "time.sleep polling where an Event/Condition wait belongs",
    "CL009": "container element's guarded attribute accessed outside its lock",
}

ALL_RULES: FrozenSet[str] = frozenset(RULES)

#: The lock-discipline rules, implemented in
#: :mod:`repro.analysis.concurrency.lints` (imported lazily).
CONCURRENCY_RULES: FrozenSet[str] = frozenset(
    {"CL005", "CL006", "CL007", "CL008", "CL009"}
)

#: Sub-packages that must be bit-deterministic (CL001/CL002).
DETERMINISTIC_SUBPACKAGES = frozenset({"sim", "cloud"})
#: Sub-packages whose decisions must not depend on set order (CL003).
DECISION_SUBPACKAGES = frozenset({"sim", "cloud", "engines", "provision", "dewe"})
#: Sub-packages with real threads: lock-discipline rules (CL005-CL008).
THREADED_SUBPACKAGES = frozenset({"dewe", "mq"})
#: Sub-packages whose loops allocate millions of records: CL004 also
#: flags slot-less classes instantiated inside a loop there.
HOT_LOOP_SUBPACKAGES = frozenset({"sim", "engines"})

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)
_WALL_CLOCK_SUFFIXES = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)


@dataclass(frozen=True)
class LintFinding:
    """One code-lint hit, pinned to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _subpackage_of(path: Union[str, Path]) -> Optional[str]:
    """The ``repro`` sub-package a file belongs to (``"sim"``, ``"cloud"``,
    ...), or ``None`` when the path is not inside the ``repro`` package."""
    parts = Path(path).as_posix().split("/")
    for i, part in enumerate(parts[:-1]):
        if part == "repro":
            nxt = parts[i + 1]
            return nxt[:-3] if nxt.endswith(".py") else nxt
    return None


def default_rules_for(path: Union[str, Path]) -> FrozenSet[str]:
    """The rule set that applies to ``path`` by repository convention."""
    rules: Set[str] = {"CL004"}
    sub = _subpackage_of(path)
    if sub in DETERMINISTIC_SUBPACKAGES:
        rules |= {"CL001", "CL002"}
    if sub in DECISION_SUBPACKAGES:
        rules.add("CL003")
    if sub in THREADED_SUBPACKAGES:
        rules |= CONCURRENCY_RULES
    return frozenset(rules)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_wall_clock(dotted: str) -> bool:
    return dotted in _WALL_CLOCK_CALLS or dotted.endswith(_WALL_CLOCK_SUFFIXES)


def _is_nondeterministic_rng(dotted: str, call: ast.Call) -> bool:
    parts = dotted.split(".")
    if parts[0] == "random" and len(parts) > 1:
        return True  # module-level stdlib RNG: process-global hidden state
    if "random" in parts[:-1]:  # np.random.*, numpy.random.*
        if parts[-1] == "default_rng":
            return not call.args and not call.keywords  # unseeded
        return True  # legacy global-state numpy RNG
    return False


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _slot_names(class_def: ast.ClassDef) -> Optional[List[str]]:
    """Names declared by a literal ``__slots__`` assignment, else None."""
    for stmt in class_def.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
        ):
            continue
        value = stmt.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return [value.value]
        if isinstance(value, (ast.Tuple, ast.List)):
            names = []
            for element in value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None  # computed slots: cannot lint statically
                names.append(element.value)
            return names
        return None
    return None


def _resolved_slots(
    class_def: ast.ClassDef, class_map: Dict[str, ast.ClassDef]
) -> Optional[Set[str]]:
    """The union of slots along the base chain, or None when any base is
    unresolvable in-module or carries no ``__slots__`` (then instances get
    a ``__dict__`` and arbitrary attributes are legal)."""
    own = _slot_names(class_def)
    if own is None:
        return None
    names = set(own)
    stack = list(class_def.bases)
    seen: Set[str] = {class_def.name}
    while stack:
        base = stack.pop()
        if not isinstance(base, ast.Name) or base.id == "object":
            if isinstance(base, ast.Name):
                continue
            return None  # attribute/subscript base: give up conservatively
        if base.id in seen:
            continue
        seen.add(base.id)
        base_def = class_map.get(base.id)
        if base_def is None:
            return None  # imported base: unknown slots
        base_slots = _slot_names(base_def)
        if base_slots is None:
            return None  # dict-ful ancestor
        names.update(base_slots)
        stack.extend(base_def.bases)
    return names


def _self_attribute_targets(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Iterable[ast.Attribute]:
    """Attribute nodes assigned on the method's ``self`` argument."""
    if not function.args.args:
        return
    self_name = function.args.args[0].arg
    for node in ast.walk(function):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            queue = [target]
            while queue:
                t = queue.pop()
                if isinstance(t, (ast.Tuple, ast.List)):
                    queue.extend(t.elts)
                elif (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == self_name
                ):
                    yield t


def _lint_slots(tree: ast.Module, path: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    class_map = {
        node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
    }
    for class_def in class_map.values():
        slots = _resolved_slots(class_def, class_map)
        if slots is None:
            continue
        for stmt in class_def.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            decorators = {
                d.id for d in stmt.decorator_list if isinstance(d, ast.Name)
            }
            if "staticmethod" in decorators or "classmethod" in decorators:
                continue
            for attribute in _self_attribute_targets(stmt):
                if attribute.attr not in slots:
                    findings.append(
                        LintFinding(
                            "CL004",
                            path,
                            attribute.lineno,
                            f"{class_def.name}.{attribute.attr} assigned but "
                            f"not declared in __slots__",
                        )
                    )
    return findings


def _declares_slots(class_def: ast.ClassDef) -> bool:
    """True when the class gets ``__slots__`` — a literal assignment or a
    ``@dataclass(slots=True)`` decorator."""
    if _slot_names(class_def) is not None:
        return True
    for decorator in class_def.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = _dotted(decorator.func)
        if name is None or name.split(".")[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _lint_hot_loop_allocations(tree: ast.Module, path: str) -> List[LintFinding]:
    """CL004 extension for the hot sub-packages: a slot-less in-module
    class instantiated inside a loop.  Imported classes are out of scope
    (their slots are not resolvable statically); exceptions are exempt
    (raised once, not allocated per event)."""
    slotless = {
        node.name
        for node in tree.body
        if isinstance(node, ast.ClassDef)
        and not _declares_slots(node)
        and not any(
            isinstance(base, ast.Name) and base.id.endswith(("Error", "Exception"))
            for base in node.bases
        )
    }
    if not slotless:
        return []
    findings: List[LintFinding] = []
    seen: Set[tuple] = set()
    for node in ast.walk(tree):
        if not isinstance(node, _LOOP_NODES):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in slotless
                and (sub.lineno, sub.func.id) not in seen
            ):
                seen.add((sub.lineno, sub.func.id))
                findings.append(
                    LintFinding(
                        "CL004",
                        path,
                        sub.lineno,
                        f"slot-less class {sub.func.id} instantiated in a "
                        f"hot loop; declare __slots__",
                    )
                )
    return findings


def lint_source(
    source: str, path: str = "<string>", rules: Optional[FrozenSet[str]] = None
) -> List[LintFinding]:
    """Lint Python ``source``; ``rules`` defaults to every rule."""
    active = ALL_RULES if rules is None else rules
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding("CL000", path, exc.lineno or 0, f"syntax error: {exc.msg}")
        ]
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and ("CL001" in active or "CL002" in active):
            dotted = _dotted(node.func)
            if dotted is not None:
                if "CL001" in active and _is_wall_clock(dotted):
                    findings.append(
                        LintFinding(
                            "CL001",
                            path,
                            node.lineno,
                            f"wall-clock call {dotted}() breaks simulation "
                            f"determinism",
                        )
                    )
                if "CL002" in active and _is_nondeterministic_rng(dotted, node):
                    findings.append(
                        LintFinding(
                            "CL002",
                            path,
                            node.lineno,
                            f"{dotted}() draws from hidden/unseeded RNG state",
                        )
                    )
        if "CL003" in active:
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                if _is_set_expression(iter_expr):
                    findings.append(
                        LintFinding(
                            "CL003",
                            path,
                            iter_expr.lineno,
                            "iterating an unordered set; wrap in sorted() for "
                            "deterministic order",
                        )
                    )
    if "CL004" in active:
        findings.extend(_lint_slots(tree, path))
        if _subpackage_of(path) in HOT_LOOP_SUBPACKAGES:
            findings.extend(_lint_hot_loop_allocations(tree, path))
    if active & CONCURRENCY_RULES:
        # Lazy: the lock-discipline analyses live with the rest of the
        # concurrency tooling and most lint runs never enable them.
        from repro.analysis.concurrency.lints import lint_concurrency

        findings.extend(lint_concurrency(tree, path, active))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_file(
    path: Union[str, Path], rules: Optional[FrozenSet[str]] = None
) -> List[LintFinding]:
    """Lint one file; ``rules=None`` applies the repository defaults."""
    path = Path(path)
    if rules is None:
        rules = default_rules_for(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), rules)


def lint_paths(
    paths: Sequence[Union[str, Path]], rules: Optional[FrozenSet[str]] = None
) -> List[LintFinding]:
    """Lint files and/or directory trees (``*.py`` files, recursively)."""
    findings: List[LintFinding] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            findings.extend(lint_file(file, rules))
    return findings
