"""Opt-in runtime invariant sanitizer for the simulation substrate.

The paper's evaluation rests on the simulator's contention accounting being
conservation-correct: cores never over-committed, fair-share links never
delivering more than their capacity, the write-back cache flushing exactly
the bytes that were written, billed hours never undercutting wall time.
This module is an ASAN/TSAN-style checker for those invariants: hook points
in :mod:`repro.sim.engine`, :mod:`repro.sim.resources`,
:mod:`repro.storage.cache` and :mod:`repro.cloud.pricing` call into the
active :class:`Sanitizer` — or do nothing at all when no sanitizer is
installed (the disabled path is a single ``is not None`` test).

Usage::

    import repro.analysis.sanitizer as sanitizer

    san = sanitizer.enable(strict=False)   # collect mode
    ... run simulations ...
    sanitizer.disable()
    for violation in san.violations:
        print(violation)

``strict=True`` raises :class:`InvariantViolation` at the first violation
(after recording it).  Setting the environment variable ``REPRO_SANITIZER``
before the first ``repro`` import enables the sanitizer globally: ``1`` or
``strict`` for strict mode, ``collect`` for collect-only.  The test suite
enables strict mode for every test via ``tests/conftest.py``.

This module intentionally imports nothing from the rest of ``repro`` so
that the instrumented modules can import it without cycles; the checks are
white-box and reach into the instrumented objects' attributes directly.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ENV_FLAG",
    "InvariantViolation",
    "Sanitizer",
    "Violation",
    "active",
    "disable",
    "enable",
    "enabled",
]

#: Environment variable consulted at import time (see :func:`_install_from_env`).
ENV_FLAG = "REPRO_SANITIZER"


class InvariantViolation(RuntimeError):
    """Raised in strict mode when a simulation invariant is broken."""


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation.

    ``check`` is a stable identifier (e.g. ``"core-conservation"``);
    ``time`` is the simulation clock when available, else ``None``.
    """

    check: str
    message: str
    time: Optional[float] = None

    def __str__(self) -> str:
        stamp = f" (t={self.time:g})" if self.time is not None else ""
        return f"[{self.check}] {self.message}{stamp}"


class Sanitizer:
    """Collected-violation checker with optional fail-fast behaviour."""

    __slots__ = ("strict", "violations", "_billing_hwm", "_cow_owners")

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: List[Violation] = []
        # Per billing model: the largest rental duration checked so far and
        # the hours it billed, for the monotonicity sandwich check.
        self._billing_hwm: Dict[object, Tuple[float, float]] = {}
        # id(mutable per-job dict) -> (owning workflow name, the dict).
        # The strong reference keeps the dict alive so CPython cannot
        # recycle its id for an unrelated later dict (false aliasing).
        self._cow_owners: Dict[int, Tuple[str, object]] = {}

    def _report(self, check: str, message: str, time: Optional[float] = None) -> None:
        violation = Violation(check, message, time)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(str(violation))

    # -- event clock (repro.sim.engine) ---------------------------------
    def check_step(self, now: float, event_time: float) -> None:
        """The agenda must never pop an event scheduled before ``now``."""
        if event_time < now:
            self._report(
                "clock-monotonicity",
                f"event scheduled at t={event_time!r} popped after now={now!r}",
                time=now,
            )

    def check_schedule(self, now: float, delay: float) -> None:
        """Scheduling into the past would reorder the event agenda."""
        if delay < 0:
            self._report(
                "clock-monotonicity",
                f"event scheduled with negative delay {delay!r}",
                time=now,
            )

    # -- shared-structure ensembles (repro.dewe.state.WorkflowState) ----
    def check_cow_isolation(self, state, skeleton) -> None:
        """Per-member mutable job state must never alias the shared
        skeleton's structures, nor another member's (relabelled ensemble
        members share the DAG structure; sharing *run state* would let
        one member's progress corrupt another's).

        The checks unwrap arena views to their backing arrays (``_arr``)
        — aliasing lives at the storage layer, and two distinct view
        objects over one shared array would be exactly the bug this
        check exists to catch.
        """
        pending_store = getattr(state.pending, "_arr", state.pending)
        shared_arena = getattr(skeleton, "_arena", None)
        if pending_store is skeleton.initial_pending or (
            shared_arena is not None
            and pending_store is shared_arena.initial_pending
        ):
            self._report(
                "cow-isolation",
                f"{state.name}: pending counts alias the shared skeleton",
            )
        owners = self._cow_owners
        status_store = getattr(state.status, "_arr", state.status)
        for label, d in (("pending", pending_store), ("status", status_store)):
            entry = owners.get(id(d))
            if entry is not None and entry[1] is d and entry[0] != state.name:
                self._report(
                    "cow-isolation",
                    f"{state.name}: {label} store is shared with "
                    f"workflow {entry[0]!r}",
                )
            owners[id(d)] = (state.name, d)

    # -- core pools (repro.sim.resources.CorePool) ----------------------
    def check_core_pool(self, pool) -> None:
        """0 <= in-use <= capacity at every acquire/release."""
        busy = pool.busy
        if busy < 0 or busy > pool.capacity:
            self._report(
                "core-conservation",
                f"{pool.name}: busy={busy} outside [0, {pool.capacity}]",
                time=pool.sim.now,
            )
        if pool.queued < 0:
            self._report(
                "core-queue",
                f"{pool.name}: queued={pool.queued} is negative",
                time=pool.sim.now,
            )

    # -- fair-share links (repro.sim.resources.FairShareLink) -----------
    def check_link(self, link) -> None:
        """Active streams must match pending completions; the aggregate
        throughput of the shares must never exceed the link capacity."""
        n = link._n
        if n < 0 or n != len(link._heap):
            self._report(
                "link-conservation",
                f"{link.name}: active={n} but {len(link._heap)} pending "
                f"completions",
                time=link.sim.now,
            )
        elif link.log.current > link.capacity * (1.0 + 1e-9) + 1e-9:
            self._report(
                "link-share",
                f"{link.name}: aggregate throughput {link.log.current:.6g} B/s "
                f"exceeds capacity {link.capacity:.6g} B/s",
                time=link.sim.now,
            )

    # -- write-back cache (repro.storage.cache.WriteBackCache) ----------
    @staticmethod
    def _cache_tol(cache) -> float:
        return 1e-6 + 1e-9 * cache.bytes_written

    def check_cache(self, cache) -> None:
        """Dirty bytes never go negative; flushed never exceeds written."""
        tol = self._cache_tol(cache)
        if cache.dirty < -tol:
            self._report(
                "cache-dirty-negative",
                f"{cache.name}: dirty={cache.dirty:.6g} B is negative",
                time=cache.sim.now,
            )
        if cache.bytes_flushed > cache.bytes_written + tol:
            self._report(
                "cache-overflush",
                f"{cache.name}: flushed {cache.bytes_flushed:.6g} B of "
                f"{cache.bytes_written:.6g} B written",
                time=cache.sim.now,
            )

    def check_cache_drained(self, cache) -> None:
        """At drain, every byte written must have been flushed."""
        if abs(cache.bytes_written - cache.bytes_flushed) > self._cache_tol(cache):
            self._report(
                "cache-flush-conservation",
                f"{cache.name}: drained with {cache.bytes_written:.6g} B "
                f"written but {cache.bytes_flushed:.6g} B flushed",
                time=cache.sim.now,
            )

    # -- billing (repro.cloud.pricing) -----------------------------------
    def check_billing(self, model, seconds: float, hours: float) -> None:
        """Billed hours are non-negative, cover the rental, and are
        monotone non-decreasing in the rental duration."""
        if hours < 0:
            self._report(
                "billing-negative", f"{model}: billed {hours!r} h for {seconds!r} s"
            )
        if hours * 3600.0 + 1e-6 < seconds:
            self._report(
                "billing-undercharge",
                f"{model}: {seconds:.6g} s billed as {hours:.6g} h "
                f"(= {hours * 3600.0:.6g} s)",
            )
        hwm = self._billing_hwm.get(model)
        if hwm is not None:
            hwm_seconds, hwm_hours = hwm
            if seconds >= hwm_seconds and hours < hwm_hours - 1e-12:
                self._report(
                    "billing-monotonicity",
                    f"{model}: {seconds:.6g} s billed {hours:.6g} h but "
                    f"{hwm_seconds:.6g} s billed {hwm_hours:.6g} h",
                )
            if seconds <= hwm_seconds and hours > hwm_hours + 1e-12:
                self._report(
                    "billing-monotonicity",
                    f"{model}: {seconds:.6g} s billed {hours:.6g} h but "
                    f"{hwm_seconds:.6g} s billed {hwm_hours:.6g} h",
                )
        if hwm is None or seconds >= hwm[0]:
            self._billing_hwm[model] = (seconds, hours)

    def check_spot_billing(self, model, seconds: float, hours: float) -> None:
        """Provider-interrupted leases bill *down*: never more than the
        wall time, and never more than one billing quantum below it."""
        quantum = {"per-hour": 3600.0, "per-minute": 60.0}.get(
            getattr(model, "value", None), 0.0
        )
        if hours < 0:
            self._report(
                "billing-negative", f"{model}: billed {hours!r} h for {seconds!r} s"
            )
        billed_seconds = hours * 3600.0
        if billed_seconds > seconds + 1e-6:
            self._report(
                "spot-overcharge",
                f"{model}: provider-interrupted lease of {seconds:.6g} s "
                f"billed as {hours:.6g} h (= {billed_seconds:.6g} s)",
            )
        if seconds - billed_seconds > quantum + 1e-6:
            self._report(
                "spot-undercharge",
                f"{model}: {seconds:.6g} s billed {hours:.6g} h — more than "
                f"one free quantum ({quantum:.6g} s) forgiven",
            )

    # -- leases (repro.engines worker-daemon rentals) ---------------------
    def check_leases(self, name: str, spans, makespan: float) -> None:
        """Lease conservation for one node: intervals must be well formed,
        chronological, non-overlapping and within the run — a mid-lease
        termination must close the lease, not duplicate or lose it."""
        last_end = 0.0
        for start, end in spans:
            if end < start - 1e-9 or start < -1e-9:
                self._report(
                    "lease-conservation",
                    f"{name}: malformed lease [{start:.6g}, {end:.6g}]",
                )
            if start < last_end - 1e-9:
                self._report(
                    "lease-conservation",
                    f"{name}: lease [{start:.6g}, {end:.6g}] overlaps the "
                    f"previous lease ending at {last_end:.6g}",
                )
            if end > makespan + 1e-6:
                self._report(
                    "lease-conservation",
                    f"{name}: lease [{start:.6g}, {end:.6g}] extends past "
                    f"makespan {makespan:.6g}",
                )
            last_end = max(last_end, end)

    # -- liveness leases (repro.liveness) ---------------------------------
    def check_lease_fencing(self, workflow: str, job_id: str, worker: str,
                            stale: bool, detail: str = "",
                            time: Optional[float] = None) -> None:
        """A job must never settle from a fenced (stale-epoch) lease —
        once the master fences a worker, acknowledgments carrying the
        fenced epoch have to be rejected before they reach the state
        machine, or a redispatched attempt can settle twice."""
        if stale:
            extra = f" ({detail})" if detail else ""
            self._report(
                "lease-fencing",
                f"{workflow}/{job_id}: settled from fenced lease of "
                f"{worker}{extra}",
                time=time,
            )

    def check_failover_billing(self, name: str, spans,
                               makespan: Optional[float] = None) -> None:
        """After a master failover the billing record for one node must
        still be a chronological sequence of non-overlapping rental
        spans — a standby that re-opened a rental the primary already
        closed would double-bill the node's lease interval."""
        last_end = 0.0
        for start, end in spans:
            if end < start - 1e-9 or start < -1e-9:
                self._report(
                    "failover-billing",
                    f"{name}: malformed rental span [{start:.6g}, {end:.6g}] "
                    f"after failover",
                )
            if start < last_end - 1e-9:
                self._report(
                    "failover-billing",
                    f"{name}: rental span [{start:.6g}, {end:.6g}] "
                    f"double-bills the interval before {last_end:.6g}",
                )
            if makespan is not None and end > makespan + 1e-6:
                self._report(
                    "failover-billing",
                    f"{name}: rental span [{start:.6g}, {end:.6g}] extends "
                    f"past makespan {makespan:.6g}",
                )
            last_end = max(last_end, end)

    # -- chaos recovery (repro.faults.chaos) ------------------------------
    def check_recovery(self, workflow: str, counts: Dict[str, int]) -> None:
        """At settlement every job is completed exactly once or
        dead-lettered — anything still waiting/queued/running is a job
        the retry machinery stranded."""
        n_jobs = sum(counts.values())
        completed = counts.get("completed", 0)
        dead = counts.get("dead", 0)
        stranded = n_jobs - completed - dead
        if stranded != 0:
            self._report(
                "recovery-conservation",
                f"{workflow}: {stranded} job(s) neither completed nor "
                f"dead-lettered at settlement ({counts})",
            )

    # -- crash recovery (repro.recovery) ----------------------------------
    def check_dispatch(self, workflow: str, job_id: str, status: str,
                       time: Optional[float] = None) -> None:
        """A job already completed or dead-lettered must never be
        re-dispatched — the journal/idempotency layer has to absorb the
        duplicate before it reaches the broker."""
        if status in ("completed", "dead"):
            self._report(
                "completed-redispatch",
                f"{workflow}/{job_id}: dispatched while {status}",
                time=time,
            )

    def check_replay(self, seq: int, expected: str, got: str) -> None:
        """Journal replay must reproduce the journaled prefix
        byte-for-byte; a mismatch means the resume diverged from the
        crashed run."""
        self._report(
            "journal-replay",
            f"replayed record {seq} diverged: expected {expected!r}, "
            f"got {got!r}",
        )

    def check_replay_digest(self, seq: int, expected: str, got: str) -> None:
        """At a checkpoint offset the replayed master state must digest
        to the checkpointed value."""
        self._report(
            "checkpoint-digest",
            f"checkpoint at seq {seq}: state digest {got} != journaled "
            f"{expected}",
        )

    def check_regeneration(self, owner: str, name: str,
                           expected: str, got: str,
                           time: Optional[float] = None) -> None:
        """A regenerated file must byte-match (digest-match) the
        original it replaces."""
        if got != expected:
            self._report(
                "regeneration-integrity",
                f"{owner}/{name}: regenerated digest {got} != original "
                f"{expected}",
                time=time,
            )


#: The installed sanitizer, or ``None`` (the common, zero-cost case).
#: Instrumented modules read this attribute directly on the hot path.
_ACTIVE: Optional[Sanitizer] = None


def active() -> Optional[Sanitizer]:
    """The currently installed sanitizer, or ``None`` when disabled."""
    return _ACTIVE


def enable(strict: bool = False) -> Sanitizer:
    """Install (and return) a fresh sanitizer, replacing any current one."""
    global _ACTIVE
    _ACTIVE = Sanitizer(strict=strict)
    return _ACTIVE


def disable() -> Optional[Sanitizer]:
    """Uninstall the sanitizer; returns it (with collected violations)."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


@contextmanager
def enabled(strict: bool = False) -> Iterator[Sanitizer]:
    """Context manager: sanitize the block, restoring the previous state."""
    global _ACTIVE
    previous = _ACTIVE
    san = Sanitizer(strict=strict)
    _ACTIVE = san
    try:
        yield san
    finally:
        _ACTIVE = previous


def _install_from_env() -> None:
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return
    enable(strict=value != "collect")


_install_from_env()
