"""Data-flow static analysis over workflow DAGs.

Beyond the structural checks of :mod:`repro.workflow.validation`, this
module analyses the :class:`~repro.workflow.dag.DataFile` producer/consumer
relation — the thing that, per Juve et al.'s EC2 workflow studies, actually
determines shared-file-system load, cost and makespan.  A million-job
ensemble with a silent data-flow defect (an input nobody produces, a file
two jobs overwrite, a consumer racing its producer) will burn a simulated —
or a real — cluster-hour before failing; these rules catch it at
submission time.

Rules (see ``docs/STATIC_ANALYSIS.md`` for the full catalogue):

========  ========  ==========================================================
rule id   severity  meaning
========  ========  ==========================================================
ST001     ERROR     structural defect (dangling edge, duplicate, cycle, empty)
DF001     ERROR     non-input file consumed but produced by no job
DF002     ERROR     file produced by two different jobs
DF003     WARNING   dead work: no output of the producing job is consumed
DF004     ERROR     consumer is not a descendant of the file's producer
DF005     WARNING   file marked ``kind="input"`` but produced by a job
CM001     WARNING   job runtime is not positive
CM002     ERROR     job ``threads`` exceed every catalogue instance's vCPUs
CM003     ERROR     job timeout override is not positive
FS001     INFO      shared-FS hotspot: one file consumed by many jobs
========  ========  ==========================================================

The producer-ordering rule (DF004) takes the direct-parent fast path for
the overwhelmingly common case (a consumer reading its parent's outputs)
and falls back to ancestor bitsets — one arbitrary-precision int per job —
only for the transitive pairs, keeping full-reachability checking feasible
at paper scale (an 8,586-job 6.0-degree Montage needs ~9 MB of bitsets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import AnalysisReport, Finding, Severity
from repro.cloud.instances import INSTANCE_TYPES
from repro.workflow.dag import DataFile, Job, Workflow
from repro.workflow.ensemble import Ensemble
from repro.workflow.validation import find_structural_problems

__all__ = ["AnalyzerConfig", "RULES", "analyze_ensemble", "analyze_workflow"]

#: rule id -> (severity, one-line description); the documentation and the
#: CLI ``--ignore`` validation both read this.
RULES: Dict[str, Tuple[Severity, str]] = {
    "ST001": (
        Severity.ERROR,
        "structural defect (dangling edge, duplicate entry, cycle, empty DAG)",
    ),
    "DF001": (
        Severity.ERROR,
        "non-input file consumed but produced by no job",
    ),
    "DF002": (Severity.ERROR, "file produced by two different jobs"),
    "DF003": (
        Severity.WARNING,
        "dead work: no output of the producing job is ever consumed",
    ),
    "DF004": (
        Severity.ERROR,
        "consumer is not a descendant of the file's producer",
    ),
    "DF005": (Severity.WARNING, "file marked kind='input' but produced by a job"),
    "CM001": (Severity.WARNING, "job runtime is not positive"),
    "CM002": (
        Severity.ERROR,
        "job threads exceed every catalogue instance's vCPUs",
    ),
    "CM003": (Severity.ERROR, "job timeout override is not positive"),
    "FS001": (Severity.INFO, "shared-FS hotspot: one file consumed by many jobs"),
}


def _max_catalogue_vcpus() -> int:
    return max(t.vcpus for t in INSTANCE_TYPES.values())


@dataclass(frozen=True)
class AnalyzerConfig:
    """Tunables for :func:`analyze_workflow`.

    ``hotspot_fanout`` is the FS001 threshold: a file read by more than
    this many jobs concentrates load on its home node's disk and NIC
    (paper §IV.A's mBgModel corrections table is the canonical case).
    ``ignore`` suppresses rule ids entirely.
    """

    hotspot_fanout: int = 256
    ignore: frozenset = frozenset()
    max_catalogue_vcpus: int = field(default_factory=_max_catalogue_vcpus)


def _ancestor_bits(workflow: Workflow) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Per-job ancestor sets as int bitmasks, in one topological pass."""
    index = {job_id: i for i, job_id in enumerate(workflow.jobs)}
    ancestors: Dict[str, int] = {}
    for job in workflow.topological_order():
        bits = 0
        for parent_id in job.parents:
            bits |= ancestors[parent_id] | (1 << index[parent_id])
        ancestors[job.id] = bits
    return index, ancestors


def analyze_workflow(
    workflow: Workflow, config: Optional[AnalyzerConfig] = None
) -> AnalysisReport:
    """Run every rule over one workflow; returns the findings report."""
    cfg = config or AnalyzerConfig()
    report = AnalysisReport(workflows_analyzed=1, members_analyzed=1)

    def emit(
        rule: str,
        message: str,
        job_id: Optional[str] = None,
        file_name: Optional[str] = None,
    ) -> None:
        if rule in cfg.ignore:
            return
        severity, _ = RULES[rule]
        report.add(
            Finding(rule, severity, workflow.name, message, job_id, file_name)
        )

    # -- ST001: structural pass -----------------------------------------
    structural = find_structural_problems(workflow)
    for problem in structural:
        emit("ST001", problem)
    if not workflow.jobs:
        return report

    # -- single pass over jobs: producers, consumers, cost model ---------
    producers: Dict[str, Job] = {}
    produced_files: Dict[str, DataFile] = {}
    consumers: Dict[str, List[Job]] = {}
    consumed_files: Dict[str, DataFile] = {}
    for job in workflow.jobs.values():
        for f in job.outputs:
            prior = producers.get(f.name)
            if prior is not None and prior is not job:
                emit(
                    "DF002",
                    f"also produced by {prior.id}",
                    job_id=job.id,
                    file_name=f.name,
                )
            else:
                producers[f.name] = job
                produced_files[f.name] = f
            if f.kind == "input":
                emit(
                    "DF005",
                    "produced file is marked kind='input' (inputs are staged "
                    "before the run)",
                    job_id=job.id,
                    file_name=f.name,
                )
        for f in job.inputs:
            consumers.setdefault(f.name, []).append(job)
            consumed_files.setdefault(f.name, f)
        if job.runtime <= 0:
            emit(
                "CM001",
                f"runtime {job.runtime:g} s contributes no load to the "
                "cost model",
                job_id=job.id,
            )
        if job.threads > cfg.max_catalogue_vcpus:
            emit(
                "CM002",
                f"threads={job.threads} exceeds the largest catalogue "
                f"instance ({cfg.max_catalogue_vcpus} vCPUs); the extra "
                "parallelism can never be granted",
                job_id=job.id,
            )
        if job.timeout is not None and job.timeout <= 0:
            emit(
                "CM003",
                f"timeout {job.timeout:g} s would make the master resubmit "
                "the job forever",
                job_id=job.id,
            )

    # -- DF001 / FS001: per consumed file --------------------------------
    for name, jobs in consumers.items():
        if name not in producers and consumed_files[name].kind != "input":
            first = jobs[0]
            extra = f" (and {len(jobs) - 1} more)" if len(jobs) > 1 else ""
            emit(
                "DF001",
                f"consumed as {consumed_files[name].kind!r} by {first.id}"
                f"{extra} but no job produces it",
                job_id=first.id,
                file_name=name,
            )
        if len(jobs) > cfg.hotspot_fanout:
            emit(
                "FS001",
                f"consumed by {len(jobs)} jobs; its home node's disk/NIC "
                "will serialize the fan-out (consider replication)",
                file_name=name,
            )

    # -- DF003: dead outputs ---------------------------------------------
    # A job whose *every* output is an unconsumed intermediate does work
    # the ensemble then throws away.  Unconsumed siblings of a live
    # output (Montage's diff images next to the fit records, mAdd's area
    # mosaic) are retained run products, not defects, so a single live
    # or final (kind="output") file clears the whole job.
    live_producers = set()
    for name, producer in producers.items():
        if name in consumers or produced_files[name].kind == "output":
            live_producers.add(producer.id)
    for name, producer in producers.items():
        f = produced_files[name]
        if (
            f.kind == "intermediate"
            and name not in consumers
            and producer.id not in live_producers
        ):
            emit(
                "DF003",
                f"intermediate ({f.size:g} B) never consumed, and no other "
                f"output of {producer.id} is either: the job's work is "
                "discarded (mark a file kind='output' if it is a product)",
                job_id=producer.id,
                file_name=name,
            )

    # -- DF004: producer ordering ----------------------------------------
    transitive: List[Tuple[DataFile, Job, Job]] = []
    for job in workflow.jobs.values():
        parent_set = set(job.parents)
        for f in job.inputs:
            producer = producers.get(f.name)
            if producer is None:
                continue  # DF001 already covers it
            if producer is job:
                emit(
                    "DF004",
                    "job consumes its own output",
                    job_id=job.id,
                    file_name=f.name,
                )
            elif producer.id not in parent_set:
                transitive.append((f, producer, job))
    if transitive:
        try:
            index, ancestors = _ancestor_bits(workflow)
        except ValueError:
            index = ancestors = None  # cycle: ST001 already reported
        if ancestors is not None:
            for f, producer, consumer in transitive:
                if not (ancestors[consumer.id] >> index[producer.id]) & 1:
                    emit(
                        "DF004",
                        f"reads {f.name!r} produced by {producer.id} without "
                        "depending on it (the read may race the write)",
                        job_id=consumer.id,
                        file_name=f.name,
                    )
    return report


def analyze_ensemble(
    ensemble: Ensemble, config: Optional[AnalyzerConfig] = None
) -> AnalysisReport:
    """Analyze every *distinct* template of an ensemble.

    Relabelled members (:meth:`~repro.workflow.dag.Workflow.relabel`) share
    one jobs dict; analyzing each copy would repeat every finding 200
    times, so templates are deduplicated by the identity of that dict.
    """
    cfg = config or AnalyzerConfig()
    report = AnalysisReport()
    seen: Dict[int, str] = {}
    for workflow in ensemble.workflows:
        key = id(workflow.jobs)
        if key in seen:
            report.members_analyzed += 1
            continue
        seen[key] = workflow.name
        member = analyze_workflow(workflow, cfg)
        report.findings.extend(member.findings)
        report.workflows_analyzed += 1
        report.members_analyzed += 1
    return report
