"""Workflow model: DAGs of precedence-constrained jobs with data files.

This package provides the abstract workflow representation shared by the
real DEWE v2 engine (:mod:`repro.dewe`) and the cluster-simulation engines
(:mod:`repro.engines`):

* :mod:`~repro.workflow.dag` — :class:`Workflow`, :class:`Job`,
  :class:`DataFile`;
* :mod:`~repro.workflow.validation` — structural validation (acyclicity,
  dangling references, duplicate ids);
* :mod:`~repro.workflow.analysis` — topological levels, critical path,
  stage decomposition, summary statistics;
* :mod:`~repro.workflow.serialize` — JSON and DAX-like XML round-trips;
* :mod:`~repro.workflow.ensemble` — workflow *ensembles* (sets of
  interrelated but independent workflows, paper §I) with batch and
  incremental submission plans (paper §V.A.2).
"""

from repro.workflow.dag import DataFile, Job, Workflow, WorkflowSkeleton
from repro.workflow.ensemble import Ensemble, SubmissionPlan
from repro.workflow.traces import homogeneity_index, task_type_stats
from repro.workflow.validation import ValidationError, validate_workflow

__all__ = [
    "DataFile",
    "Ensemble",
    "Job",
    "SubmissionPlan",
    "ValidationError",
    "Workflow",
    "WorkflowSkeleton",
    "homogeneity_index",
    "task_type_stats",
    "validate_workflow",
]
