"""Workflow serialization.

Two on-disk formats:

* **JSON** — the native format; complete round-trip of the cost model.
* **DAX-like XML** — a subset of Pegasus's abstract DAG format (``<adag>``
  with ``<job>``/``<uses>``/``<child>`` elements), so workflows can be
  exchanged with Pegasus-style tooling.  The paper's workflows are
  encapsulated in a folder containing "the DAG file, the executable
  binaries, as well as the input and output files" (§III.B); the DAG file
  here is either of these formats.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Any, Dict, Union

from repro.workflow.dag import DataFile, Job, Workflow

__all__ = [
    "FORMAT_VERSION",
    "workflow_to_dict",
    "workflow_from_dict",
    "save_json",
    "load_json",
    "save_dax",
    "load_dax",
]

_PathLike = Union[str, Path]

#: JSON schema version.  v1 (implicit, no ``version`` key) predates the
#: retry/dead-letter metadata; v2 adds per-job ``max_attempts``.  Loaders
#: accept both.
FORMAT_VERSION = 2


def workflow_to_dict(workflow: Workflow) -> Dict[str, Any]:
    """Plain-dict representation (JSON-serialisable)."""
    jobs = []
    for job in workflow.jobs.values():
        jobs.append(
            {
                "id": job.id,
                "task_type": job.task_type,
                "runtime": job.runtime,
                "threads": job.threads,
                "timeout": job.timeout,
                "max_attempts": job.max_attempts,
                "inputs": [
                    {"name": f.name, "size": f.size, "kind": f.kind}
                    for f in job.inputs
                ],
                "outputs": [
                    {"name": f.name, "size": f.size, "kind": f.kind}
                    for f in job.outputs
                ],
                "parents": list(job.parents),
            }
        )
    return {"version": FORMAT_VERSION, "name": workflow.name, "jobs": jobs}


def workflow_from_dict(data: Dict[str, Any]) -> Workflow:
    """Inverse of :func:`workflow_to_dict`.

    File identity is restored by name so that a file shared between a
    producer and its consumers is a single :class:`DataFile` object.
    """
    version = data.get("version", 1)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"workflow file is version {version}; this reader understands "
            f"up to {FORMAT_VERSION}"
        )
    workflow = Workflow(data["name"])
    files: Dict[str, DataFile] = {}

    def intern_file(spec: Dict[str, Any]) -> DataFile:
        f = files.get(spec["name"])
        if f is None:
            f = DataFile(spec["name"], spec["size"], spec.get("kind", "intermediate"))
            files[spec["name"]] = f
        return f

    for spec in data["jobs"]:
        workflow.add_job(
            Job(
                spec["id"],
                spec["task_type"],
                runtime=spec.get("runtime", 0.0),
                threads=spec.get("threads", 1),
                timeout=spec.get("timeout"),
                max_attempts=spec.get("max_attempts"),
                inputs=[intern_file(s) for s in spec.get("inputs", [])],
                outputs=[intern_file(s) for s in spec.get("outputs", [])],
            )
        )
    for spec in data["jobs"]:
        for parent in spec.get("parents", []):
            workflow.add_dependency(parent, spec["id"])
    return workflow


def save_json(workflow: Workflow, path: _PathLike) -> None:
    Path(path).write_text(json.dumps(workflow_to_dict(workflow)))


def load_json(path: _PathLike) -> Workflow:
    return workflow_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# DAX-like XML
# ---------------------------------------------------------------------------


def save_dax(workflow: Workflow, path: _PathLike) -> None:
    """Write a Pegasus-DAX-style XML file."""
    root = ET.Element("adag", {"name": workflow.name, "jobCount": str(len(workflow))})
    for job in workflow.jobs.values():
        el = ET.SubElement(
            root,
            "job",
            {
                "id": job.id,
                "name": job.task_type,
                "runtime": repr(job.runtime),
                "threads": str(job.threads),
            },
        )
        if job.timeout is not None:
            el.set("timeout", repr(job.timeout))
        if job.max_attempts is not None:
            el.set("maxAttempts", str(job.max_attempts))
        for f in job.inputs:
            ET.SubElement(
                el,
                "uses",
                {"file": f.name, "link": "input", "size": repr(f.size), "kind": f.kind},
            )
        for f in job.outputs:
            ET.SubElement(
                el,
                "uses",
                {"file": f.name, "link": "output", "size": repr(f.size), "kind": f.kind},
            )
    for job in workflow.jobs.values():
        if job.parents:
            child = ET.SubElement(root, "child", {"ref": job.id})
            for parent in job.parents:
                ET.SubElement(child, "parent", {"ref": parent})
    ET.ElementTree(root).write(path, encoding="unicode", xml_declaration=True)


def load_dax(path: _PathLike) -> Workflow:
    """Parse a DAX-style XML file written by :func:`save_dax`."""
    root = ET.parse(path).getroot()
    if root.tag != "adag":
        raise ValueError(f"not a DAX file: root element is <{root.tag}>")
    workflow = Workflow(root.get("name", "unnamed"))
    files: Dict[str, DataFile] = {}

    def intern_file(el: ET.Element) -> DataFile:
        name = el.get("file")
        f = files.get(name)
        if f is None:
            f = DataFile(
                name, float(el.get("size", "0")), el.get("kind", "intermediate")
            )
            files[name] = f
        return f

    for el in root.findall("job"):
        timeout = el.get("timeout")
        max_attempts = el.get("maxAttempts")
        workflow.add_job(
            Job(
                el.get("id"),
                el.get("name", "task"),
                runtime=float(el.get("runtime", "0")),
                threads=int(el.get("threads", "1")),
                timeout=float(timeout) if timeout is not None else None,
                max_attempts=int(max_attempts) if max_attempts is not None else None,
                inputs=[
                    intern_file(u)
                    for u in el.findall("uses")
                    if u.get("link") == "input"
                ],
                outputs=[
                    intern_file(u)
                    for u in el.findall("uses")
                    if u.get("link") == "output"
                ],
            )
        )
    for child in root.findall("child"):
        child_id = child.get("ref")
        for parent in child.findall("parent"):
            workflow.add_dependency(parent.get("ref"), child_id)
    return workflow
