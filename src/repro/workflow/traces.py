"""Job-trace statistics: quantifying workload homogeneity.

DEWE v2's whole design rests on one empirical property: "many scientific
workflows feature a large number of nearly identical tasks in terms of
their computation and data requirements" (paper §I).  This module turns
an executed run (or a raw workflow) into per-task-type statistics so that
the premise can be *measured* instead of assumed:

* :func:`task_type_stats` — count, runtime mean/CV, I/O bytes mean/CV per
  task type;
* :func:`homogeneity_index` — the fraction of total work contributed by
  task types whose runtime coefficient of variation is below a threshold
  (1.0 means: all the work is in near-identical tasks — pulling is safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.workflow.dag import Workflow

__all__ = ["TaskTypeStats", "task_type_stats", "homogeneity_index"]


@dataclass(frozen=True)
class TaskTypeStats:
    """Distribution summary for one task type."""

    task_type: str
    count: int
    runtime_mean: float
    runtime_cv: float
    input_bytes_mean: float
    output_bytes_mean: float
    total_runtime: float

    @property
    def is_homogeneous(self) -> bool:
        """Near-identical resource consumption (CV below 10%)."""
        return self.runtime_cv < 0.10


def _cv(values: np.ndarray) -> float:
    mean = float(values.mean())
    if mean == 0:
        return 0.0
    return float(values.std() / mean)


def task_type_stats(workflow: Workflow) -> Dict[str, TaskTypeStats]:
    """Per-task-type statistics of a workflow's cost model."""
    groups: Dict[str, List] = {}
    for job in workflow:
        groups.setdefault(job.task_type, []).append(job)
    out: Dict[str, TaskTypeStats] = {}
    for task_type, jobs in groups.items():
        runtimes = np.array([j.runtime for j in jobs])
        in_bytes = np.array([j.input_bytes for j in jobs])
        out_bytes = np.array([j.output_bytes for j in jobs])
        out[task_type] = TaskTypeStats(
            task_type=task_type,
            count=len(jobs),
            runtime_mean=float(runtimes.mean()),
            runtime_cv=_cv(runtimes),
            input_bytes_mean=float(in_bytes.mean()),
            output_bytes_mean=float(out_bytes.mean()),
            total_runtime=float(runtimes.sum()),
        )
    return out


def homogeneity_index(
    workflow: Workflow,
    cv_threshold: float = 0.10,
    min_count: int = 10,
) -> float:
    """Fraction of total CPU work in large, near-identical task families.

    A task type contributes if it has at least ``min_count`` members and
    a runtime CV below ``cv_threshold``.  Montage scores high (the
    mProjectPP/mDiffFit/mBackground armies dominate); a workflow of
    bespoke tasks scores near zero — and would benefit from scheduling.
    """
    if cv_threshold < 0:
        raise ValueError(f"cv_threshold must be >= 0, got {cv_threshold}")
    stats = task_type_stats(workflow)
    total = sum(s.total_runtime for s in stats.values())
    if total == 0:
        return 0.0
    homogeneous = sum(
        s.total_runtime
        for s in stats.values()
        if s.count >= min_count and s.runtime_cv <= cv_threshold
    )
    return homogeneous / total
