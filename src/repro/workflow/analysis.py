"""Workflow structure analysis.

Utilities the provisioning planner and the evaluation harness rely on:
topological levels, critical-path length (a lower bound on makespan on any
number of homogeneous workers), blocking-job detection (paper §II calls
mConcatFit/mBgModel *blocking jobs* because no other job is eligible while
they run), and the three-stage decomposition of Montage-like workflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workflow.dag import Job, Workflow

__all__ = [
    "WorkflowStats",
    "topological_levels",
    "critical_path",
    "blocking_jobs",
    "stage_decomposition",
    "summarize",
]


def topological_levels(workflow: Workflow) -> Dict[str, int]:
    """Level of each job: roots are 0, otherwise 1 + max(parent levels)."""
    levels: Dict[str, int] = {}
    for job in workflow.topological_order():
        if job.parents:
            levels[job.id] = 1 + max(levels[p] for p in job.parents)
        else:
            levels[job.id] = 0
    return levels


def critical_path(workflow: Workflow) -> Tuple[float, List[str]]:
    """Longest runtime-weighted path; returns ``(length_seconds, job_ids)``.

    This is the makespan lower bound with unlimited homogeneous workers
    and free data movement.
    """
    best: Dict[str, float] = {}
    best_parent: Dict[str, str] = {}
    order = workflow.topological_order()
    for job in order:
        start = 0.0
        for parent_id in job.parents:
            if best[parent_id] > start:
                start = best[parent_id]
                best_parent[job.id] = parent_id
        best[job.id] = start + job.runtime
    if not best:
        return 0.0, []
    end_id = max(best, key=best.__getitem__)
    path = [end_id]
    while path[-1] in best_parent:
        path.append(best_parent[path[-1]])
    path.reverse()
    return best[end_id], path


def blocking_jobs(workflow: Workflow) -> List[str]:
    """Jobs that serialize the workflow (paper §II).

    A job is *blocking* when every leaf-reaching path passes through it —
    i.e. it is an articulation point of the precedence order.  We use the
    equivalent level-occupancy criterion: a job is blocking if it is alone
    on its topological level and every job on later levels descends from
    it.  For layered scientific workflows (Montage, LIGO) this reduces to
    "alone on its level and not a root/leaf fan stage", which is cheap to
    test and matches mConcatFit/mBgModel exactly.
    """
    levels = topological_levels(workflow)
    by_level: Dict[int, List[str]] = {}
    for job_id, level in levels.items():
        by_level.setdefault(level, []).append(job_id)
    max_level = max(by_level) if by_level else -1
    out = []
    for level in sorted(by_level):
        members = by_level[level]
        if len(members) != 1:
            continue
        only = members[0]
        job = workflow.job(only)
        # Must actually gate later work: it has successors and predecessors.
        if job.parents and job.children and level not in (0, max_level):
            out.append(only)
    return out


def stage_decomposition(workflow: Workflow) -> Dict[str, List[str]]:
    """Split jobs into the paper's three stages (§II).

    * ``stage1`` — parallel fan before the first blocking job;
    * ``stage2`` — the blocking jobs themselves;
    * ``stage3`` — everything after the last blocking job.

    Workflows with no blocking jobs get everything in ``stage1``.
    """
    blockers = blocking_jobs(workflow)
    levels = topological_levels(workflow)
    if not blockers:
        return {"stage1": list(workflow.jobs), "stage2": [], "stage3": []}
    # Stage 2 is the *first* consecutive run of blocking levels
    # (mConcatFit -> mBgModel in Montage).  Later solitary jobs
    # (mImgTbl, mAdd, mShrink) belong to the stage-3 tail per §II.
    blocker_levels = sorted(levels[b] for b in blockers)
    lo = hi = blocker_levels[0]
    for level in blocker_levels[1:]:
        if level == hi + 1:
            hi = level
        else:
            break
    stages: Dict[str, List[str]] = {"stage1": [], "stage2": [], "stage3": []}
    for job_id, level in levels.items():
        if level < lo:
            stages["stage1"].append(job_id)
        elif level <= hi:
            stages["stage2"].append(job_id)
        else:
            stages["stage3"].append(job_id)
    return stages


@dataclass
class WorkflowStats:
    """Summary statistics used in reports and EXPERIMENTS.md tables."""

    name: str
    n_jobs: int
    n_edges: int
    n_levels: int
    total_runtime: float
    critical_path_length: float
    max_parallelism: int
    n_input_files: int
    n_intermediate_files: int
    n_output_files: int
    input_bytes: float
    intermediate_bytes: float
    output_bytes: float
    count_by_type: Dict[str, int] = field(default_factory=dict)

    @property
    def parallel_fraction(self) -> float:
        """1 - cp/total: how much of the work can overlap."""
        if self.total_runtime == 0:
            return 0.0
        return 1.0 - self.critical_path_length / self.total_runtime


def summarize(workflow: Workflow) -> WorkflowStats:
    """Compute a :class:`WorkflowStats` for ``workflow``."""
    levels = topological_levels(workflow)
    width: Dict[int, int] = {}
    for level in levels.values():
        width[level] = width.get(level, 0) + 1
    cp_length, _ = critical_path(workflow)
    files = workflow.files().values()
    by_kind = {"input": [0, 0.0], "intermediate": [0, 0.0], "output": [0, 0.0]}
    for f in files:
        by_kind[f.kind][0] += 1
        by_kind[f.kind][1] += f.size
    return WorkflowStats(
        name=workflow.name,
        n_jobs=len(workflow),
        n_edges=workflow.n_edges(),
        n_levels=(max(levels.values()) + 1) if levels else 0,
        total_runtime=workflow.total_runtime(),
        critical_path_length=cp_length,
        max_parallelism=max(width.values()) if width else 0,
        n_input_files=by_kind["input"][0],
        n_intermediate_files=by_kind["intermediate"][0],
        n_output_files=by_kind["output"][0],
        input_bytes=by_kind["input"][1],
        intermediate_bytes=by_kind["intermediate"][1],
        output_bytes=by_kind["output"][1],
        count_by_type=workflow.count_by_type(),
    )
