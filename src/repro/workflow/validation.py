"""Structural validation for workflows.

The master daemon validates a workflow at submission time (the DAG file is
parsed and stored in a data structure, paper §III.C); malformed DAGs are
rejected with a :class:`ValidationError` listing every problem found.

The checks are split in two layers so the static analyzer
(:mod:`repro.analysis.dataflow`) can reuse the structural pass without
duplicating the data-flow findings it supersedes:

* :func:`find_structural_problems` — edge-list integrity, duplicates,
  acyclicity, non-emptiness;
* :func:`find_dataflow_problems` — the legacy producer/consumer checks
  kept for submission-time validation (the analyzer's DF rules are a
  strict superset).
"""

from __future__ import annotations

from typing import List, Optional

from repro.workflow.dag import Workflow

__all__ = [
    "ValidationError",
    "find_dataflow_problems",
    "find_problems",
    "find_structural_problems",
    "validate_workflow",
]


class ValidationError(ValueError):
    """Raised when a workflow is structurally invalid.

    ``problems`` holds one message per independent defect.  The exception
    text summarises the first few; :meth:`render` lists as many as asked.
    """

    def __init__(self, workflow_name: str, problems: List[str]):
        self.workflow_name = workflow_name
        self.problems = problems
        summary = "; ".join(problems[:5])
        if len(problems) > 5:
            summary += f"; ... ({len(problems)} problems total)"
        super().__init__(f"workflow {workflow_name!r} is invalid: {summary}")

    def render(self, verbose: bool = False, limit: int = 5) -> str:
        """One line per problem; ``verbose`` shows all, not just ``limit``."""
        shown = self.problems if verbose else self.problems[:limit]
        lines = [
            f"workflow {self.workflow_name!r} is invalid "
            f"({len(self.problems)} problem(s)):"
        ]
        lines += [f"  - {problem}" for problem in shown]
        hidden = len(self.problems) - len(shown)
        if hidden > 0:
            lines.append(f"  ... and {hidden} more (use --verbose to see all)")
        return "\n".join(lines)


def find_structural_problems(workflow: Workflow) -> List[str]:
    """Structural defects only: integrity, duplicates, cycles, emptiness."""
    problems: List[str] = []
    jobs = workflow.jobs

    if not jobs:
        problems.append("workflow has no jobs")
        return problems

    # Referential integrity and symmetry of the edge lists.
    for job in jobs.values():
        for parent_id in job.parents:
            parent = jobs.get(parent_id)
            if parent is None:
                problems.append(f"{job.id}: unknown parent {parent_id!r}")
            elif job.id not in parent.children:
                problems.append(
                    f"{job.id}: parent link to {parent_id!r} is not mirrored"
                )
        for child_id in job.children:
            child = jobs.get(child_id)
            if child is None:
                problems.append(f"{job.id}: unknown child {child_id!r}")
            elif job.id not in child.parents:
                problems.append(
                    f"{job.id}: child link to {child_id!r} is not mirrored"
                )
        if len(set(job.parents)) != len(job.parents):
            problems.append(f"{job.id}: duplicate parent entries")
        if len(set(job.children)) != len(job.children):
            problems.append(f"{job.id}: duplicate child entries")

    # Acyclicity.
    try:
        workflow.topological_order()
    except ValueError:
        problems.append("dependency graph contains a cycle")

    return problems


def find_dataflow_problems(workflow: Workflow) -> List[str]:
    """Data-flow sanity: a file must not have two distinct producers, and a
    file consumed before the workflow starts must be an input."""
    problems: List[str] = []
    producers: dict = {}
    jobs = workflow.jobs
    for job in jobs.values():
        for f in job.outputs:
            prior = producers.get(f.name)
            if prior is not None and prior is not job:
                problems.append(
                    f"file {f.name!r} produced by both {prior.id} and {job.id}"
                )
            producers[f.name] = job
    for job in jobs.values():
        for f in job.inputs:
            if f.kind != "input" and f.name not in producers:
                problems.append(
                    f"{job.id}: consumes {f.name!r} ({f.kind}) with no producer"
                )
    return problems


def find_problems(workflow: Workflow) -> List[str]:
    """Return a list of structural defects (empty when valid)."""
    problems = find_structural_problems(workflow)
    if problems and not workflow.jobs:
        return problems
    return problems + find_dataflow_problems(workflow)


def validate_workflow(
    workflow: Workflow, problems: Optional[List[str]] = None
) -> Workflow:
    """Validate ``workflow``; returns it unchanged or raises ValidationError.

    ``problems`` allows a caller that already ran :func:`find_problems`
    to raise without re-checking.
    """
    if problems is None:
        problems = find_problems(workflow)
    if problems:
        raise ValidationError(workflow.name, problems)
    return workflow
