"""Structural validation for workflows.

The master daemon validates a workflow at submission time (the DAG file is
parsed and stored in a data structure, paper §III.C); malformed DAGs are
rejected with a :class:`ValidationError` listing every problem found.
"""

from __future__ import annotations

from typing import List

from repro.workflow.dag import Workflow

__all__ = ["ValidationError", "validate_workflow"]


class ValidationError(ValueError):
    """Raised when a workflow is structurally invalid.

    ``problems`` holds one message per independent defect.
    """

    def __init__(self, workflow_name: str, problems: List[str]):
        self.workflow_name = workflow_name
        self.problems = problems
        summary = "; ".join(problems[:5])
        if len(problems) > 5:
            summary += f"; ... ({len(problems)} problems total)"
        super().__init__(f"workflow {workflow_name!r} is invalid: {summary}")


def find_problems(workflow: Workflow) -> List[str]:
    """Return a list of structural defects (empty when valid)."""
    problems: List[str] = []
    jobs = workflow.jobs

    if not jobs:
        problems.append("workflow has no jobs")
        return problems

    # Referential integrity and symmetry of the edge lists.
    for job in jobs.values():
        for parent_id in job.parents:
            parent = jobs.get(parent_id)
            if parent is None:
                problems.append(f"{job.id}: unknown parent {parent_id!r}")
            elif job.id not in parent.children:
                problems.append(
                    f"{job.id}: parent link to {parent_id!r} is not mirrored"
                )
        for child_id in job.children:
            child = jobs.get(child_id)
            if child is None:
                problems.append(f"{job.id}: unknown child {child_id!r}")
            elif job.id not in child.parents:
                problems.append(
                    f"{job.id}: child link to {child_id!r} is not mirrored"
                )
        if len(set(job.parents)) != len(job.parents):
            problems.append(f"{job.id}: duplicate parent entries")
        if len(set(job.children)) != len(job.children):
            problems.append(f"{job.id}: duplicate child entries")

    # Acyclicity.
    try:
        workflow.topological_order()
    except ValueError:
        problems.append("dependency graph contains a cycle")

    # Data-flow sanity: a file must not have two distinct producers, and a
    # file consumed before the workflow starts must be an input.
    producers: dict = {}
    for job in jobs.values():
        for f in job.outputs:
            prior = producers.get(f.name)
            if prior is not None and prior is not job:
                problems.append(
                    f"file {f.name!r} produced by both {prior.id} and {job.id}"
                )
            producers[f.name] = job
    for job in jobs.values():
        for f in job.inputs:
            if f.kind != "input" and f.name not in producers:
                problems.append(
                    f"{job.id}: consumes {f.name!r} ({f.kind}) with no producer"
                )

    return problems


def validate_workflow(workflow: Workflow) -> Workflow:
    """Validate ``workflow``; returns it unchanged or raises ValidationError."""
    problems = find_problems(workflow)
    if problems:
        raise ValidationError(workflow.name, problems)
    return workflow
