"""Core workflow data structures.

A :class:`Workflow` is a DAG of :class:`Job` vertices; edges are precedence
constraints (paper Fig 1).  Jobs carry a cost model (CPU seconds, input and
output :class:`DataFile` objects) used by the cluster simulator, and an
optional ``action`` callable used by the real threaded engine.

Ensembles of hundreds of workflows hold millions of job/file objects
(200 x 6.0-degree Montage = 1,717,200 jobs, paper §V.B), so both classes
use ``__slots__`` and plain lists to keep per-object overhead small.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["DataFile", "Job", "SkeletonArena", "Workflow", "WorkflowSkeleton"]


class DataFile:
    """A logical file flowing between jobs via the shared file system.

    ``kind`` is one of ``"input"`` (staged in before execution),
    ``"intermediate"`` (produced and consumed within the workflow) or
    ``"output"`` (a final product, e.g. the mosaic JPEG).
    """

    __slots__ = ("name", "size", "kind")

    def __init__(self, name: str, size: float, kind: str = "intermediate"):
        if size < 0:
            raise ValueError(f"file size must be >= 0, got {size}")
        if kind not in ("input", "intermediate", "output"):
            raise ValueError(f"unknown file kind: {kind!r}")
        self.name = name
        self.size = float(size)
        self.kind = kind

    def __repr__(self) -> str:
        return f"DataFile({self.name!r}, {self.size:.0f}B, {self.kind})"


class Job:
    """One vertex of the workflow DAG.

    Attributes
    ----------
    id:
        Unique within the workflow (e.g. ``"mDiffFit_000123"``).
    task_type:
        The transformation name (e.g. ``"mProjectPP"``); many scientific
        workflows consist of a large number of nearly identical tasks of a
        few types — the homogeneity DEWE v2 exploits (paper §I).
    runtime:
        CPU seconds on one reference core.
    threads:
        How many cores the job can exploit (``1`` for ordinary jobs; the
        blocking jobs may be parallel implementations, paper §III.D).
    inputs / outputs:
        :class:`DataFile` lists; drive the simulator's I/O model.
    timeout:
        Per-job timeout override for the master daemon's resubmission
        mechanism (``None`` uses the system-wide default, paper §III.B).
    max_attempts:
        Per-job delivery-budget override for the retry machinery
        (``None`` uses the run's :class:`~repro.faults.retry.RetryPolicy`
        budget; ``0`` means unlimited).
    action:
        Optional callable executed by the real threaded engine.
    """

    __slots__ = (
        "id",
        "task_type",
        "runtime",
        "threads",
        "inputs",
        "outputs",
        "parents",
        "children",
        "timeout",
        "max_attempts",
        "action",
    )

    def __init__(
        self,
        id: str,
        task_type: str,
        runtime: float = 0.0,
        threads: int = 1,
        inputs: Optional[Iterable[DataFile]] = None,
        outputs: Optional[Iterable[DataFile]] = None,
        timeout: Optional[float] = None,
        max_attempts: Optional[int] = None,
        action: Optional[Callable[..., Any]] = None,
    ):
        if runtime < 0:
            raise ValueError(f"job runtime must be >= 0, got {runtime}")
        if threads < 1:
            raise ValueError(f"job threads must be >= 1, got {threads}")
        if max_attempts is not None and max_attempts < 0:
            raise ValueError(f"job max_attempts must be >= 0, got {max_attempts}")
        self.id = id
        self.task_type = task_type
        self.runtime = float(runtime)
        self.threads = int(threads)
        self.inputs: List[DataFile] = list(inputs) if inputs else []
        self.outputs: List[DataFile] = list(outputs) if outputs else []
        self.parents: List[str] = []
        self.children: List[str] = []
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.action = action

    @property
    def input_bytes(self) -> float:
        return sum(f.size for f in self.inputs)

    @property
    def output_bytes(self) -> float:
        return sum(f.size for f in self.outputs)

    def __repr__(self) -> str:
        return f"Job({self.id!r}, {self.task_type}, {self.runtime:.2f}s)"


class SkeletonArena:
    """Integer-indexed views of a skeleton for arena-backed run state.

    Job ids are interned into dense indices (jobs-table insertion order,
    which is also the ``initial_pending`` iteration order every dict-era
    consumer observed), and the structural facts the state machine needs
    per job — dependency counts, child lists, timeout and attempt-budget
    overrides — become flat C arrays / tuples of ints.  Like the skeleton
    itself this is immutable, built once, and shared by every relabelled
    ensemble member; per-member *mutable* arrays are copied out of it by
    :class:`~repro.dewe.state.WorkflowState`.
    """

    __slots__ = (
        "n", "job_ids", "index_of", "children", "initial_pending",
        "root_indices", "timeouts", "max_attempts",
    )

    def __init__(self, skeleton: "WorkflowSkeleton"):
        jobs = skeleton.jobs
        job_ids = tuple(jobs)
        index_of = {job_id: i for i, job_id in enumerate(job_ids)}
        self.n = len(job_ids)
        self.job_ids = job_ids
        self.index_of = index_of
        self.children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(index_of[c] for c in job.children) for job in jobs.values()
        )
        self.initial_pending = array(
            "i", (len(job.parents) for job in jobs.values())
        )
        self.root_indices: Tuple[int, ...] = tuple(
            index_of[r] for r in skeleton.roots
        )
        #: Per-job timeout override; <= 0 means "use the run default"
        #: (mirrors the ``job.timeout or default`` truthiness rule).
        self.timeouts = array(
            "d", (job.timeout if job.timeout else -1.0 for job in jobs.values())
        )
        #: Per-job attempt-budget override; -1 means "no override, use the
        #: retry policy" (``None`` in the Job object), 0 means unlimited.
        self.max_attempts = array(
            "i",
            (
                -1 if job.max_attempts is None else job.max_attempts
                for job in jobs.values()
            ),
        )


class WorkflowSkeleton:
    """Derived views of a workflow's immutable structure, built once.

    Everything here is a pure function of the (append-only) jobs table:
    initial dependency counts, root job ids, the file namespace and the
    file→producer map.  Ensemble members created with
    :meth:`Workflow.relabel` share the jobs table — and therefore share
    one skeleton — so a 200-member ensemble pays for these scans once
    instead of 200 times.  Per-member *mutable* run state (pending
    counts, statuses) is copied out of the skeleton by each
    :class:`~repro.dewe.state.WorkflowState`; the skeleton itself must
    never be mutated (the sanitizer's ``cow-isolation`` check enforces
    this).
    """

    __slots__ = (
        "jobs", "initial_pending", "roots", "files", "producer_of", "_cp",
        "_arena",
    )

    def __init__(self, jobs: Dict[str, Job]):
        self.jobs = jobs
        initial_pending: Dict[str, int] = {}
        roots: List[str] = []
        files: Dict[str, DataFile] = {}
        producer_of: Dict[str, str] = {}
        for job in jobs.values():
            n = len(job.parents)
            initial_pending[job.id] = n
            if n == 0:
                roots.append(job.id)
            for f in job.inputs:
                files.setdefault(f.name, f)
            for f in job.outputs:
                files.setdefault(f.name, f)
                producer_of[f.name] = job.id
        self.initial_pending = initial_pending
        self.roots: Tuple[str, ...] = tuple(roots)
        self.files = files
        self.producer_of = producer_of
        #: Lazy critical-path cache (a pure function of the structure,
        #: like everything else here — shared by every ensemble member).
        self._cp: Optional[Dict[str, float]] = None
        #: Lazy arena index (int job indices + flat structural arrays),
        #: likewise shared by every ensemble member.
        self._arena: Optional[SkeletonArena] = None

    def arena(self) -> SkeletonArena:
        """The interned integer-index arena (cached; shared by relabels)."""
        arena = self._arena
        if arena is None:
            arena = self._arena = SkeletonArena(self)
        return arena

    def critical_path(self) -> Dict[str, float]:
        """``job id -> critical-path seconds`` remaining at that job.

        ``cp[j] = runtime(j) + max(cp over children)`` — the longest
        runtime-weighted chain from ``j`` to any sink, ``j`` included.
        Built lazily (one reverse-topological sweep) and cached on the
        shared skeleton, so only priority-aware runs pay for it, once
        per ensemble rather than once per member.
        """
        cp = self._cp
        if cp is None:
            jobs = self.jobs
            indegree = dict(self.initial_pending)
            order = list(self.roots)
            head = 0
            while head < len(order):
                job = jobs[order[head]]
                head += 1
                for child_id in job.children:
                    indegree[child_id] -= 1
                    if indegree[child_id] == 0:
                        order.append(child_id)
            cp = {}
            for job_id in reversed(order):
                job = jobs[job_id]
                best = 0.0
                for child_id in job.children:
                    child_cp = cp[child_id]
                    if child_cp > best:
                        best = child_cp
                cp[job_id] = job.runtime + best
            self._cp = cp
        return cp

    def critical_path_total(self) -> float:
        """The workflow's critical-path length (max over its roots)."""
        cp = self.critical_path()
        return max((cp[root] for root in self.roots), default=0.0)


class Workflow:
    """A named DAG of jobs.

    The structure is append-only: jobs are added, then dependencies.  The
    engines never mutate a workflow; per-run state (pending counts, job
    status) lives in the engine's own bookkeeping so the same workflow
    object can appear in several ensemble submissions.
    """

    def __init__(self, name: str):
        self.name = name
        self.jobs: Dict[str, Job] = {}
        # One-element cell shared across relabel() clones, so a skeleton
        # built through any member is visible to all of them (and an
        # add_job/add_dependency through any member invalidates it).
        self._skeleton_cell: List[Optional[WorkflowSkeleton]] = [None]

    # -- construction ----------------------------------------------------
    def add_job(self, job: Job) -> Job:
        if job.id in self.jobs:
            raise ValueError(f"duplicate job id: {job.id!r}")
        self.jobs[job.id] = job
        self._skeleton_cell[0] = None
        return job

    def new_job(self, id: str, task_type: str, **kwargs: Any) -> Job:
        """Create and add a job in one step."""
        return self.add_job(Job(id, task_type, **kwargs))

    def add_dependency(self, parent_id: str, child_id: str) -> None:
        """Declare that ``child`` cannot start before ``parent`` completes."""
        if parent_id == child_id:
            raise ValueError(f"self-dependency on {parent_id!r}")
        parent = self.jobs.get(parent_id)
        child = self.jobs.get(child_id)
        if parent is None:
            raise KeyError(f"unknown parent job: {parent_id!r}")
        if child is None:
            raise KeyError(f"unknown child job: {child_id!r}")
        # Duplicate check against the shorter endpoint list: high-fanout
        # vertices (mConcatFit collects 5,692 fits) would otherwise make
        # DAG construction quadratic in the fan-in.
        if len(parent.children) <= len(child.parents):
            if child_id in parent.children:
                return
        elif parent_id in child.parents:
            return
        parent.children.append(child_id)
        child.parents.append(parent_id)
        self._skeleton_cell[0] = None

    def skeleton(self) -> WorkflowSkeleton:
        """The interned structural views (cached; shared by relabels)."""
        sk = self._skeleton_cell[0]
        if sk is None or sk.jobs is not self.jobs:
            sk = WorkflowSkeleton(self.jobs)
            self._skeleton_cell[0] = sk
        return sk

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs.values())

    def __contains__(self, job_id: str) -> bool:
        return job_id in self.jobs

    def job(self, job_id: str) -> Job:
        return self.jobs[job_id]

    def roots(self) -> List[Job]:
        """Jobs with no pending precedence requirements (eligible at t=0)."""
        return [job for job in self.jobs.values() if not job.parents]

    def leaves(self) -> List[Job]:
        return [job for job in self.jobs.values() if not job.children]

    def edges(self) -> Iterator[Tuple[str, str]]:
        for job in self.jobs.values():
            for child in job.children:
                yield (job.id, child)

    def n_edges(self) -> int:
        return sum(len(job.children) for job in self.jobs.values())

    def topological_order(self) -> List[Job]:
        """Kahn's algorithm; raises ``ValueError`` on cycles."""
        indegree = {job.id: len(job.parents) for job in self.jobs.values()}
        frontier = [job_id for job_id, deg in indegree.items() if deg == 0]
        order: List[Job] = []
        jobs = self.jobs
        head = 0
        while head < len(frontier):
            job_id = frontier[head]
            head += 1
            job = jobs[job_id]
            order.append(job)
            for child_id in job.children:
                indegree[child_id] -= 1
                if indegree[child_id] == 0:
                    frontier.append(child_id)
        if len(order) != len(jobs):
            raise ValueError(f"workflow {self.name!r} contains a cycle")
        return order

    # -- aggregate statistics ---------------------------------------------
    def total_runtime(self) -> float:
        """Sum of job CPU seconds (the serial work in the workflow)."""
        return sum(job.runtime for job in self.jobs.values())

    def files(self) -> Dict[str, DataFile]:
        """All distinct files referenced by the workflow, keyed by name.

        Served from the interned skeleton; the returned dict is a copy,
        so callers may mutate it freely.
        """
        return dict(self.skeleton().files)

    def bytes_by_kind(self) -> Dict[str, float]:
        """Total bytes of distinct files per kind (input/intermediate/output)."""
        totals = {"input": 0.0, "intermediate": 0.0, "output": 0.0}
        for f in self.files().values():
            totals[f.kind] += f.size
        return totals

    def count_by_type(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.task_type] = counts.get(job.task_type, 0) + 1
        return counts

    def relabel(self, new_name: str) -> "Workflow":
        """A cheap structural copy under a new name (for ensemble members).

        Job and file objects are shared (they are immutable during runs);
        only the workflow identity changes.
        """
        clone = Workflow(new_name)
        clone.jobs = self.jobs
        clone._skeleton_cell = self._skeleton_cell
        return clone

    def __repr__(self) -> str:
        return f"Workflow({self.name!r}, jobs={len(self.jobs)})"
