"""Workflow ensembles and submission plans.

A *workflow ensemble* is "a set of interrelated but independent workflow
applications" that together form one scientific analysis (paper §I).  The
ensemble object pairs the member workflows with a **submission plan** — the
times at which the submission application hands each workflow to the master
daemon.

Two plans from the paper (§V.A.2):

* **batch** — all workflows at t=0 (interval 0);
* **incremental** — one workflow every ``interval`` seconds, which shapes
  the cluster's resource-utilisation pattern so that different workflows
  demand different resources at the same time (Fig 8 shows a ~34 % speed-up
  at a 100 s interval for five 6.0-degree Montage workflows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.workflow.dag import Workflow

__all__ = ["SubmissionPlan", "Ensemble"]


@dataclass(frozen=True)
class SubmissionPlan:
    """Submission times, one per ensemble member, non-decreasing."""

    times: Tuple[float, ...]

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.times):
            raise ValueError("submission times must be >= 0")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("submission times must be non-decreasing")

    @classmethod
    def batch(cls, n: int) -> "SubmissionPlan":
        """All ``n`` workflows submitted together at t=0."""
        return cls(times=(0.0,) * n)

    @classmethod
    def incremental(cls, n: int, interval: float) -> "SubmissionPlan":
        """One workflow every ``interval`` seconds starting at t=0.

        ``interval=0`` degenerates to batch submission (the paper treats
        batch as the special case of incremental submission with a zero
        interval).
        """
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        return cls(times=tuple(i * interval for i in range(n)))

    def __len__(self) -> int:
        return len(self.times)


class Ensemble:
    """Member workflows plus their submission plan."""

    def __init__(
        self,
        workflows: Sequence[Workflow],
        plan: SubmissionPlan | None = None,
        name: str = "ensemble",
    ):
        if not workflows:
            raise ValueError("an ensemble needs at least one workflow")
        names = [wf.name for wf in workflows]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate workflow names in ensemble: {names}")
        if plan is None:
            plan = SubmissionPlan.batch(len(workflows))
        if len(plan) != len(workflows):
            raise ValueError(
                f"plan has {len(plan)} entries for {len(workflows)} workflows"
            )
        self.name = name
        self.workflows: List[Workflow] = list(workflows)
        self.plan = plan

    @classmethod
    def replicated(
        cls,
        template: Workflow,
        count: int,
        interval: float = 0.0,
        name: str = "ensemble",
    ) -> "Ensemble":
        """An ensemble of ``count`` copies of ``template``.

        Copies share the underlying job objects (see
        :meth:`~repro.workflow.dag.Workflow.relabel`), which keeps a
        200-member 6.0-degree Montage ensemble (1.7 M jobs) affordable.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        members = [template.relabel(f"{template.name}#{i}") for i in range(count)]
        return cls(members, SubmissionPlan.incremental(count, interval), name=name)

    def __len__(self) -> int:
        return len(self.workflows)

    def __iter__(self) -> Iterator[Tuple[float, Workflow]]:
        """Iterate ``(submit_time, workflow)`` in submission order."""
        return iter(zip(self.plan.times, self.workflows))

    @property
    def total_jobs(self) -> int:
        return sum(len(wf) for wf in self.workflows)

    def makespan_horizon(self) -> float:
        """Last submission time (the earliest the ensemble can be done)."""
        return self.plan.times[-1]

    def __repr__(self) -> str:
        return (
            f"Ensemble({self.name!r}, workflows={len(self.workflows)}, "
            f"jobs={self.total_jobs})"
        )
