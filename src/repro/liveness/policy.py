"""Tenant/class-aware admission policy: quotas, fair share, brownout.

PR 7's :class:`~repro.liveness.admission.AdmissionControl` is a binary,
class-blind backlog gate — correct for one owner, wrong for a service.
Under open-loop arrivals from many tenants, overload is not an error to
reject uniformly but a *regime* to degrade through gracefully.  This
module holds the engine-agnostic policy ladder (docs/FAULTS.md,
"Overload and graceful degradation"):

1. **quota** — per-tenant token buckets bound each tenant's submission
   rate regardless of cluster state;
2. **fair share** — no tenant may hold more than a weighted share of
   the admitted-but-unsettled backlog;
3. **brownout** — under *sustained* backlog overshoot a level ladder
   degrades by SLA class: shed ``best_effort`` first, stretch
   ``silver`` deadlines, protect ``gold``;
4. **admission shed** — the PR 7 backlog gate remains the class-blind
   backstop for non-gold work (the bounded broker topics behind it are
   the hard backstop for everything).

Everything here is inert and deterministic: no clocks (callers pass
``now``), no locks (callers serialize), no RNG.  Counters accumulate
into a caller-supplied stats dict (:func:`new_liveness_stats` schema)
so a standby master continues the same run-level counters after
failover — the policy object itself lives *outside* master incarnations,
which is how quota and fair-share state survive a takeover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.liveness.admission import AdmissionControl

__all__ = [
    "SlaClass",
    "DEFAULT_CLASSES",
    "TokenBucket",
    "BrownoutController",
    "AdmissionDecision",
    "ShedRecord",
    "ServiceAdmissionPolicy",
]


@dataclass(frozen=True)
class SlaClass:
    """One deadline-slack tier of the service.

    ``rank`` orders sheddability: 0 is the most protected class and is
    never brownout- or backlog-shed (quota and fair share still bound
    it).  ``deadline_factor`` scales the engine's default job timeout at
    admission — gold buys tight deadlines, best-effort rides with slack.
    """

    name: str
    rank: int
    deadline_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")


#: The standard three-tier ladder used by the soak harness and tests.
DEFAULT_CLASSES: Tuple[SlaClass, ...] = (
    SlaClass("gold", rank=0, deadline_factor=1.0),
    SlaClass("silver", rank=1, deadline_factor=1.5),
    SlaClass("best_effort", rank=2, deadline_factor=3.0),
)


class TokenBucket:
    """Deterministic per-tenant rate limiter.

    Pure arithmetic over a caller-supplied ``now`` — refill is a
    function of elapsed time, never of a clock read — so two buckets fed
    the same operation sequence hold byte-identical state.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = 0.0

    def refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
            self.updated = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; refills first."""
        self.refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def time_until(self, n: float = 1.0) -> float:
        """Seconds (from the last refill) until ``n`` tokens exist —
        the deterministic retry-after hint for a quota shed."""
        if self.tokens >= n:
            return 0.0
        return (n - self.tokens) / self.rate


class BrownoutController:
    """Level ladder driven by *sustained* backlog overshoot.

    ``observe(overshoot, now)`` returns the active level given the
    current dispatch-backlog overshoot ratio (backlog / admission
    bound).  Escalation to a higher level requires the overshoot to sit
    at or above that level's threshold for ``sustain`` seconds — a burst
    shorter than the hold window never browns out.  De-escalation is
    hysteretic: the overshoot must fall below ``release`` times the
    level's threshold (again sustained) before the level drops, so the
    controller does not flap around a threshold.

    Levels (with :data:`DEFAULT_CLASSES` semantics):

    * 0 — normal operation;
    * 1 — shed rank >= 2 (``best_effort``);
    * 2 — also stretch rank-1 (``silver``) deadlines by ``stretch``;
    * 3 — shed every rank >= 1; only rank 0 (``gold``) is admitted.
    """

    __slots__ = (
        "thresholds", "sustain", "release", "stretch",
        "level", "transitions", "_pending", "_since",
    )

    def __init__(
        self,
        thresholds: Sequence[float] = (1.0, 1.5, 2.0),
        sustain: float = 5.0,
        release: float = 0.75,
        stretch: float = 2.0,
    ):
        if list(thresholds) != sorted(thresholds) or not thresholds:
            raise ValueError("thresholds must be non-empty and sorted")
        if sustain < 0:
            raise ValueError("sustain must be >= 0")
        if not 0 < release <= 1:
            raise ValueError("release must be in (0, 1]")
        if stretch < 1:
            raise ValueError("stretch must be >= 1")
        self.thresholds = tuple(thresholds)
        self.sustain = sustain
        self.release = release
        self.stretch = stretch
        self.level = 0
        #: ``(time, level)`` history of every level change (diagnostics).
        self.transitions: List[Tuple[float, int]] = []
        self._pending: Optional[int] = None
        self._since = 0.0

    def _target(self, overshoot: float) -> int:
        """Instantaneous level the overshoot asks for, with hysteresis:
        levels at or below the current one only release below
        ``release * threshold``."""
        target = 0
        for i, bound in enumerate(self.thresholds):
            level = i + 1
            keep = bound * (self.release if level <= self.level else 1.0)
            if overshoot >= keep:
                target = level
        return target

    def observe(self, overshoot: float, now: float) -> int:
        """Feed one backlog sample; returns the (possibly new) level."""
        target = self._target(overshoot)
        if target == self.level:
            self._pending = None
            return self.level
        if self._pending != target:
            self._pending = target
            self._since = now
        if now - self._since >= self.sustain:
            self.level = target
            self._pending = None
            self.transitions.append((now, target))
        return self.level


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one submission through the policy ladder.

    ``timeout_factor`` scales the engine's default job timeout for an
    admitted workflow (SLA deadline slack, plus the brownout stretch for
    silver under level >= 2).  ``retry_after`` is the deterministic
    backoff hint recorded with a shed.
    """

    admit: bool
    reason: str = "admitted"
    retry_after: float = 0.0
    timeout_factor: float = 1.0


@dataclass(frozen=True)
class ShedRecord:
    """One shed submission, attributed for post-mortems."""

    time: float
    workflow: str
    tenant: str
    sla: str
    reason: str
    retry_after: float


@dataclass
class _TenantAccount:
    bucket: Optional[TokenBucket] = None
    weight: float = 1.0
    #: Admitted-but-unsettled jobs currently charged to the tenant.
    outstanding: int = 0
    admitted: int = 0
    shed: int = 0


class ServiceAdmissionPolicy:
    """The multi-tenant front door: quota -> fair share -> brownout ->
    backlog gate, in that order (cheapest and most local first).

    Workflow names are tagged with ``(tenant, sla)`` via
    :meth:`register` before submission; the engine calls
    :meth:`decide` once per arriving submission and :meth:`settle` when
    the workflow settles.  All state lives on this object, outside any
    master incarnation, so failover preserves quota/fair-share state —
    the journal records each decision (``service-shed`` / ``submit``
    records carry the tenant and class) for post-mortem replay.
    """

    def __init__(
        self,
        admission: Optional[AdmissionControl] = None,
        classes: Sequence[SlaClass] = DEFAULT_CLASSES,
        brownout: Optional[BrownoutController] = None,
        max_share: float = 0.5,
        fair_share_floor: int = 8,
    ):
        if not 0 < max_share <= 1:
            raise ValueError("max_share must be in (0, 1]")
        if fair_share_floor < 0:
            raise ValueError("fair_share_floor must be >= 0")
        self.admission = admission or AdmissionControl()
        self.classes: Dict[str, SlaClass] = {c.name: c for c in classes}
        if len(self.classes) != len(classes):
            raise ValueError("duplicate SLA class names")
        self.brownout = brownout or BrownoutController()
        self.max_share = max_share
        #: Fair share only binds once this many jobs are outstanding in
        #: total — with an empty service any share is 100%.
        self.fair_share_floor = fair_share_floor
        self._tenants: Dict[str, _TenantAccount] = {}
        #: workflow name -> (tenant, sla)
        self._tags: Dict[str, Tuple[str, str]] = {}
        #: workflow name -> jobs charged at admission (for settle()).
        self._charged: Dict[str, int] = {}
        self.sheds: List[ShedRecord] = []
        self.total_outstanding = 0
        self.peak_backlog = 0
        #: Counter sink; engine rebinds this to its run-level
        #: ``live_stats`` dict (``new_liveness_stats`` schema).
        self.stats: Dict[str, int] = {}

    # -- registration -------------------------------------------------------
    def add_tenant(
        self,
        tenant: str,
        quota: Optional[TokenBucket] = None,
        weight: float = 1.0,
    ) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._tenants[tenant] = _TenantAccount(bucket=quota, weight=weight)

    def register(self, workflow_name: str, tenant: str, sla: str) -> None:
        """Tag one workflow-to-be-submitted with its tenant and class."""
        if sla not in self.classes:
            raise ValueError(f"unknown SLA class {sla!r}")
        if tenant not in self._tenants:
            self._tenants[tenant] = _TenantAccount()
        self._tags[workflow_name] = (tenant, sla)

    def tag_of(self, workflow_name: str) -> Tuple[str, str]:
        """``(tenant, sla)`` of a registered workflow ("", "") if untagged."""
        return self._tags.get(workflow_name, ("", ""))

    def rank_of(self, workflow_name: str) -> Optional[int]:
        """Sheddability rank for broker-level priority shedding."""
        tag = self._tags.get(workflow_name)
        if tag is None:
            return None
        return self.classes[tag[1]].rank

    # -- the ladder ---------------------------------------------------------
    def _bump(self, key: str) -> None:
        self.stats[key] = self.stats.get(key, 0) + 1

    def _shed(
        self, now: float, name: str, tenant: str, sla: str,
        reason: str, retry_after: float, counter: str,
    ) -> AdmissionDecision:
        self._bump("shed_submissions")
        if counter != "shed_submissions":
            self._bump(counter)
        self._bump(f"shed_{sla}")
        self._tenants[tenant].shed += 1
        self.sheds.append(
            ShedRecord(now, name, tenant, sla, reason, retry_after)
        )
        return AdmissionDecision(
            admit=False, reason=reason, retry_after=retry_after
        )

    def decide(
        self, workflow_name: str, n_jobs: int, backlog: int, now: float
    ) -> AdmissionDecision:
        """Run one submission through the ladder; charges quota and fair
        share on admission (sheds consume nothing)."""
        if backlog > self.peak_backlog:
            self.peak_backlog = backlog
        tenant, sla = self.tag_of(workflow_name)
        cls = self.classes.get(sla)
        if cls is None:
            raise ValueError(f"workflow {workflow_name!r} is not registered")
        account = self._tenants[tenant]
        overshoot = backlog / self.admission.max_pending_jobs
        level = self.brownout.observe(overshoot, now)
        # 1. quota: the tenant's own submission budget.
        bucket = account.bucket
        if bucket is not None and not bucket.try_take(now):
            return self._shed(
                now, workflow_name, tenant, sla, "quota",
                bucket.time_until(), "quota_sheds",
            )
        # 2. fair share: bound the tenant's slice of outstanding work.
        total = self.total_outstanding
        if total + n_jobs > self.fair_share_floor:
            weight_sum = sum(a.weight for a in self._tenants.values())
            share_bound = self.max_share * account.weight * len(self._tenants) / weight_sum
            share = (account.outstanding + n_jobs) / (total + n_jobs)
            if share > min(1.0, share_bound):
                if bucket is not None:
                    bucket.tokens = min(bucket.burst, bucket.tokens + 1.0)
                return self._shed(
                    now, workflow_name, tenant, sla, "fair-share",
                    self.admission.retry_hint(backlog), "fair_share_sheds",
                )
        # 3. brownout: degrade by class under sustained overload.
        if cls.rank >= 1 and (
            (level >= 1 and cls.rank >= 2) or (level >= 3 and cls.rank >= 1)
        ):
            if bucket is not None:
                bucket.tokens = min(bucket.burst, bucket.tokens + 1.0)
            return self._shed(
                now, workflow_name, tenant, sla, f"brownout-l{level}",
                self.admission.retry_hint(backlog), "brownout_sheds",
            )
        # 4. backlog gate: the PR 7 class-blind backstop; rank 0 bypasses
        # it — protecting gold is the whole point of shedding the rest.
        if cls.rank >= 1 and not self.admission.admits(backlog):
            if bucket is not None:
                bucket.tokens = min(bucket.burst, bucket.tokens + 1.0)
            return self._shed(
                now, workflow_name, tenant, sla, "admission",
                self.admission.retry_hint(backlog), "shed_submissions",
            )
        # Admitted: charge fair share and compute the deadline slack.
        account.outstanding += n_jobs
        account.admitted += 1
        self.total_outstanding += n_jobs
        self._charged[workflow_name] = n_jobs
        factor = cls.deadline_factor
        if level >= 2 and cls.rank == 1:
            factor *= self.brownout.stretch
            self._bump("deadline_stretches")
        return AdmissionDecision(admit=True, timeout_factor=factor)

    def settle(self, workflow_name: str) -> None:
        """Release the fair-share charge of a settled workflow.

        Idempotent (the charge is popped), so duplicate settlement
        notifications after a failover cannot drive shares negative.
        """
        n_jobs = self._charged.pop(workflow_name, None)
        if n_jobs is None:
            return
        tenant, _sla = self.tag_of(workflow_name)
        account = self._tenants.get(tenant)
        if account is not None:
            account.outstanding = max(0, account.outstanding - n_jobs)
        self.total_outstanding = max(0, self.total_outstanding - n_jobs)

    # -- inspection ---------------------------------------------------------
    @property
    def shed_names(self) -> set:
        """Names of every workflow the ladder shed (never admitted)."""
        return {record.workflow for record in self.sheds}

    def tenant_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant admitted/shed/outstanding counters, sorted."""
        return {
            tenant: {
                "admitted": account.admitted,
                "shed": account.shed,
                "outstanding": account.outstanding,
            }
            for tenant, account in sorted(self._tenants.items())
        }
