"""Master-side admission control (reject-new before degrade-running).

The first concrete slice of the multi-tenant service direction
(ROADMAP item 1): when the dispatch backlog exceeds a bound, *new*
workflow submissions are shed with a deterministic retry-after hint
instead of letting the queue grow without bound and degrade every
running ensemble.  Pairs with the bounded broker topics in
:mod:`repro.mq` (broker-level shedding) — admission is the polite
front door, topic capacity the hard backstop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionControl"]


@dataclass(frozen=True)
class AdmissionControl:
    """Bound on the dispatch backlog a master will accept new work into.

    ``max_pending_jobs``
        Admit a new workflow only while the dispatch backlog is below
        this many queued jobs.
    ``retry_after``
        Seconds a shed submitter should wait before retrying; surfaced
        in the shed record so clients can implement honest backoff.
    """

    max_pending_jobs: int = 64
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.max_pending_jobs < 1:
            raise ValueError("max_pending_jobs must be at least 1")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be positive")

    def admits(self, backlog: int) -> bool:
        """True iff a submission may enter given the current backlog."""
        return backlog < self.max_pending_jobs

    def retry_hint(self, backlog: int) -> float:
        """Retry-after hint for a submission shed at ``backlog``.

        Scales ``retry_after`` with the backlog *overshoot* — a client
        shed at twice the bound is told to wait twice as long as one
        shed right at it — so honest backoff spreads retries in
        proportion to how deep the overload actually is, instead of the
        thundering-herd a flat constant invites.  Deterministic: same
        backlog, same hint.
        """
        return self.retry_after * max(1.0, backlog / self.max_pending_jobs)
