"""Heartbeat leases with fencing epochs.

The failure detector at the heart of the partition-tolerant control
plane.  Every worker holds a time-bounded *lease* identified by a
monotonically increasing *epoch*; it renews the lease by heartbeating
every ``heartbeat_interval``.  When ``miss_threshold`` consecutive
beats are missing the master declares the worker suspect, *fences* the
epoch, and requeues its in-flight jobs.  Any settlement stamped with a
fenced (stale) epoch is rejected, which is what makes redispatch safe:
a hung or partitioned worker that comes back cannot double-settle work
the master already handed to someone else.

The table is deliberately inert infrastructure: no clocks (callers pass
``now``), no locks (callers serialize — the DES is single-threaded, the
threaded master holds ``_state_lock``), no I/O.  Counters accumulate
into a caller-supplied ``stats`` dict so a standby master's fresh table
continues the same run-level counters after failover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

__all__ = ["LeaseConfig", "LeaseTable", "new_liveness_stats"]


def new_liveness_stats() -> Dict[str, int]:
    """A zeroed counter dict shared by a run's successive lease tables.

    The service-plane counters (``quota_sheds`` … ``shed_best_effort``)
    are part of the same stable schema so
    :func:`repro.monitor.metrics.robustness_metrics` reports zeros —
    not missing keys — for runs without the multi-tenant front end.
    """
    return {
        "heartbeat_misses": 0,
        "lease_fencings": 0,
        "lease_regrants": 0,
        "stale_epoch_acks": 0,
        "shed_submissions": 0,
        "failovers": 0,
        "partitions": 0,
        # -- multi-tenant service plane (repro.liveness.policy) --------
        "quota_sheds": 0,
        "fair_share_sheds": 0,
        "brownout_sheds": 0,
        "deadline_stretches": 0,
        "shed_gold": 0,
        "shed_silver": 0,
        "shed_best_effort": 0,
    }


@dataclass(frozen=True)
class LeaseConfig:
    """Tuning knobs of the heartbeat/lease protocol.

    ``heartbeat_interval``
        Seconds between worker beats (and between master sweeps).
    ``miss_threshold``
        Consecutive missed beats before a lease is fenced; the lease
        timeout is ``heartbeat_interval * miss_threshold``.
    """

    heartbeat_interval: float = 1.0
    miss_threshold: int = 3

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")

    @property
    def lease_timeout(self) -> float:
        return self.heartbeat_interval * self.miss_threshold


class LeaseTable:
    """Per-worker lease state: epoch, last beat, fenced flag.

    Workers are any hashable key (node indices in the DES, daemon names
    in the threaded path).  ``epoch_floor`` seeds the epoch counter
    above every epoch a previous incarnation issued, so a standby
    master taking over can fence the whole primary era at once.
    """

    __slots__ = ("config", "stats", "_epoch", "_last_beat", "_fenced",
                 "_missed", "_max_epoch")

    def __init__(
        self,
        config: LeaseConfig,
        epoch_floor: int = 0,
        stats: Optional[Dict[str, int]] = None,
    ):
        self.config = config
        self.stats = new_liveness_stats() if stats is None else stats
        self._epoch: Dict[Hashable, int] = {}
        self._last_beat: Dict[Hashable, float] = {}
        self._fenced: Dict[Hashable, bool] = {}
        self._missed: Dict[Hashable, int] = {}
        self._max_epoch = epoch_floor

    # -- granting and renewal -------------------------------------------
    def grant(self, worker: Hashable, now: float) -> int:
        """Issue a fresh lease (a new epoch) to ``worker``.

        Re-granting after a fence is how a recovered worker rejoins; it
        counts as a regrant.  Epochs are globally monotonic across all
        workers so a single fencing token orders every incarnation.
        """
        if worker in self._epoch:
            self.stats["lease_regrants"] += 1
        self._max_epoch += 1
        self._epoch[worker] = self._max_epoch
        self._last_beat[worker] = now
        self._fenced[worker] = False
        self._missed[worker] = 0
        return self._max_epoch

    def beat(self, worker: Hashable, epoch: int, now: float) -> bool:
        """Renew ``worker``'s lease.  False if unknown, fenced or stale."""
        if not self.valid(worker, epoch):
            return False
        self._last_beat[worker] = now
        self._missed[worker] = 0
        return True

    def observe(self, worker: Hashable, now: float) -> Optional[int]:
        """Renew on *any* contact; grant a fresh epoch when needed.

        The threaded daemons use this renew-on-contact variant (their
        messages don't carry epochs on the wire): a beat or ack from a
        live worker renews; contact from an unknown or fenced worker
        re-admits it under a new epoch, returned so the caller can log
        it.  Returns ``None`` when the existing lease was simply renewed.
        """
        epoch = self._epoch.get(worker)
        if epoch is not None and not self._fenced[worker]:
            self._last_beat[worker] = now
            self._missed[worker] = 0
            return None
        return self.grant(worker, now)

    # -- queries ---------------------------------------------------------
    def valid(self, worker: Hashable, epoch: int) -> bool:
        """True iff ``epoch`` is ``worker``'s current, unfenced lease."""
        return self._epoch.get(worker) == epoch and not self._fenced[worker]

    def is_fenced(self, worker: Hashable) -> bool:
        return self._fenced.get(worker, False)

    def current_epoch(self, worker: Hashable) -> int:
        """The worker's current epoch, or 0 if it never held a lease."""
        return self._epoch.get(worker, 0)

    @property
    def max_epoch(self) -> int:
        """Highest epoch ever issued (the fencing floor for a successor)."""
        return self._max_epoch

    def workers(self) -> List[Hashable]:
        return sorted(self._epoch)

    # -- expiry ----------------------------------------------------------
    def expire(self, now: float) -> List[Hashable]:
        """Workers whose live lease has lapsed, in deterministic order.

        Also advances the ``heartbeat_misses`` counter: each sweep
        charges the beats that went missing since the previous sweep,
        so the counter is deterministic for a fixed sweep schedule.
        The caller is expected to :meth:`fence` every returned worker.
        """
        lapsed: List[Hashable] = []
        interval = self.config.heartbeat_interval
        timeout = self.config.lease_timeout
        for worker in sorted(self._epoch):
            if self._fenced[worker]:
                continue
            age = now - self._last_beat[worker]
            missed = min(int(age / interval), self.config.miss_threshold)
            if missed > self._missed[worker]:
                self.stats["heartbeat_misses"] += missed - self._missed[worker]
                self._missed[worker] = missed
            if age > timeout:
                lapsed.append(worker)
        return lapsed

    def fence(self, worker: Hashable, now: float) -> int:
        """Fence ``worker``'s lease; its epoch becomes permanently stale.

        Returns the fenced epoch.  Settlements stamped with it must be
        rejected from now on; the worker rejoins only via a fresh
        :meth:`grant`.
        """
        epoch = self._epoch.get(worker, 0)
        if not self._fenced.get(worker, True):
            self._fenced[worker] = True
            self.stats["lease_fencings"] += 1
        return epoch
