"""Liveness protocol: heartbeat leases, admission control, master failover.

The paper's DEWE v2 master assumes workers that stop acking are *dead*
(spot terminations, PR 2) and that a master that dies is restarted
*offline* from the journal (PR 3).  Real public clouds add the failure
modes Juve & Deelman's EC2 studies report around the edges of that
model: hung-but-not-dead nodes, network partitions, and overload.  This
package holds the engine-agnostic pieces of the answer:

* :class:`~repro.liveness.lease.LeaseConfig` /
  :class:`~repro.liveness.lease.LeaseTable` — the heartbeat/lease
  failure detector with monotonic fencing epochs;
* :class:`~repro.liveness.admission.AdmissionControl` — the master-side
  admission gate (reject-new before degrade-running);
* :class:`~repro.liveness.failover.MasterFailoverModel` — the seeded
  primary-death/standby-takeover schedule for warm-standby failover;
* :class:`~repro.liveness.policy.ServiceAdmissionPolicy` — the
  multi-tenant generalization of the admission gate: per-tenant
  token-bucket quotas, weighted fair share, and a brownout controller
  that degrades by SLA class under sustained overload
  (docs/FAULTS.md, "Overload and graceful degradation").

Both halves of the stack consume these: the deterministic DES pull
engine (`repro.engines.pull`, simulated time) and the threaded
`repro.dewe` daemons (`time.monotonic()` wall clock).  The table itself
never reads a clock or takes a lock — callers pass ``now`` and
serialize access — so one implementation serves both worlds.
"""

from repro.liveness.admission import AdmissionControl
from repro.liveness.failover import MasterFailoverModel
from repro.liveness.lease import LeaseConfig, LeaseTable, new_liveness_stats
from repro.liveness.policy import (
    DEFAULT_CLASSES,
    AdmissionDecision,
    BrownoutController,
    ServiceAdmissionPolicy,
    ShedRecord,
    SlaClass,
    TokenBucket,
)

__all__ = [
    "AdmissionControl",
    "AdmissionDecision",
    "BrownoutController",
    "DEFAULT_CLASSES",
    "LeaseConfig",
    "LeaseTable",
    "MasterFailoverModel",
    "ServiceAdmissionPolicy",
    "ShedRecord",
    "SlaClass",
    "TokenBucket",
    "new_liveness_stats",
]
