"""Warm-standby master failover schedule.

PR 3 made a crashed master resumable *offline*: re-run from the journal
and the result is byte-identical.  This model makes the same machinery
work *online*: a warm standby tails the write-ahead journal, notices the
primary's heartbeat lapse ``detection`` seconds after it dies at ``at``,
fences the journal epoch (the PR-3 owner-token guard extended into
monotonic fencing tokens — see :meth:`repro.recovery.journal.Journal.fence`)
and takes over mid-run from the last durable checkpoint.  A revived old
primary cannot split-brain: its journal appends carry a stale epoch and
are refused.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MasterFailoverModel"]


@dataclass(frozen=True)
class MasterFailoverModel:
    """Kill the primary master at ``at``; standby takes over after ``detection``.

    ``at``
        Simulated time at which the primary dies (all its scheduler
        loops stop; nothing more is journaled under its epoch).
    ``detection``
        The standby's failure-detection latency — the gap between the
        primary's death and the takeover, during which acks pile up
        unprocessed in the broker.
    """

    at: float
    detection: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("failover time must be non-negative")
        if self.detection <= 0:
            raise ValueError("detection latency must be positive")
