"""Thread-safe in-process topic broker (the RabbitMQ stand-in).

Work-queue semantics per topic: ``publish`` appends, ``consume`` pops the
best-ranked message and makes it invisible to every other consumer —
exactly the check-out behaviour DEWE v2 relies on ("the job is no longer
visible to other worker nodes", paper §III.C).  There is no broker-side
ack or redelivery: lost jobs are recovered by the master daemon's
timeout mechanism, as in the paper.

Topics are priority queues: ``publish(..., priority=...)`` ranks a
message above the default band (higher first; messages of equal priority
leave in publish order, tie-broken by the per-topic publish sequence),
and ``reprioritize`` retags already-queued messages in place so the
master can re-rank still-queued jobs as completions land.

Race detection: messages travel internally as heap entries carrying the
per-topic publish sequence, numbered at publish time under the topic
condition.  The sequence number lets the happens-before detector pair
each ``send`` with exactly the ``recv`` that took it — even with
competing consumers — so "the producer's writes are visible to the
message's consumer" becomes a provable edge instead of an assumption.
Entries never escape: ``consume`` unwraps before returning.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

import repro.analysis.concurrency.recorder as _conc

__all__ = ["SHED_RECORD_CAP", "Topic", "Broker"]

#: Upper bound on retained shed-attribution records per topic.  The
#: ``shed`` counters stay exact over arbitrarily long soaks; only the
#: per-record ring is capped (``dropped_records`` counts the discards).
SHED_RECORD_CAP = 256


class Topic:
    """One named priority message stream.

    ``_cond`` (a condition over a plain lock) guards the heap and the
    counters and makes ``seq`` assignment atomic with the enqueue, so
    envelope numbers are in arrival order (the detector's send/recv
    pairing relies on that).  It is deliberately built on a *plain* lock
    even under ``REPRO_RACEDETECT``: tracing it would add
    publisher→consumer happens-before edges through the counters and
    mask real races that only the message itself should order.
    """

    _guarded_by_ = {
        "published": "_cond",
        "consumed": "_cond",
        "shed": "_cond",
        "shed_records": "_cond",
        "dropped_records": "_cond",
        "capacity": "_cond",
        "_heap": "_cond",
    }

    def __init__(self, name: str, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        #: Entries are ``[-priority, seq, message]`` — lists, so
        #: ``reprioritize`` can retag in place; ``seq`` is unique, so the
        #: heap never compares messages.
        self._heap: List[list] = []
        self.published = 0
        self.consumed = 0
        #: Backlog bound; ``None`` = unbounded.  Publishes at the bound
        #: are shed (``publish`` returns ``False``) rather than blocked:
        #: the backpressure is explicit so publishers can back off.
        self.capacity = capacity
        self.shed = 0
        #: Attribution tags of shed publishes (service plane: the
        #: ``(tenant, sla)`` of each message lost at the capacity bound),
        #: in shed order, for post-mortems.  Bounded to the newest
        #: :data:`SHED_RECORD_CAP` tags.
        self.shed_records: Deque[Any] = deque(maxlen=SHED_RECORD_CAP)
        #: How many shed records the cap discarded (oldest-first).
        self.dropped_records = 0
        self._cond = threading.Condition(threading.Lock())
        rec = _conc.active()
        self._key = (
            rec.new_key("topic", name) if rec is not None
            else ("topic", name, 0)
        )

    def publish(
        self, message: Any, tag: Any = None, priority: float = 0.0
    ) -> bool:
        with self._cond:
            if self.capacity is not None and len(self._heap) >= self.capacity:
                self.shed += 1
                if len(self.shed_records) == SHED_RECORD_CAP:
                    self.dropped_records += 1
                self.shed_records.append(tag)
                return False
            self.published += 1
            seq = self.published
            rec = _conc.active()
            if rec is not None:
                rec.on_send(self._key, seq)
            # Enqueue under the condition: atomicity keeps envelope
            # numbers in arrival order, and the notify hands the message
            # to at most one blocked consumer.
            heapq.heappush(self._heap, [-priority, seq, message])
            self._cond.notify()
        return True

    def consume(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the best-ranked message; ``None`` when empty after
        ``timeout``.

        ``timeout=None`` polls without blocking (returns immediately).
        """
        with self._cond:
            if not self._heap:
                if timeout is None:
                    return None
                self._cond.wait_for(lambda: bool(self._heap), timeout)
                if not self._heap:
                    return None
            _neg_priority, seq, message = heapq.heappop(self._heap)
            self.consumed += 1
            rec = _conc.active()
            if rec is not None:
                rec.on_recv(self._key, seq)
        return message

    def reprioritize(self, selector, priority: float) -> int:
        """Retag every queued message for which ``selector(message)`` is
        true with ``priority``, preserving arrival order within the new
        priority level.  Atomic against concurrent publish/consume: a
        racing consumer sees either the old or the new ranking, never a
        torn heap.  Returns the number of messages retagged."""
        moved = 0
        with self._cond:
            for entry in self._heap:
                if entry[0] != -priority and selector(entry[2]):
                    entry[0] = -priority
                    moved += 1
            if moved:
                heapq.heapify(self._heap)
        return moved

    def snapshot(self) -> Dict[str, int]:
        """Stats of this topic, read atomically under its own lock."""
        with self._cond:
            return {
                "published": self.published,
                "consumed": self.consumed,
                "depth": len(self._heap),
                "shed": self.shed,
                "dropped_records": self.dropped_records,
            }

    @property
    def depth(self) -> int:
        """Number of queued messages."""
        with self._cond:
            return len(self._heap)


class Broker:
    """A set of named topics; topics are created on first use."""

    _guarded_by_ = {"_topics": "_lock", "_limits": "_lock"}

    def __init__(self, topic_limits: Optional[Dict[str, int]] = None) -> None:
        self._topics: Dict[str, Topic] = {}
        #: Capacity applied to a topic when it is first created.
        self._limits: Dict[str, int] = dict(topic_limits or {})
        self._lock = threading.Lock()

    def topic(self, name: str) -> Topic:
        with self._lock:
            topic = self._topics.get(name)
            if topic is None:
                topic = Topic(name, capacity=self._limits.get(name))
                self._topics[name] = topic
            return topic

    def publish(
        self,
        topic_name: str,
        message: Any,
        tag: Any = None,
        priority: float = 0.0,
    ) -> bool:
        return self.topic(topic_name).publish(message, tag=tag, priority=priority)

    def consume(self, topic_name: str, timeout: Optional[float] = None) -> Optional[Any]:
        return self.topic(topic_name).consume(timeout)

    def reprioritize(self, topic_name: str, selector, priority: float) -> int:
        """Retag queued messages of a topic (see :meth:`Topic.reprioritize`)."""
        return self.topic(topic_name).reprioritize(selector, priority)

    def depth(self, topic_name: str) -> int:
        return self.topic(topic_name).depth

    def stats(self) -> Dict[str, Dict[str, int]]:
        # Snapshot the topic table under the broker lock, then read each
        # topic under its *own* lock — the per-topic counters are guarded
        # by the topic condition, not by the broker lock (CL009).
        with self._lock:
            topics = list(self._topics.items())
        return {name: topic.snapshot() for name, topic in topics}
