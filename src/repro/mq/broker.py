"""Thread-safe in-process topic broker (the RabbitMQ stand-in).

Work-queue semantics per topic: ``publish`` appends, ``consume`` pops the
oldest message and makes it invisible to every other consumer — exactly
the check-out behaviour DEWE v2 relies on ("the job is no longer visible
to other worker nodes", paper §III.C).  There is no broker-side ack or
redelivery: lost jobs are recovered by the master daemon's timeout
mechanism, as in the paper.

Race detection: messages travel internally as ``(seq, message)``
envelopes, numbered per topic at publish time under the topic lock.  The
sequence number lets the happens-before detector pair each ``send`` with
exactly the ``recv`` that took it — even with competing consumers — so
"the producer's writes are visible to the message's consumer" becomes a
provable edge instead of an assumption.  Envelopes never escape:
``consume`` unwraps before returning.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, Optional, Tuple

import repro.analysis.concurrency.recorder as _conc

__all__ = ["Topic", "Broker"]


class Topic:
    """One named FIFO message stream.

    ``_lock`` guards the counters and makes ``seq`` assignment atomic
    with the enqueue, so envelope numbers are in queue order (the
    detector's send/recv pairing relies on that).  It is deliberately a
    *plain* lock even under ``REPRO_RACEDETECT``: tracing it would add
    publisher→consumer happens-before edges through the counters and
    mask real races that only the message itself should order.
    """

    _guarded_by_ = {
        "published": "_lock",
        "consumed": "_lock",
        "shed": "_lock",
        "shed_records": "_lock",
        "capacity": "_lock",
    }

    def __init__(self, name: str, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self._queue: "queue.Queue[Tuple[int, Any]]" = queue.Queue()
        self.published = 0
        self.consumed = 0
        #: Backlog bound; ``None`` = unbounded.  Publishes at the bound
        #: are shed (``publish`` returns ``False``) rather than blocked:
        #: the backpressure is explicit so publishers can back off.
        self.capacity = capacity
        self.shed = 0
        #: Attribution tags of shed publishes (service plane: the
        #: ``(tenant, sla)`` of each message lost at the capacity bound),
        #: in shed order, for post-mortems.
        self.shed_records: list = []
        self._lock = threading.Lock()
        rec = _conc.active()
        self._key = (
            rec.new_key("topic", name) if rec is not None
            else ("topic", name, 0)
        )

    def publish(self, message: Any, tag: Any = None) -> bool:
        with self._lock:
            if self.capacity is not None and self._queue.qsize() >= self.capacity:
                self.shed += 1
                self.shed_records.append(tag)
                return False
            self.published += 1
            seq = self.published
            rec = _conc.active()
            if rec is not None:
                rec.on_send(self._key, seq)
            # Enqueue under the lock: an unbounded put never blocks, and
            # atomicity keeps envelope numbers in FIFO order.
            self._queue.put((seq, message))
        return True

    def consume(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the oldest message; ``None`` when empty after ``timeout``.

        ``timeout=None`` polls without blocking (returns immediately).
        """
        try:
            if timeout is None:
                envelope = self._queue.get_nowait()
            else:
                envelope = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        seq, message = envelope
        with self._lock:
            self.consumed += 1
            rec = _conc.active()
            if rec is not None:
                rec.on_recv(self._key, seq)
        return message

    @property
    def depth(self) -> int:
        """Approximate number of queued messages."""
        return self._queue.qsize()


class Broker:
    """A set of named topics; topics are created on first use."""

    _guarded_by_ = {"_topics": "_lock", "_limits": "_lock"}

    def __init__(self, topic_limits: Optional[Dict[str, int]] = None) -> None:
        self._topics: Dict[str, Topic] = {}
        #: Capacity applied to a topic when it is first created.
        self._limits: Dict[str, int] = dict(topic_limits or {})
        self._lock = threading.Lock()

    def topic(self, name: str) -> Topic:
        with self._lock:
            topic = self._topics.get(name)
            if topic is None:
                topic = Topic(name, capacity=self._limits.get(name))
                self._topics[name] = topic
            return topic

    def publish(self, topic_name: str, message: Any, tag: Any = None) -> bool:
        return self.topic(topic_name).publish(message, tag=tag)

    def consume(self, topic_name: str, timeout: Optional[float] = None) -> Optional[Any]:
        return self.topic(topic_name).consume(timeout)

    def depth(self, topic_name: str) -> int:
        return self.topic(topic_name).depth

    def stats(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                name: {
                    "published": t.published,
                    "consumed": t.consumed,
                    "depth": t.depth,
                    "shed": t.shed,
                }
                for name, t in self._topics.items()
            }
