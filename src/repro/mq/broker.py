"""Thread-safe in-process topic broker (the RabbitMQ stand-in).

Work-queue semantics per topic: ``publish`` appends, ``consume`` pops the
oldest message and makes it invisible to every other consumer — exactly
the check-out behaviour DEWE v2 relies on ("the job is no longer visible
to other worker nodes", paper §III.C).  There is no broker-side ack or
redelivery: lost jobs are recovered by the master daemon's timeout
mechanism, as in the paper.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, Optional

__all__ = ["Topic", "Broker"]


class Topic:
    """One named FIFO message stream."""

    def __init__(self, name: str):
        self.name = name
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self.published = 0
        self.consumed = 0
        self._lock = threading.Lock()

    def publish(self, message: Any) -> None:
        with self._lock:
            self.published += 1
        self._queue.put(message)

    def consume(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the oldest message; ``None`` when empty after ``timeout``.

        ``timeout=None`` polls without blocking (returns immediately).
        """
        try:
            if timeout is None:
                message = self._queue.get_nowait()
            else:
                message = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        with self._lock:
            self.consumed += 1
        return message

    @property
    def depth(self) -> int:
        """Approximate number of queued messages."""
        return self._queue.qsize()


class Broker:
    """A set of named topics; topics are created on first use."""

    def __init__(self) -> None:
        self._topics: Dict[str, Topic] = {}
        self._lock = threading.Lock()

    def topic(self, name: str) -> Topic:
        with self._lock:
            topic = self._topics.get(name)
            if topic is None:
                topic = Topic(name)
                self._topics[name] = topic
            return topic

    def publish(self, topic_name: str, message: Any) -> None:
        self.topic(topic_name).publish(message)

    def consume(self, topic_name: str, timeout: Optional[float] = None) -> Optional[Any]:
        return self.topic(topic_name).consume(timeout)

    def depth(self, topic_name: str) -> int:
        return self.topic(topic_name).depth

    def stats(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                name: {
                    "published": t.published,
                    "consumed": t.consumed,
                    "depth": t.depth,
                }
                for name, t in self._topics.items()
            }
