"""Message-queue substrate (the paper's RabbitMQ).

DEWE v2 coordinates exclusively through three topics (paper §III.C):

* ``workflow-submission`` — submission application -> master daemon;
* ``job-dispatching`` — master daemon -> worker daemons (work queue);
* ``job-acknowledgment`` — worker daemons -> master daemon.

:class:`~repro.mq.broker.Broker` is a thread-safe in-process broker with
RabbitMQ-like work-queue semantics (a consumed message is invisible to
other consumers; redelivery is the master's timeout responsibility).
:class:`~repro.mq.simbroker.SimBroker` offers the same topics inside the
discrete-event simulator, with configurable publish latency.
"""

from repro.mq.broker import Broker, Topic
from repro.mq.tcpbroker import BrokerServer, RemoteBroker
from repro.mq.messages import (
    TOPIC_ACK,
    TOPIC_DISPATCH,
    TOPIC_SUBMIT,
    AckKind,
    JobAck,
    JobDispatch,
    WorkflowSubmission,
)
from repro.mq.simbroker import SimBroker

__all__ = [
    "AckKind",
    "Broker",
    "BrokerServer",
    "RemoteBroker",
    "JobAck",
    "JobDispatch",
    "SimBroker",
    "TOPIC_ACK",
    "TOPIC_DISPATCH",
    "TOPIC_SUBMIT",
    "Topic",
    "WorkflowSubmission",
]
