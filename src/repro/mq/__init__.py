"""Message-queue substrate (the paper's RabbitMQ).

DEWE v2 coordinates exclusively through three topics (paper §III.C):

* ``workflow-submission`` — submission application -> master daemon;
* ``job-dispatching`` — master daemon -> worker daemons (work queue);
* ``job-acknowledgment`` — worker daemons -> master daemon.

:class:`~repro.mq.broker.Broker` is a thread-safe in-process broker with
RabbitMQ-like work-queue semantics (a consumed message is invisible to
other consumers; redelivery is the master's timeout responsibility).
:class:`~repro.mq.simbroker.SimBroker` offers the same topics inside the
discrete-event simulator, with configurable publish latency.
:class:`~repro.mq.chaosbroker.ChaosBroker` / ``ChaosSimBroker`` wrap them
with a seeded :class:`~repro.mq.chaosbroker.MessageChaos` band that
drops, duplicates or delays published messages.
"""

from repro.mq.broker import SHED_RECORD_CAP, Broker, Topic
from repro.mq.chaosbroker import ChaosBroker, ChaosSimBroker, MessageChaos
from repro.mq.tcpbroker import BrokerServer, RemoteBroker
from repro.mq.messages import (
    TOPIC_ACK,
    TOPIC_DISPATCH,
    TOPIC_HEARTBEAT,
    TOPIC_SUBMIT,
    AckKind,
    JobAck,
    JobDispatch,
    PriorityUpdate,
    WorkerHeartbeat,
    WorkflowSubmission,
)
from repro.mq.priority import PRIORITY_BAND, RepriorityPolicy, base_band, rank_for_sla
from repro.mq.simbroker import SimBroker

__all__ = [
    "AckKind",
    "Broker",
    "BrokerServer",
    "ChaosBroker",
    "ChaosSimBroker",
    "MessageChaos",
    "PRIORITY_BAND",
    "PriorityUpdate",
    "RemoteBroker",
    "RepriorityPolicy",
    "JobAck",
    "JobDispatch",
    "SHED_RECORD_CAP",
    "SimBroker",
    "TOPIC_ACK",
    "TOPIC_DISPATCH",
    "TOPIC_HEARTBEAT",
    "TOPIC_SUBMIT",
    "Topic",
    "WorkerHeartbeat",
    "WorkflowSubmission",
    "base_band",
    "rank_for_sla",
]
