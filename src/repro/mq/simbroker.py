"""Simulated topic broker for the discrete-event engines.

Same topic semantics as :class:`repro.mq.broker.Broker`, but ``consume``
returns a DES event.  An optional per-message ``latency`` models broker
round-trip time; the default of a few milliseconds matches a co-located
RabbitMQ node and is deliberately negligible next to job runtimes — the
pull model's point is that coordination is cheap.

Topics may be *bounded* (``limits``): a publish that would exceed a
topic's backlog capacity is deterministically shed — ``publish`` returns
``False`` and the per-topic ``shed`` counter advances.  This is the
broker half of the backpressure story; the polite half is the master's
:class:`~repro.liveness.admission.AdmissionControl` gate (and, for
multi-tenant runs, the :class:`~repro.liveness.policy.ServiceAdmissionPolicy`
ladder in front of it).

Service plane: publishes may carry a sheddability ``klass`` (the SLA
class rank — higher is more sheddable) and an attribution ``tag``
(``(tenant, sla)``).  At capacity a classed publish *evicts* the newest
strictly-more-sheddable message already in the topic instead of being
dropped itself — a gold dispatch arriving at a full topic displaces a
queued best-effort one, never the other way around — and every shed is
recorded on ``shed_records`` with its tag for post-mortems.  Untagged
messages (``klass=None``) are never evicted.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sim import Event, FifoStore, Simulator

__all__ = ["SimBroker"]


class SimBroker:
    """Topic broker living inside a :class:`~repro.sim.Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = 0.002,
        limits: Optional[Dict[str, int]] = None,
    ):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        for name, cap in (limits or {}).items():
            if cap < 1:
                raise ValueError(f"limit for {name!r} must be >= 1, got {cap}")
        self.sim = sim
        self.latency = latency
        #: Per-topic backlog capacity; absent topics are unbounded.
        self.limits: Dict[str, int] = dict(limits or {})
        self._topics: Dict[str, FifoStore] = {}
        #: Per-topic in-flight delivery batch: messages published at the
        #: same instant share one agenda entry (they all arrive at
        #: ``now + latency`` anyway, in publish order).  Batches are
        #: ``(now, [messages], [metas])``; metas mirror messages for
        #: bounded topics only.
        self._pending: Dict[str, Any] = {}
        #: Bounded topics only: ``(klass, tag)`` metas aligned 1:1 with
        #: the store's queued messages so eviction can rank them.
        self._metas: Dict[str, Deque[Tuple[Optional[int], Any]]] = {}
        self.published = 0
        self.consumed = 0
        #: Per-topic count of publishes shed at the capacity bound
        #: (including evictions — something was still dropped).
        self.shed: Dict[str, int] = {}
        #: ``(topic, tag, kind)`` per shed message; ``kind`` is
        #: ``"incoming"`` (the publish itself was dropped) or
        #: ``"evicted"`` (a queued lower-priority message made room).
        self.shed_records: List[Tuple[str, Any, str]] = []

    def topic(self, name: str) -> FifoStore:
        store = self._topics.get(name)
        if store is None:
            store = FifoStore(self.sim)
            self._topics[name] = store
        return store

    # -- bounded-topic bookkeeping ----------------------------------------
    def _evict(self, topic_name: str, klass: int) -> bool:
        """Drop the newest message strictly more sheddable than ``klass``
        from the topic's backlog (in-flight batch first — it is the
        newest — then the queue).  Returns ``True`` if room was made."""
        best: Optional[int] = None
        pending = self._pending.get(topic_name)
        if pending is not None:
            for _msg, (k, _tag) in zip(pending[1], pending[2]):
                if k is not None and k > klass and (best is None or k > best):
                    best = k
        metas = self._metas.get(topic_name)
        if metas is not None:
            for k, _tag in metas:
                if k is not None and k > klass and (best is None or k > best):
                    best = k
        if best is None:
            return False
        if pending is not None:
            for i in range(len(pending[1]) - 1, -1, -1):
                if pending[2][i][0] == best:
                    tag = pending[2][i][1]
                    del pending[1][i]
                    del pending[2][i]
                    self._count_shed(topic_name, tag, "evicted")
                    return True
        store = self._topics[topic_name]
        for i in range(len(metas) - 1, -1, -1):
            if metas[i][0] == best:
                tag = metas[i][1]
                del metas[i]
                del store._items[i]
                self._count_shed(topic_name, tag, "evicted")
                return True
        return False

    def _count_shed(self, topic_name: str, tag: Any, kind: str) -> None:
        self.shed[topic_name] = self.shed.get(topic_name, 0) + 1
        self.shed_records.append((topic_name, tag, kind))

    def publish(
        self,
        topic_name: str,
        message: Any,
        klass: Optional[int] = None,
        tag: Any = None,
    ) -> bool:
        """Deliver ``message`` to the topic after the broker latency.

        Returns ``False`` (and counts a shed) when the topic is bounded
        and its backlog — queued plus in-flight deliveries — is at
        capacity and nothing more sheddable than ``klass`` could be
        evicted; the message is dropped and the publisher is expected
        to back off and retry.
        """
        limit = self.limits.get(topic_name)
        bounded = limit is not None
        if bounded:
            backlog = len(self.topic(topic_name))
            pending = self._pending.get(topic_name)
            if pending is not None:
                backlog += len(pending[1])
            if backlog >= limit and (
                klass is None or not self._evict(topic_name, klass)
            ):
                self._count_shed(topic_name, tag, "incoming")
                return False
        self.published += 1
        if self.latency == 0:
            self.topic(topic_name).put(message)
            if bounded:
                self._meta_put(topic_name, klass, tag)
            return True
        now = self.sim.now
        pending = self._pending.get(topic_name)
        if pending is not None and pending[0] == now:
            pending[1].append(message)
            if bounded:
                pending[2].append((klass, tag))
            return True
        batch = (now, [message], [(klass, tag)] if bounded else [])
        self._pending[topic_name] = batch
        self.sim.schedule_call(self.latency, self._deliver, topic_name, batch)
        return True

    def _meta_put(self, topic_name: str, klass, tag) -> None:
        """Mirror one queued message's meta — only when it actually
        queued (a waiting getter consumes the put synchronously)."""
        store = self._topics[topic_name]
        metas = self._metas.get(topic_name)
        if metas is None:
            metas = self._metas[topic_name] = deque()
        if len(store._items) > len(metas):
            metas.append((klass, tag))

    def _deliver(self, topic_name: str, batch) -> None:
        if self._pending.get(topic_name) is batch:
            del self._pending[topic_name]
        store = self.topic(topic_name)
        put = store.put
        if topic_name in self.limits:
            for message, (klass, tag) in zip(batch[1], batch[2]):
                put(message)
                self._meta_put(topic_name, klass, tag)
        else:
            for message in batch[1]:
                put(message)

    def _meta_pop(self, topic_name: str) -> None:
        metas = self._metas.get(topic_name)
        if metas:
            metas.popleft()

    def consume(self, topic_name: str) -> Event:
        """Event that fires with the next message of the topic."""
        self.consumed += 1
        store = self.topic(topic_name)
        if topic_name in self.limits and store._items:
            self._meta_pop(topic_name)
        return store.get()

    def consume_nowait(self, topic_name: str) -> Any:
        """Pop the next queued message synchronously, or ``None``.

        Lets a consumer loop drain a burst of same-instant deliveries
        without one suspend/resume round-trip per message.
        """
        store = self.topic(topic_name)
        if store._items:
            self.consumed += 1
            if topic_name in self.limits:
                self._meta_pop(topic_name)
            return store._items.popleft()
        return None

    def cancel(self, topic_name: str, event: Event) -> bool:
        """Abandon a pending consume (worker daemon shutting down)."""
        return self.topic(topic_name).cancel(event)

    def depth(self, topic_name: str) -> int:
        return len(self.topic(topic_name))
