"""Simulated topic broker for the discrete-event engines.

Same topic semantics as :class:`repro.mq.broker.Broker`, but ``consume``
returns a DES event.  An optional per-message ``latency`` models broker
round-trip time; the default of a few milliseconds matches a co-located
RabbitMQ node and is deliberately negligible next to job runtimes — the
pull model's point is that coordination is cheap.

Topics are priority queues: ``publish(..., priority=...)`` ranks a
message above or below the default band (higher first, FIFO within a
priority — the tie-break is the deterministic publish sequence carried
by :class:`~repro.sim.PriorityStore`), and ``reprioritize`` retags
*already queued* messages in place, which is what lets a running
ensemble re-rank still-queued jobs as completions land.  Messages still
in the in-flight latency batch are retagged too — a reprioritize
logically happens broker-side, after the publish left the producer.

Topics may be *bounded* (``limits``): a publish that would exceed a
topic's backlog capacity is deterministically shed — ``publish`` returns
``False`` and the per-topic ``shed`` counter advances.  This is the
broker half of the backpressure story; the polite half is the master's
:class:`~repro.liveness.admission.AdmissionControl` gate (and, for
multi-tenant runs, the :class:`~repro.liveness.policy.ServiceAdmissionPolicy`
ladder in front of it).

Service plane: publishes may carry a sheddability ``klass`` (the SLA
class rank — higher is more sheddable) and an attribution ``tag``
(``(tenant, sla)``).  At capacity a classed publish *evicts* the newest
strictly-more-sheddable message already in the topic instead of being
dropped itself — a gold dispatch arriving at a full topic displaces a
queued best-effort one, never the other way around — and every shed is
recorded on ``shed_records`` with its tag for post-mortems.  Untagged
messages (``klass=None``) are never evicted.  The record list is a
bounded deque (:data:`SHED_RECORD_CAP`): the ``shed`` counters stay
exact over arbitrarily long soaks while ``dropped_records`` counts how
many of the oldest records the cap discarded.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.sim import Event, PriorityStore, Simulator

__all__ = ["SHED_RECORD_CAP", "SimBroker"]

#: Upper bound on retained shed records (per broker).  Counters stay
#: exact; only the per-record attribution ring is capped.
SHED_RECORD_CAP = 256


class SimBroker:
    """Topic broker living inside a :class:`~repro.sim.Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = 0.002,
        limits: Optional[Dict[str, int]] = None,
    ):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        for name, cap in (limits or {}).items():
            if cap < 1:
                raise ValueError(f"limit for {name!r} must be >= 1, got {cap}")
        self.sim = sim
        self.latency = latency
        #: Per-topic backlog capacity; absent topics are unbounded.
        self.limits: Dict[str, int] = dict(limits or {})
        self._topics: Dict[str, PriorityStore] = {}
        #: Per-topic in-flight delivery batch: messages published at the
        #: same instant share one agenda entry (they all arrive at
        #: ``now + latency`` anyway, in publish order).  Batches are
        #: ``(now, [[message, klass, tag, priority], ...])`` — entries
        #: are lists so ``reprioritize`` can retag them in flight.
        self._pending: Dict[str, Any] = {}
        self.published = 0
        self.consumed = 0
        #: Per-topic count of publishes shed at the capacity bound
        #: (including evictions — something was still dropped).
        self.shed: Dict[str, int] = {}
        #: ``(topic, tag, kind)`` per shed message; ``kind`` is
        #: ``"incoming"`` (the publish itself was dropped) or
        #: ``"evicted"`` (a queued lower-priority message made room).
        #: Bounded: the newest :data:`SHED_RECORD_CAP` records.
        self.shed_records: Deque[Tuple[str, Any, str]] = deque(
            maxlen=SHED_RECORD_CAP
        )
        #: How many shed records the cap discarded (oldest-first).
        self.dropped_records = 0

    def topic(self, name: str) -> PriorityStore:
        store = self._topics.get(name)
        if store is None:
            store = PriorityStore(self.sim)
            self._topics[name] = store
        return store

    # -- bounded-topic bookkeeping ----------------------------------------
    def _evict(self, topic_name: str, klass: int) -> bool:
        """Drop the newest message strictly more sheddable than ``klass``
        from the topic's backlog (in-flight batch first — it is the
        newest — then the queue).  Returns ``True`` if room was made."""
        best: Optional[int] = None
        pending = self._pending.get(topic_name)
        if pending is not None:
            for _msg, k, _tag, _prio in pending[1]:
                if k is not None and k > klass and (best is None or k > best):
                    best = k
        store = self._topics.get(topic_name)
        queued = store.snapshot() if store is not None else []
        for _seq, _msg, meta in queued:
            k = meta[0] if meta is not None else None
            if k is not None and k > klass and (best is None or k > best):
                best = k
        if best is None:
            return False
        if pending is not None:
            for i in range(len(pending[1]) - 1, -1, -1):
                if pending[1][i][1] == best:
                    tag = pending[1][i][2]
                    del pending[1][i]
                    self._count_shed(topic_name, tag, "evicted")
                    return True
        # Newest queued victim = the highest publish sequence among the
        # most-sheddable class (snapshot order is consumption order, not
        # arrival order).
        victim: Optional[Tuple[int, Any]] = None
        for seq, _msg, meta in queued:
            if meta is not None and meta[0] == best:
                if victim is None or seq > victim[0]:
                    victim = (seq, meta[1])
        if victim is None:
            return False
        store.remove(victim[0])
        self._count_shed(topic_name, victim[1], "evicted")
        return True

    def _count_shed(self, topic_name: str, tag: Any, kind: str) -> None:
        self.shed[topic_name] = self.shed.get(topic_name, 0) + 1
        if len(self.shed_records) == SHED_RECORD_CAP:
            self.dropped_records += 1
        self.shed_records.append((topic_name, tag, kind))

    def publish(
        self,
        topic_name: str,
        message: Any,
        klass: Optional[int] = None,
        tag: Any = None,
        priority: float = 0.0,
    ) -> bool:
        """Deliver ``message`` to the topic after the broker latency.

        ``priority`` ranks the message among queued ones (higher first,
        publish order within a priority).  Returns ``False`` (and counts
        a shed) when the topic is bounded and its backlog — queued plus
        in-flight deliveries — is at capacity and nothing more sheddable
        than ``klass`` could be evicted; the message is dropped and the
        publisher is expected to back off and retry.
        """
        limit = self.limits.get(topic_name)
        if limit is not None:
            backlog = len(self.topic(topic_name))
            pending = self._pending.get(topic_name)
            if pending is not None:
                backlog += len(pending[1])
            if backlog >= limit and (
                klass is None or not self._evict(topic_name, klass)
            ):
                self._count_shed(topic_name, tag, "incoming")
                return False
        self.published += 1
        if self.latency == 0:
            self._put_direct(topic_name, message, klass, tag, priority)
            return True
        now = self.sim.now
        pending = self._pending.get(topic_name)
        if pending is not None and pending[0] == now:
            pending[1].append([message, klass, tag, priority])
            return True
        batch = (now, [[message, klass, tag, priority]])
        self._pending[topic_name] = batch
        self.sim.schedule_call(self.latency, self._deliver, topic_name, batch)
        return True

    def _put_direct(
        self,
        topic_name: str,
        message: Any,
        klass: Optional[int],
        tag: Any,
        priority: float,
    ) -> None:
        """Deposit one message with its shedding meta attached to the
        store entry itself (no parallel mirror to desync)."""
        meta = (klass, tag) if klass is not None or tag is not None else None
        self.topic(topic_name).put(message, priority, meta)

    def _deliver(self, topic_name: str, batch) -> None:
        if self._pending.get(topic_name) is batch:
            del self._pending[topic_name]
        for message, klass, tag, priority in batch[1]:
            self._put_direct(topic_name, message, klass, tag, priority)

    def consume(self, topic_name: str) -> Event:
        """Event that fires with the next message of the topic."""
        self.consumed += 1
        return self.topic(topic_name).get()

    def consume_nowait(self, topic_name: str) -> Any:
        """Pop the next queued message synchronously, or ``None``.

        Lets a consumer loop drain a burst of same-instant deliveries
        without one suspend/resume round-trip per message.
        """
        store = self.topic(topic_name)
        if len(store):
            self.consumed += 1
            return store.pop_nowait()
        return None

    def reprioritize(self, topic_name: str, selector, priority: float) -> int:
        """Retag queued messages for which ``selector(message)`` is true
        with ``priority``; messages still in the in-flight latency batch
        are retagged too.  Returns the number of messages retagged."""
        count = self.topic(topic_name).reprioritize(
            lambda item, _meta: selector(item), priority
        )
        pending = self._pending.get(topic_name)
        if pending is not None:
            for entry in pending[1]:
                if entry[3] != priority and selector(entry[0]):
                    entry[3] = priority
                    count += 1
        return count

    def cancel(self, topic_name: str, event: Event) -> bool:
        """Abandon a pending consume (worker daemon shutting down)."""
        return self.topic(topic_name).cancel(event)

    def depth(self, topic_name: str) -> int:
        return len(self.topic(topic_name))
