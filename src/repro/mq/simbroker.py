"""Simulated topic broker for the discrete-event engines.

Same topic semantics as :class:`repro.mq.broker.Broker`, but ``consume``
returns a DES event.  An optional per-message ``latency`` models broker
round-trip time; the default of a few milliseconds matches a co-located
RabbitMQ node and is deliberately negligible next to job runtimes — the
pull model's point is that coordination is cheap.

Topics may be *bounded* (``limits``): a publish that would exceed a
topic's backlog capacity is deterministically shed — ``publish`` returns
``False`` and the per-topic ``shed`` counter advances.  This is the
broker half of the backpressure story; the polite half is the master's
:class:`~repro.liveness.admission.AdmissionControl` gate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim import Event, FifoStore, Simulator

__all__ = ["SimBroker"]


class SimBroker:
    """Topic broker living inside a :class:`~repro.sim.Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        latency: float = 0.002,
        limits: Optional[Dict[str, int]] = None,
    ):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        for name, cap in (limits or {}).items():
            if cap < 1:
                raise ValueError(f"limit for {name!r} must be >= 1, got {cap}")
        self.sim = sim
        self.latency = latency
        #: Per-topic backlog capacity; absent topics are unbounded.
        self.limits: Dict[str, int] = dict(limits or {})
        self._topics: Dict[str, FifoStore] = {}
        #: Per-topic in-flight delivery batch: messages published at the
        #: same instant share one agenda entry (they all arrive at
        #: ``now + latency`` anyway, in publish order).
        self._pending: Dict[str, Any] = {}
        self.published = 0
        self.consumed = 0
        #: Per-topic count of publishes shed at the capacity bound.
        self.shed: Dict[str, int] = {}

    def topic(self, name: str) -> FifoStore:
        store = self._topics.get(name)
        if store is None:
            store = FifoStore(self.sim)
            self._topics[name] = store
        return store

    def publish(self, topic_name: str, message: Any) -> bool:
        """Deliver ``message`` to the topic after the broker latency.

        Returns ``False`` (and counts a shed) when the topic is bounded
        and its backlog — queued plus in-flight deliveries — is at
        capacity; the message is dropped and the publisher is expected
        to back off and retry.
        """
        limit = self.limits.get(topic_name)
        if limit is not None:
            backlog = len(self.topic(topic_name))
            pending = self._pending.get(topic_name)
            if pending is not None:
                backlog += len(pending[1])
            if backlog >= limit:
                self.shed[topic_name] = self.shed.get(topic_name, 0) + 1
                return False
        self.published += 1
        if self.latency == 0:
            self.topic(topic_name).put(message)
            return True
        now = self.sim.now
        pending = self._pending.get(topic_name)
        if pending is not None and pending[0] == now:
            pending[1].append(message)
            return True
        batch = (now, [message])
        self._pending[topic_name] = batch
        self.sim.schedule_call(self.latency, self._deliver, topic_name, batch)
        return True

    def _deliver(self, topic_name: str, batch) -> None:
        if self._pending.get(topic_name) is batch:
            del self._pending[topic_name]
        put = self.topic(topic_name).put
        for message in batch[1]:
            put(message)

    def consume(self, topic_name: str) -> Event:
        """Event that fires with the next message of the topic."""
        self.consumed += 1
        return self.topic(topic_name).get()

    def consume_nowait(self, topic_name: str) -> Any:
        """Pop the next queued message synchronously, or ``None``.

        Lets a consumer loop drain a burst of same-instant deliveries
        without one suspend/resume round-trip per message.
        """
        store = self.topic(topic_name)
        if store._items:
            self.consumed += 1
            return store._items.popleft()
        return None

    def cancel(self, topic_name: str, event: Event) -> bool:
        """Abandon a pending consume (worker daemon shutting down)."""
        return self.topic(topic_name).cancel(event)

    def depth(self, topic_name: str) -> int:
        return len(self.topic(topic_name))
