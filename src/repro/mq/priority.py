"""Priority bands and the live-reprioritization scoring policy.

The dispatch topic is a priority queue (ROADMAP item 2).  Priorities are
structured as **SLA bands plus a bounded heuristic score**:

* the SLA class of a workflow fixes its *band* — gold rides structurally
  above silver above best-effort above untagged work
  (:func:`base_band`); a score can never promote a best-effort job over
  a gold one because scores are clamped to less than half a band;
* within a band, :class:`RepriorityPolicy` scores each queued job from
  the two heuristics the ensemble papers motivate (Juve et al.,
  "Scientific Workflow Applications on Amazon EC2"): the *critical-path
  length remaining* below the job (long poles first) and the member's
  *deadline slack* (less slack → more urgent);
* a starvation-avoidance *aging* term grows with queue age, so a job
  that keeps losing ties eventually outranks fresher work of its band.

Scores are recomputed as completions land (the OSPREY
``asynch_repriority`` pattern: finish tasks, re-score the still-queued
ones, push :class:`~repro.mq.messages.PriorityUpdate`-style retags
broker-side) — everything is a pure function of simulated time and the
workflow structure, so runs stay byte-deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "PRIORITY_BAND",
    "base_band",
    "rank_for_sla",
    "RepriorityPolicy",
]

#: Width of one SLA priority band.  Heuristic scores are clamped to
#: strictly less than half a band in magnitude, so bands never invert.
PRIORITY_BAND = 1000.0

#: Ranks at or beyond this collapse into the lowest band (just above
#: untagged work at priority 0).
_MAX_RANK = 3


def base_band(rank: Optional[int]) -> float:
    """Base priority for an SLA sheddability rank (0 = most protected).

    ``None`` (untagged, single-tenant work) stays at the FIFO default
    0.0; ranked work sits whole bands above it, most-protected highest.
    """
    if rank is None:
        return 0.0
    return (_MAX_RANK - min(rank, _MAX_RANK)) * PRIORITY_BAND


def rank_for_sla(sla: str) -> Optional[int]:
    """Sheddability rank of an SLA class name, ``None`` when unknown."""
    if not sla:
        return None
    from repro.liveness.policy import DEFAULT_CLASSES

    for cls in DEFAULT_CLASSES:
        if cls.name == sla:
            return cls.rank
    return None


@dataclass(frozen=True)
class RepriorityPolicy:
    """How queued jobs are scored, and when they are re-scored.

    ``score`` combines critical-path urgency, deadline slack and queue
    age into a bounded within-band offset:

    ``cp_weight * cp_remaining - slack_weight * slack + aging_rate * age``

    clamped to ``±(PRIORITY_BAND / 2 - 1)``.  All three inputs are in
    simulated seconds; with the default weights a job one minute deeper
    on the critical path outranks a sibling by 60 points, and a member
    whose deadline slack has evaporated gains priority symmetrically.

    ``interval > 0`` additionally runs a periodic master sweep that
    re-scores *every* queued job (this is where aging takes effect —
    without a sweep, age is only observed when a completion already
    triggers a re-score).
    """

    #: Weight on critical-path seconds remaining below the job.
    cp_weight: float = 1.0
    #: Weight on the member's deadline slack (positive slack lowers
    #: priority, negative slack — already late — raises it).
    slack_weight: float = 1.0
    #: Priority points per second a job has been waiting in the queue.
    aging_rate: float = 0.0
    #: Period of the re-score/aging sweep (simulated seconds); 0
    #: disables the sweep, leaving completion-triggered re-scores only.
    interval: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cp_weight", "slack_weight", "aging_rate", "interval"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def score(self, cp_remaining: float, slack: float, age: float) -> float:
        """Bounded within-band score for one queued job."""
        raw = (
            self.cp_weight * cp_remaining
            - self.slack_weight * slack
            + self.aging_rate * age
        )
        clamp = PRIORITY_BAND / 2.0 - 1.0
        if raw > clamp:
            return clamp
        if raw < -clamp:
            return -clamp
        return raw
