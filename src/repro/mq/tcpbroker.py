"""TCP broker: DEWE v2 across OS processes.

The in-process :class:`~repro.mq.broker.Broker` serves threads; this
module serves *processes* (and, in principle, hosts) the way the paper's
RabbitMQ did.  A :class:`BrokerServer` wraps a Broker behind a newline-
delimited JSON protocol; :class:`RemoteBroker` is a drop-in client with
the same ``publish``/``consume`` interface, so the unchanged
:class:`~repro.dewe.master.MasterDaemon` and
:class:`~repro.dewe.worker.WorkerDaemon` run against it — the worker
daemon's only knowledge of the system really is "the address of the
message queue" (paper §III.D).

Protocol (one JSON object per line)::

    -> {"op": "publish", "topic": "...", "message": {...}}
    <- {"ok": true}
    -> {"op": "consume", "topic": "...", "timeout": 0.05}
    <- {"ok": true, "message": {...} | null}
    -> {"op": "depth", "topic": "..."}
    <- {"ok": true, "depth": 3}

Messages are the codecs' JSON forms of the three DEWE message types.
Job actions survive the wire only as argv lists (subprocess jobs) —
Python callables cannot cross processes, matching reality: remote
workers run binaries from the shared file system, not closures.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Optional, Tuple

from repro.mq.broker import Broker
from repro.mq.messages import (
    AckKind,
    JobAck,
    JobDispatch,
    PriorityUpdate,
    WorkerHeartbeat,
    WorkflowSubmission,
)
from repro.workflow.dag import Job
from repro.workflow.serialize import workflow_from_dict, workflow_to_dict

__all__ = ["encode_message", "decode_message", "BrokerServer", "RemoteBroker"]


# ---------------------------------------------------------------------------
# Message codecs
# ---------------------------------------------------------------------------


def _encode_job(job: Job) -> dict:
    action = job.action
    if action is not None and not isinstance(action, (list, tuple)):
        raise TypeError(
            f"job {job.id}: only argv-list actions can cross the TCP broker, "
            f"got {type(action).__name__}"
        )
    return {
        "id": job.id,
        "task_type": job.task_type,
        "runtime": job.runtime,
        "threads": job.threads,
        "timeout": job.timeout,
        "action": list(action) if action is not None else None,
    }


def _decode_job(data: dict) -> Job:
    return Job(
        data["id"],
        data["task_type"],
        runtime=data.get("runtime", 0.0),
        threads=data.get("threads", 1),
        timeout=data.get("timeout"),
        action=data.get("action"),
    )


def encode_message(message: Any) -> dict:
    """Dataclass message -> JSON-able dict with a type tag."""
    if isinstance(message, WorkflowSubmission):
        return {
            "type": "submission",
            "workflow": workflow_to_dict(message.workflow),
            "folder": message.folder,
        }
    if isinstance(message, JobDispatch):
        return {
            "type": "dispatch",
            "workflow_name": message.workflow_name,
            "job_id": message.job_id,
            "attempt": message.attempt,
            "job": _encode_job(message.job) if message.job is not None else None,
        }
    if isinstance(message, JobAck):
        return {
            "type": "ack",
            "workflow_name": message.workflow_name,
            "job_id": message.job_id,
            "kind": message.kind.value,
            "worker": message.worker,
            "attempt": message.attempt,
            "error": message.error,
        }
    if isinstance(message, WorkerHeartbeat):
        return {
            "type": "heartbeat",
            "worker": message.worker,
            "epoch": message.epoch,
            "seq": message.seq,
        }
    if isinstance(message, PriorityUpdate):
        return {
            "type": "priority",
            "topic": message.topic,
            "workflow_name": message.workflow_name,
            "job_id": message.job_id,
            "priority": message.priority,
        }
    raise TypeError(f"cannot encode message of type {type(message).__name__}")


def decode_message(data: dict) -> Any:
    """Inverse of :func:`encode_message`."""
    kind = data.get("type")
    if kind == "submission":
        return WorkflowSubmission(
            workflow=workflow_from_dict(data["workflow"]), folder=data.get("folder", "")
        )
    if kind == "dispatch":
        job = data.get("job")
        return JobDispatch(
            workflow_name=data["workflow_name"],
            job_id=data["job_id"],
            attempt=data.get("attempt", 1),
            job=_decode_job(job) if job is not None else None,
        )
    if kind == "ack":
        return JobAck(
            workflow_name=data["workflow_name"],
            job_id=data["job_id"],
            kind=AckKind(data["kind"]),
            worker=data.get("worker", ""),
            attempt=data.get("attempt", 1),
            error=data.get("error"),
        )
    if kind == "heartbeat":
        return WorkerHeartbeat(
            worker=data["worker"],
            epoch=data.get("epoch", 0),
            seq=data.get("seq", 0),
        )
    if kind == "priority":
        return PriorityUpdate(
            topic=data["topic"],
            workflow_name=data.get("workflow_name", ""),
            job_id=data.get("job_id", ""),
            priority=data.get("priority", 0.0),
        )
    raise ValueError(f"unknown message type: {kind!r}")


def _selector_for(update: PriorityUpdate):
    """Message predicate for a server-side reprioritize.

    Queued messages live server-side in their encoded (dict) form; empty
    ``workflow_name``/``job_id`` fields are wildcards.
    """

    def selector(message: Any) -> bool:
        if not isinstance(message, dict):
            return False
        if update.workflow_name and (
            message.get("workflow_name") != update.workflow_name
        ):
            return False
        if update.job_id and message.get("job_id") != update.job_id:
            return False
        return True

    return selector


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        broker: Broker = self.server.broker  # type: ignore[attr-defined]
        try:
            for line in self.rfile:
                try:
                    request = json.loads(line)
                    response = self._execute(broker, request)
                except Exception as exc:  # noqa: BLE001 - protocol error path
                    response = {"ok": False, "error": repr(exc)}
                self.wfile.write((json.dumps(response) + "\n").encode())
                self.wfile.flush()
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            # A client (e.g. a terminated worker process) dropped the
            # connection mid-request; nothing to clean up server-side.
            pass

    @staticmethod
    def _execute(broker: Broker, request: dict) -> dict:
        op = request.get("op")
        if op == "publish":
            broker.publish(
                request["topic"],
                request["message"],
                priority=request.get("priority", 0.0),
            )
            return {"ok": True}
        if op == "consume":
            timeout = request.get("timeout")
            message = broker.consume(request["topic"], timeout=timeout)
            return {"ok": True, "message": message}
        if op == "reprioritize":
            update = decode_message(request["update"])
            count = broker.reprioritize(
                update.topic, _selector_for(update), update.priority
            )
            return {"ok": True, "count": count}
        if op == "depth":
            return {"ok": True, "depth": broker.depth(request["topic"])}
        if op == "stats":
            return {"ok": True, "stats": broker.stats()}
        return {"ok": False, "error": f"unknown op {op!r}"}


class BrokerServer:
    """Serves a :class:`Broker` over TCP; start()/stop() lifecycle."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.broker = Broker()
        self._server = socketserver.ThreadingTCPServer(
            (host, port), _Handler, bind_and_activate=True
        )
        self._server.daemon_threads = True
        self._server.broker = self.broker  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "BrokerServer":
        if self._thread is not None:
            raise RuntimeError("broker server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="broker-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class RemoteBroker:
    """Drop-in ``Broker`` client speaking the TCP protocol.

    Thread-safe (one request at a time per client); daemons that poll
    concurrently should each hold their own RemoteBroker, exactly like
    separate AMQP connections.  ``_lock`` serializes whole request/
    response round-trips, so it is deliberately held across the blocking
    ``readline`` — interleaving two requests on one socket would corrupt
    the protocol framing.
    """

    _guarded_by_ = {"_sock": "_lock", "_file": "_lock"}

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()

    def close(self) -> None:
        # Under the request lock: closing mid-round-trip from another
        # thread would race _call's use of the socket and file.
        with self._lock:
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "RemoteBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, request: dict, timeout: Optional[float] = None) -> dict:
        with self._lock:
            # Server-side blocking consume needs a matching socket timeout.
            self._sock.settimeout((timeout or 0.0) + 10.0)
            self._file.write((json.dumps(request) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise ConnectionError("broker server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(f"broker error: {response.get('error')}")
        return response

    # -- Broker interface ----------------------------------------------------
    def publish(
        self,
        topic_name: str,
        message: Any,
        tag: Any = None,
        priority: float = 0.0,
    ) -> None:
        # ``tag`` (service-plane shed attribution) is accepted for
        # interface parity; the wire protocol has no bounded topics, so
        # there is nothing to attribute on this side.
        self._call(
            {
                "op": "publish",
                "topic": topic_name,
                "message": encode_message(message),
                "priority": priority,
            }
        )

    def reprioritize(
        self,
        topic_name: str,
        priority: float,
        workflow_name: str = "",
        job_id: str = "",
    ) -> int:
        """Retag queued dispatches server-side; returns the count retagged."""
        update = PriorityUpdate(
            topic=topic_name,
            workflow_name=workflow_name,
            job_id=job_id,
            priority=priority,
        )
        return self._call(
            {"op": "reprioritize", "update": encode_message(update)}
        )["count"]

    def consume(self, topic_name: str, timeout: Optional[float] = None) -> Optional[Any]:
        response = self._call(
            {"op": "consume", "topic": topic_name, "timeout": timeout},
            timeout=timeout,
        )
        message = response.get("message")
        return decode_message(message) if message is not None else None

    def depth(self, topic_name: str) -> int:
        return self._call({"op": "depth", "topic": topic_name})["depth"]

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]
