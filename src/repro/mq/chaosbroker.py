"""Lossy/duplicating/delaying broker shims (message-level chaos).

The paper assumes a reliable RabbitMQ; real brokers under partition or
failover lose messages, redeliver them, and reorder them.  These shims
wrap the two broker implementations with a seeded fault band: each
published message draws one uniform variate and is *dropped*,
*duplicated*, *delayed*, or delivered normally.  The draw sequence comes
from an explicit ``random.Random(seed)``, so a simulated run's message
chaos is exactly reproducible.

Dropped dispatches are recovered by the master's dispatch-loss deadline
(``RetryPolicy.redispatch_lost``); dropped acks by the ordinary timeout;
duplicated messages are absorbed by the idempotent
:class:`~repro.dewe.state.WorkflowState` transitions.  That closed loop —
chaos here, recovery there — is what the chaos harness certifies.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.mq.broker import Broker
from repro.mq.simbroker import SimBroker

__all__ = ["MessageChaos", "ChaosSimBroker", "ChaosBroker"]


@dataclass(frozen=True)
class MessageChaos:
    """Fault band for published messages.

    One uniform draw per publish selects the outcome:
    ``[0, p_drop)`` drop, ``[p_drop, p_drop + p_duplicate)`` duplicate,
    next ``p_delay`` band delay by ``delay`` seconds, rest deliver
    normally.  ``topics`` restricts the chaos to the named topics
    (``None`` = all; submission topics are usually worth excluding so
    the scenario exercises recovery, not workflow loss).
    """

    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    delay: float = 1.0
    seed: int = 0
    topics: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_duplicate", "p_delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.p_drop + self.p_duplicate + self.p_delay > 1.0 + 1e-12:
            raise ValueError("p_drop + p_duplicate + p_delay must be <= 1")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def applies_to(self, topic_name: str) -> bool:
        return self.topics is None or topic_name in self.topics


def _describe(topic_name: str, message: Any) -> str:
    """Compact, deterministic message label for fault traces."""
    job_id = getattr(message, "job_id", None)
    if job_id is not None:
        return f"{topic_name}:{job_id}"
    if isinstance(message, tuple):
        return f"{topic_name}:{message!r}"
    return f"{topic_name}:{type(message).__name__}"


class ChaosSimBroker(SimBroker):
    """:class:`SimBroker` with a seeded drop/duplicate/delay band."""

    def __init__(
        self,
        sim,
        chaos: MessageChaos,
        latency: float = 0.002,
        trace=None,
    ):
        super().__init__(sim, latency)
        self.chaos = chaos
        self.trace = trace
        self._rng = random.Random(chaos.seed)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def stats(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }

    def _record(self, kind: str, topic_name: str, message: Any) -> None:
        if self.trace is not None:
            self.trace.record(
                self.sim.now, kind, detail=_describe(topic_name, message)
            )

    def publish(self, topic_name: str, message: Any) -> None:
        chaos = self.chaos
        if not chaos.applies_to(topic_name):
            super().publish(topic_name, message)
            return
        u = self._rng.random()
        if u < chaos.p_drop:
            self.dropped += 1
            self._record("mq-drop", topic_name, message)
            return
        if u < chaos.p_drop + chaos.p_duplicate:
            self.duplicated += 1
            self._record("mq-duplicate", topic_name, message)
            super().publish(topic_name, message)
            super().publish(topic_name, message)
            return
        if u < chaos.p_drop + chaos.p_duplicate + chaos.p_delay:
            self.delayed += 1
            self._record("mq-delay", topic_name, message)
            self.published += 1
            self.sim.schedule_call(
                self.latency + chaos.delay, self.topic(topic_name).put, message
            )
            return
        super().publish(topic_name, message)


class ChaosBroker(Broker):
    """Thread-safe :class:`Broker` with the same seeded fault band.

    Delayed messages are re-published from a ``threading.Timer``; the
    draw order is serialized under a lock, so with a single publisher
    thread (the usual master + one worker topology of the tests) the
    outcome sequence is reproducible.
    """

    _guarded_by_ = {
        "dropped": "_rng_lock",
        "duplicated": "_rng_lock",
        "delayed": "_rng_lock",
        "_rng": "_rng_lock",
    }

    def __init__(self, chaos: MessageChaos):
        super().__init__()
        self.chaos = chaos
        self._rng = random.Random(chaos.seed)
        self._rng_lock = threading.Lock()
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def chaos_stats(self) -> dict:
        with self._rng_lock:
            return {
                "dropped": self.dropped,
                "duplicated": self.duplicated,
                "delayed": self.delayed,
            }

    def publish(self, topic_name: str, message: Any) -> None:
        chaos = self.chaos
        if not chaos.applies_to(topic_name):
            super().publish(topic_name, message)
            return
        with self._rng_lock:
            u = self._rng.random()
            if u < chaos.p_drop:
                self.dropped += 1
                outcome = "drop"
            elif u < chaos.p_drop + chaos.p_duplicate:
                self.duplicated += 1
                outcome = "duplicate"
            elif u < chaos.p_drop + chaos.p_duplicate + chaos.p_delay:
                self.delayed += 1
                outcome = "delay"
            else:
                outcome = "deliver"
        if outcome == "drop":
            return
        if outcome == "duplicate":
            super().publish(topic_name, message)
            super().publish(topic_name, message)
            return
        if outcome == "delay":
            timer = threading.Timer(
                chaos.delay, super().publish, args=(topic_name, message)
            )
            timer.daemon = True
            timer.start()
            return
        super().publish(topic_name, message)
