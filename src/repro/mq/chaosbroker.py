"""Lossy/duplicating/delaying broker shims (message-level chaos).

The paper assumes a reliable RabbitMQ; real brokers under partition or
failover lose messages, redeliver them, and reorder them.  These shims
wrap the two broker implementations with a seeded fault band: each
published message draws one uniform variate and is *dropped*,
*duplicated*, *delayed*, or delivered normally.  The draw sequence comes
from an explicit ``random.Random(seed)``, so a simulated run's message
chaos is exactly reproducible.

Dropped dispatches are recovered by the master's dispatch-loss deadline
(``RetryPolicy.redispatch_lost``); dropped acks by the ordinary timeout;
duplicated messages are absorbed by the idempotent
:class:`~repro.dewe.state.WorkflowState` transitions.  That closed loop —
chaos here, recovery there — is what the chaos harness certifies.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.mq.broker import Broker
from repro.mq.messages import TOPIC_ACK, TOPIC_HEARTBEAT
from repro.mq.simbroker import SimBroker

__all__ = ["MessageChaos", "ChaosSimBroker", "ChaosBroker"]


@dataclass(frozen=True)
class MessageChaos:
    """Fault band for published messages.

    One uniform draw per publish selects the outcome:
    ``[0, p_drop)`` drop, ``[p_drop, p_drop + p_duplicate)`` duplicate,
    next ``p_delay`` band delay by ``delay`` seconds, rest deliver
    normally.  ``topics`` restricts the chaos to the named topics
    (``None`` = all; submission topics are usually worth excluding so
    the scenario exercises recovery, not workflow loss).
    """

    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    delay: float = 1.0
    seed: int = 0
    topics: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_duplicate", "p_delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.p_drop + self.p_duplicate + self.p_delay > 1.0 + 1e-12:
            raise ValueError("p_drop + p_duplicate + p_delay must be <= 1")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def applies_to(self, topic_name: str) -> bool:
        return self.topics is None or topic_name in self.topics


def _describe(topic_name: str, message: Any) -> str:
    """Compact, deterministic message label for fault traces."""
    job_id = getattr(message, "job_id", None)
    if job_id is not None:
        return f"{topic_name}:{job_id}"
    if isinstance(message, tuple):
        return f"{topic_name}:{message!r}"
    return f"{topic_name}:{type(message).__name__}"


class ChaosSimBroker(SimBroker):
    """:class:`SimBroker` with a seeded drop/duplicate/delay band."""

    def __init__(
        self,
        sim,
        chaos: MessageChaos,
        latency: float = 0.002,
        trace=None,
    ):
        super().__init__(sim, latency)
        self.chaos = chaos
        self.trace = trace
        self._rng = random.Random(chaos.seed)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def stats(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }

    def _record(self, kind: str, topic_name: str, message: Any) -> None:
        if self.trace is not None:
            self.trace.record(
                self.sim.now, kind, detail=_describe(topic_name, message)
            )

    def publish(
        self, topic_name: str, message: Any, klass=None, tag=None,
        priority: float = 0.0,
    ) -> bool:
        chaos = self.chaos
        if not chaos.applies_to(topic_name):
            return super().publish(
                topic_name, message, klass=klass, tag=tag, priority=priority
            )
        u = self._rng.random()
        if u < chaos.p_drop:
            self.dropped += 1
            self._record("mq-drop", topic_name, message)
            return True  # accepted by the broker, then lost — not backpressure
        if u < chaos.p_drop + chaos.p_duplicate:
            self.duplicated += 1
            self._record("mq-duplicate", topic_name, message)
            ok = super().publish(
                topic_name, message, klass=klass, tag=tag, priority=priority
            )
            super().publish(
                topic_name, message, klass=klass, tag=tag, priority=priority
            )
            return ok
        if u < chaos.p_drop + chaos.p_duplicate + chaos.p_delay:
            self.delayed += 1
            self._record("mq-delay", topic_name, message)
            self.published += 1
            # Deliver through the meta-preserving direct put so a delayed
            # message keeps its class, tag and priority.
            self.sim.schedule_call(
                self.latency + chaos.delay,
                self._put_direct, topic_name, message, klass, tag, priority,
            )
            return True
        return super().publish(
            topic_name, message, klass=klass, tag=tag, priority=priority
        )


class ChaosBroker(Broker):
    """Thread-safe :class:`Broker` with the same seeded fault band.

    Delayed messages are re-published from a ``threading.Timer``; the
    draw order is serialized under a lock, so with a single publisher
    thread (the usual master + one worker topology of the tests) the
    outcome sequence is reproducible.

    Partition shim: :meth:`begin_partition` cuts named workers off the
    control plane — their publishes to the partitioned topics (by
    default the uplink: acks and heartbeats, i.e. the threaded shim
    realizes the ``to-master`` direction of
    :class:`~repro.faults.models.NetworkPartitionModel`; cutting the
    dispatch downlink would need per-worker queues the shared
    work-queue topic model doesn't have) are *held* in publish order
    instead of delivered.  :meth:`heal_partition` releases the held
    messages back through the ordinary chaos band, preserving their
    order, which is what lets tests exercise duplicate-ack idempotency
    and redelivery ordering across a heal.
    """

    _guarded_by_ = {
        "dropped": "_rng_lock",
        "duplicated": "_rng_lock",
        "delayed": "_rng_lock",
        "_rng": "_rng_lock",
        "_partitioned": "_partition_lock",
        "_held": "_partition_lock",
        "held": "_partition_lock",
        "flushed": "_partition_lock",
    }

    #: Topics cut by a partition unless the caller names others: the
    #: worker uplink (job acks and heartbeat renewals).
    PARTITION_TOPICS: Tuple[str, ...] = (TOPIC_ACK, TOPIC_HEARTBEAT)

    def __init__(self, chaos: MessageChaos):
        super().__init__()
        self.chaos = chaos
        self._rng = random.Random(chaos.seed)
        self._rng_lock = threading.Lock()
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self._partition_lock = threading.Lock()
        #: worker name -> tuple of topics cut for it.
        self._partitioned: dict = {}
        #: Held (topic, message, priority) triples in publish order.
        self._held: list = []
        self.held = 0
        self.flushed = 0

    def chaos_stats(self) -> dict:
        with self._rng_lock:
            stats = {
                "dropped": self.dropped,
                "duplicated": self.duplicated,
                "delayed": self.delayed,
            }
        with self._partition_lock:
            stats["held"] = self.held
            stats["flushed"] = self.flushed
        return stats

    # -- partition shim --------------------------------------------------
    def begin_partition(
        self, workers, topics: Optional[Tuple[str, ...]] = None
    ) -> None:
        """Cut ``workers`` (names or one name) off ``topics``."""
        if isinstance(workers, str):
            workers = (workers,)
        cut = tuple(topics) if topics is not None else self.PARTITION_TOPICS
        with self._partition_lock:
            for worker in workers:
                self._partitioned[worker] = cut

    def heal_partition(self, workers=None) -> int:
        """Heal ``workers`` (default: all); redeliver their held messages.

        Held messages re-enter through the normal chaos band in their
        original publish order — a healed partition looks to the master
        like a burst of late, possibly duplicated traffic, exactly the
        at-least-once story the state machine must absorb.  Returns the
        number of messages released.
        """
        if isinstance(workers, str):
            workers = (workers,)
        with self._partition_lock:
            if workers is None:
                healed = set(self._partitioned)
                self._partitioned.clear()
            else:
                healed = set()
                for worker in workers:
                    if self._partitioned.pop(worker, None) is not None:
                        healed.add(worker)
            flush = []
            kept = []
            for topic_name, message, priority in self._held:
                if getattr(message, "worker", None) in healed:
                    flush.append((topic_name, message, priority))
                else:
                    kept.append((topic_name, message, priority))
            self._held = kept
            self.flushed += len(flush)
        # Re-publish outside the lock (the chaos band takes its own).
        for topic_name, message, priority in flush:
            self.publish(topic_name, message, priority=priority)
        return len(flush)

    def _hold_if_partitioned(
        self, topic_name: str, message: Any, priority: float
    ) -> bool:
        worker = getattr(message, "worker", None)
        if worker is None:
            return False
        with self._partition_lock:
            cut = self._partitioned.get(worker)
            if cut is None or topic_name not in cut:
                return False
            self._held.append((topic_name, message, priority))
            self.held += 1
            return True

    def publish(
        self,
        topic_name: str,
        message: Any,
        tag: Any = None,
        priority: float = 0.0,
    ) -> bool:
        chaos = self.chaos
        if self._hold_if_partitioned(topic_name, message, priority):
            return True  # in flight until the partition heals
        if not chaos.applies_to(topic_name):
            return super().publish(topic_name, message, tag=tag, priority=priority)
        with self._rng_lock:
            u = self._rng.random()
            if u < chaos.p_drop:
                self.dropped += 1
                outcome = "drop"
            elif u < chaos.p_drop + chaos.p_duplicate:
                self.duplicated += 1
                outcome = "duplicate"
            elif u < chaos.p_drop + chaos.p_duplicate + chaos.p_delay:
                self.delayed += 1
                outcome = "delay"
            else:
                outcome = "deliver"
        if outcome == "drop":
            return True  # accepted, then lost — chaos, not backpressure
        if outcome == "duplicate":
            ok = super().publish(topic_name, message, tag=tag, priority=priority)
            super().publish(topic_name, message, tag=tag, priority=priority)
            return ok
        if outcome == "delay":
            timer = threading.Timer(
                chaos.delay,
                super().publish,
                args=(topic_name, message),
                kwargs={"priority": priority},
            )
            timer.daemon = True
            timer.start()
            return True
        return super().publish(topic_name, message, tag=tag, priority=priority)
