"""Message schemas for the three DEWE v2 topics (paper §III.C)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.workflow.dag import Job, Workflow

__all__ = [
    "TOPIC_SUBMIT",
    "TOPIC_DISPATCH",
    "TOPIC_ACK",
    "TOPIC_HEARTBEAT",
    "AckKind",
    "WorkflowSubmission",
    "JobDispatch",
    "JobAck",
    "WorkerHeartbeat",
    "PriorityUpdate",
]

TOPIC_SUBMIT = "workflow-submission"
TOPIC_DISPATCH = "job-dispatching"
TOPIC_ACK = "job-acknowledgment"
#: Liveness plane (not in the paper, which assumes reachable workers):
#: workers renew their heartbeat leases here (docs/FAULTS.md).
TOPIC_HEARTBEAT = "worker-heartbeat"


class AckKind(Enum):
    """Worker-daemon acknowledgment types (paper §III.D)."""

    RUNNING = "running"      # job checked out and started
    COMPLETED = "completed"  # job finished successfully
    FAILED = "failed"        # job raised; master decides on retry


@dataclass(frozen=True, slots=True)
class WorkflowSubmission:
    """Submission application -> master: meta data about the workflow
    ("the name of the workflow, as well as the path to the related folder
    on the shared file system", §III.C).

    ``tenant``/``sla`` are the multi-tenant service tags (empty for the
    paper's single-owner submissions): the master stamps them onto the
    workflow's state so shed records and dead letters stay attributable.
    """

    workflow: Workflow
    folder: str = ""
    tenant: str = ""
    sla: str = ""


@dataclass(frozen=True, slots=True)
class JobDispatch:
    """Master -> workers: meta data about one eligible job ("the location
    of the binary executable with input and output parameters", §III.C).

    ``attempt`` counts deliveries: 1 for the first dispatch, +1 per
    timeout resubmission.
    """

    workflow_name: str
    job_id: str
    attempt: int = 1
    #: The job payload itself.  Workers are stateless (paper §III.D) so
    #: the dispatch message must be self-contained; in the real system
    #: this is "the location of the binary executable with input and
    #: output parameters", here it is the Job object.
    job: Optional["Job"] = None


@dataclass(frozen=True, slots=True)
class JobAck:
    """Worker -> master: job status transition."""

    workflow_name: str
    job_id: str
    kind: AckKind
    worker: str = ""
    attempt: int = 1
    error: Optional[str] = None


@dataclass(frozen=True, slots=True)
class PriorityUpdate:
    """Master -> broker: retag queued dispatches of a topic.

    The live-reprioritization plane (ROADMAP item 2): as completions
    land, the master re-scores still-queued jobs and pushes the new
    priorities broker-side without republishing.  ``workflow_name`` and
    ``job_id`` select the affected messages (empty string = wildcard),
    so one update can bump a single job or a whole ensemble member.
    """

    topic: str
    workflow_name: str = ""
    job_id: str = ""
    priority: float = 0.0


@dataclass(frozen=True, slots=True)
class WorkerHeartbeat:
    """Worker -> master: lease renewal.

    ``seq`` counts the worker's beats (diagnostics only); ``epoch`` is
    the lease epoch the worker believes it holds — the threaded daemons
    leave it 0 and rely on the master-side renew-on-contact variant of
    the protocol (:meth:`repro.liveness.lease.LeaseTable.observe`).
    """

    worker: str
    epoch: int = 0
    seq: int = 0
