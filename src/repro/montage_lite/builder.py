"""Build a runnable Montage-lite workflow over real files.

``build_montage_lite_workflow`` synthesises a sky, cuts it into tiles
with per-tile background offsets and noise, writes the raw tiles into a
workflow folder, and returns a :class:`~repro.workflow.dag.Workflow`
whose jobs are argv commands invoking :mod:`repro.montage_lite` — ready
for the real DEWE v2 daemons with a
:class:`~repro.dewe.executors.SubprocessExecutor` (or, in-process, a
:class:`~repro.dewe.executors.CallableExecutor` via the same tool
functions).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Union

import numpy as np

from repro.workflow.dag import DataFile, Workflow

__all__ = ["make_sky", "build_montage_lite_workflow"]

_PathLike = Union[str, Path]


def make_sky(grid: int, tile: int, seed: int = 0) -> np.ndarray:
    """A smooth synthetic sky of ``(grid*tile) x (grid*tile)`` pixels."""
    size = grid * tile
    ys, xs = np.mgrid[0:size, 0:size] / size
    rng = np.random.default_rng(seed)
    sky = np.zeros((size, size))
    for _ in range(4):
        fy, fx = rng.uniform(1.0, 4.0, size=2)
        py, px = rng.uniform(0, 2 * np.pi, size=2)
        amp = rng.uniform(20.0, 60.0)
        sky += amp * np.sin(2 * np.pi * fy * ys + py) * np.cos(2 * np.pi * fx * xs + px)
    return sky + 500.0  # positive baseline like real counts


def build_montage_lite_workflow(
    workdir: _PathLike,
    grid: int = 3,
    tile: int = 32,
    seed: int = 0,
    offset_scale: float = 50.0,
    noise_scale: float = 0.5,
    name: str = "montage-lite",
    subprocess_actions: bool = True,
    pad: int = 2,
) -> Workflow:
    """Write raw tiles under ``workdir`` and return the workflow.

    The raw tiles carry per-tile background offsets of magnitude
    ``offset_scale`` (what mBgModel must solve away) and pixel noise of
    ``noise_scale``.

    With ``subprocess_actions`` the jobs are argv commands invoking
    ``python -m repro.montage_lite`` (real subprocesses); without, they
    are in-process callables over the same tool functions — the two
    modes produce byte-identical outputs, which the test suite verifies.
    """
    if grid < 2:
        raise ValueError(f"grid must be >= 2, got {grid}")
    if tile < 4:
        raise ValueError(f"tile must be >= 4, got {tile}")
    if pad < 1 or 2 * pad >= tile:
        raise ValueError(f"pad must be in [1, tile/2), got {pad}")
    root = Path(workdir)
    (root / name).mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(seed + 1)
    sky = make_sky(grid, tile, seed)
    offsets = rng.uniform(-offset_scale, offset_scale, size=grid * grid)
    offsets[0] = 0.0  # tile 0 anchors the solution

    python = sys.executable

    def tool(tool_name, *args):
        str_args = [str(a) for a in args]
        if subprocess_actions:
            return [python, "-m", "repro.montage_lite", tool_name, *str_args]
        from functools import partial

        from repro.montage_lite.tools import TOOLS

        return partial(TOOLS[tool_name], str_args)

    wf = Workflow(name)
    raw_files, proj_files = [], []
    size = grid * tile
    for r in range(grid):
        for c in range(grid):
            i = r * grid + c
            # Overlapping footprint: interior edges extend `pad` pixels
            # into the neighbour, like real Montage tile coverage.
            r0 = max(0, r * tile - pad)
            r1 = min(size, (r + 1) * tile + pad)
            c0 = max(0, c * tile - pad)
            c1 = min(size, (c + 1) * tile + pad)
            block = sky[r0:r1, c0:c1]
            noisy = block + offsets[i] + rng.normal(0, noise_scale, block.shape)
            raw_rel = f"{name}/raw_{i:03d}.npy"
            np.save(root / raw_rel, noisy)
            proj_rel = f"{name}/p_{i:03d}.npy"
            raw_f = DataFile(raw_rel, (root / raw_rel).stat().st_size, "input")
            proj_f = DataFile(proj_rel, noisy.nbytes)
            raw_files.append(raw_f)
            proj_files.append(proj_f)
            wf.new_job(
                f"mProjectPP_{i:03d}",
                "mProjectPP",
                runtime=0.01,
                inputs=[raw_f],
                outputs=[proj_f],
                action=tool("mProjectPP", root / raw_rel, root / proj_rel),
            )

    # Pairwise fits on horizontal and vertical seams.
    fit_files = []
    pairs = []
    for r in range(grid):
        for c in range(grid):
            i = r * grid + c
            if c + 1 < grid:
                pairs.append((i, i + 1, "h"))
            if r + 1 < grid:
                pairs.append((i, i + grid, "v"))
    for k, (a, b, axis) in enumerate(pairs):
        fit_rel = f"{name}/fit_{k:03d}.json"
        fit_f = DataFile(fit_rel, 256)
        fit_files.append(fit_f)
        wf.new_job(
            f"mDiffFit_{k:03d}",
            "mDiffFit",
            runtime=0.01,
            inputs=[proj_files[a], proj_files[b]],
            outputs=[fit_f],
            action=tool(
                "mDiffFit",
                root / proj_files[a].name,
                root / proj_files[b].name,
                axis,
                pad,
                root / fit_rel,
            ),
        )
        wf.add_dependency(f"mProjectPP_{a:03d}", f"mDiffFit_{k:03d}")
        wf.add_dependency(f"mProjectPP_{b:03d}", f"mDiffFit_{k:03d}")

    table_rel = f"{name}/fits.json"
    table_f = DataFile(table_rel, 4096)
    wf.new_job(
        "mConcatFit",
        "mConcatFit",
        runtime=0.01,
        inputs=list(fit_files),
        outputs=[table_f],
        action=tool(
            "mConcatFit", *(root / f.name for f in fit_files), root / table_rel
        ),
    )
    for k in range(len(pairs)):
        wf.add_dependency(f"mDiffFit_{k:03d}", "mConcatFit")

    corrections_rel = f"{name}/corrections.json"
    corrections_f = DataFile(corrections_rel, 2048)
    wf.new_job(
        "mBgModel",
        "mBgModel",
        runtime=0.01,
        inputs=[table_f],
        outputs=[corrections_f],
        action=tool("mBgModel", root / table_rel, root / corrections_rel),
    )
    wf.add_dependency("mConcatFit", "mBgModel")

    corrected_files = []
    for i in range(grid * grid):
        c_rel = f"{name}/c_{i:03d}.npy"
        c_f = DataFile(c_rel, proj_files[i].size)
        corrected_files.append(c_f)
        wf.new_job(
            f"mBackground_{i:03d}",
            "mBackground",
            runtime=0.01,
            inputs=[proj_files[i], corrections_f],
            outputs=[c_f],
            action=tool(
                "mBackground",
                root / proj_files[i].name,
                root / corrections_rel,
                f"p_{i:03d}",
                root / c_rel,
            ),
        )
        wf.add_dependency(f"mProjectPP_{i:03d}", f"mBackground_{i:03d}")
        wf.add_dependency("mBgModel", f"mBackground_{i:03d}")

    mosaic_rel = f"{name}/mosaic.npy"
    mosaic_f = DataFile(mosaic_rel, sky.nbytes)
    wf.new_job(
        "mAdd",
        "mAdd",
        runtime=0.02,
        inputs=list(corrected_files),
        outputs=[mosaic_f],
        action=tool(
            "mAdd",
            *(root / f.name for f in corrected_files),
            grid,
            pad,
            root / mosaic_rel,
        ),
    )
    for i in range(grid * grid):
        wf.add_dependency(f"mBackground_{i:03d}", "mAdd")

    small_rel = f"{name}/mosaic_small.npy"
    small_f = DataFile(small_rel, sky.nbytes // 4)
    wf.new_job(
        "mShrink",
        "mShrink",
        runtime=0.01,
        inputs=[mosaic_f],
        outputs=[small_f],
        action=tool("mShrink", root / mosaic_rel, 2, root / small_rel),
    )
    wf.add_dependency("mAdd", "mShrink")

    pgm_rel = f"{name}/mosaic.pgm"
    pgm_f = DataFile(pgm_rel, sky.size // 4 + 32, "output")
    wf.new_job(
        "mJpeg",
        "mJpeg",
        runtime=0.01,
        inputs=[small_f],
        outputs=[pgm_f],
        action=tool("mJpeg", root / small_rel, root / pgm_rel),
    )
    wf.add_dependency("mShrink", "mJpeg")
    return wf
