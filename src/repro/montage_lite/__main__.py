"""CLI entry point: ``python -m repro.montage_lite <tool> <args>...``.

This is the "binary" the SubprocessExecutor invokes — each call is one
Montage-lite job, exactly as the real worker daemon would exec mProjectPP
and friends from the workflow folder's ``bin/`` directory.
"""

from __future__ import annotations

import sys

from repro.montage_lite.tools import TOOLS


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in TOOLS:
        known = ", ".join(sorted(TOOLS))
        print(f"usage: python -m repro.montage_lite <tool> ...\ntools: {known}",
              file=sys.stderr)
        return 2
    TOOLS[argv[0]](argv[1:])
    return 0


if __name__ == "__main__":
    sys.exit(main())
