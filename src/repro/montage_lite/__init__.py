"""Montage-lite: a working miniature of the Montage toolchain.

The paper runs the real Montage binaries; this package provides
functional stand-ins that operate on ``.npy`` image tiles so the *real*
DEWE v2 daemons can execute a genuine image-mosaic computation end to
end — subprocesses, shared-directory data flow, verifiable output —
rather than sleeping for synthetic durations.

The science (deliberately simplified but real): each raw tile is the
true sky plus a per-tile constant background offset plus noise.
``mDiffFit`` measures pairwise offsets on tile overlaps, ``mBgModel``
solves the offsets by least squares (anchored to tile 0), ``mBackground``
subtracts them, and ``mAdd`` stitches the corrected tiles.  Tests verify
the corrected mosaic is a much better reconstruction of the true sky
than stitching the raw tiles — i.e. the pipeline *computes something*,
and computes it identically under the concurrent engine and the
sequential reference executor (paper §V.A's MD5 check).
"""

from repro.montage_lite.builder import build_montage_lite_workflow, make_sky
from repro.montage_lite.tools import TOOLS

__all__ = ["TOOLS", "build_montage_lite_workflow", "make_sky"]
