"""The Montage-lite tool implementations.

Every tool is a pure function of its input files (deterministic bytes in
-> deterministic bytes out), so repeated/at-least-once execution is safe
and output MD5s are comparable across engines — the property the paper's
§V.A verification relies on.

Images are 2-D float64 ``.npy`` arrays; tables are JSON with sorted keys
and fixed float formatting (bit-stable serialization).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "TOOLS",
    "m_project",
    "m_diff_fit",
    "m_concat_fit",
    "m_bg_model",
    "m_background",
    "m_add",
    "m_shrink",
    "m_jpeg",
]


def _load(path: str) -> np.ndarray:
    return np.load(path)


def _save(path: str, image: np.ndarray) -> None:
    np.save(Path(path).with_suffix(""), image.astype(np.float64))


def _write_json(path: str, data) -> None:
    Path(path).write_text(json.dumps(data, sort_keys=True, separators=(",", ":")))


def m_project(raw_path: str, out_path: str) -> None:
    """Re-project a raw tile (identity geometry, float64 normalisation)."""
    _save(out_path, _load(raw_path).astype(np.float64))


def m_diff_fit(a_path: str, b_path: str, axis: str, pad: int, fit_path: str) -> None:
    """Fit the background difference between two overlapping tiles.

    Adjacent tiles share a ``2 * pad``-pixel strip of the *same* sky
    pixels (like real Montage footprints), so the mean difference over
    the strip is an unbiased estimate of ``offset_a - offset_b``.
    ``axis``: "h" when b is the right neighbour of a, "v" when b is
    below a.
    """
    a, b = _load(a_path), _load(b_path)
    pad = int(pad)
    width = 2 * pad
    if axis == "h":
        diff = float(np.mean(a[:, -width:] - b[:, :width]))
    elif axis == "v":
        diff = float(np.mean(a[-width:, :] - b[:width, :]))
    else:
        raise ValueError(f"axis must be 'h' or 'v', got {axis!r}")
    _write_json(fit_path, {"a": Path(a_path).stem, "b": Path(b_path).stem,
                           "axis": axis, "diff": round(diff, 12)})


def m_concat_fit(fit_paths: Sequence[str], table_path: str) -> None:
    """Concatenate all pairwise fits into one table (sorted, stable)."""
    fits = [json.loads(Path(p).read_text()) for p in fit_paths]
    fits.sort(key=lambda f: (f["a"], f["b"]))
    _write_json(table_path, {"fits": fits})


def m_bg_model(table_path: str, corrections_path: str) -> None:
    """Solve per-tile background offsets by least squares.

    Minimises sum over fits of ``(x_a - x_b - diff)^2`` with tile index 0
    anchored at zero (the absolute sky level is unobservable).  Tile
    identity is encoded in the projected-file stem as ``p_<index>``.
    """
    table = json.loads(Path(table_path).read_text())
    fits = table["fits"]
    tiles = sorted({f["a"] for f in fits} | {f["b"] for f in fits})
    index = {name: i for i, name in enumerate(tiles)}
    rows: List[np.ndarray] = []
    rhs: List[float] = []
    for f in fits:
        row = np.zeros(len(tiles))
        row[index[f["a"]]] = 1.0
        row[index[f["b"]]] = -1.0
        rows.append(row)
        rhs.append(f["diff"])
    # Anchor the first tile.
    anchor = np.zeros(len(tiles))
    anchor[0] = 1.0
    rows.append(anchor)
    rhs.append(0.0)
    solution, *_ = np.linalg.lstsq(np.array(rows), np.array(rhs), rcond=None)
    corrections: Dict[str, float] = {
        name: round(float(solution[i]), 9) for name, i in index.items()
    }
    _write_json(corrections_path, {"corrections": corrections})


def m_background(
    proj_path: str, corrections_path: str, tile_name: str, out_path: str
) -> None:
    """Subtract the solved background offset from one projected tile."""
    corrections = json.loads(Path(corrections_path).read_text())["corrections"]
    offset = corrections.get(tile_name, 0.0)
    _save(out_path, _load(proj_path) - offset)


def m_add(tile_paths: Sequence[str], grid: int, pad: int, mosaic_path: str) -> None:
    """Stitch ``grid x grid`` corrected tiles (row-major) into the mosaic.

    Interior tile edges carry a ``pad``-pixel overlap apron that is
    cropped before stitching (outer edges have no apron).
    """
    tiles = [_load(p) for p in tile_paths]
    grid, pad = int(grid), int(pad)
    if len(tiles) != grid * grid:
        raise ValueError(f"expected {grid * grid} tiles, got {len(tiles)}")
    cropped = []
    for r in range(grid):
        for c in range(grid):
            t = tiles[r * grid + c]
            r0 = pad if r > 0 else 0
            r1 = t.shape[0] - (pad if r < grid - 1 else 0)
            c0 = pad if c > 0 else 0
            c1 = t.shape[1] - (pad if c < grid - 1 else 0)
            cropped.append(t[r0:r1, c0:c1])
    rows = [np.hstack(cropped[r * grid : (r + 1) * grid]) for r in range(grid)]
    _save(mosaic_path, np.vstack(rows))


def m_shrink(mosaic_path: str, factor: int, out_path: str) -> None:
    """Block-mean downsample by an integer factor."""
    image = _load(mosaic_path)
    factor = int(factor)
    h = (image.shape[0] // factor) * factor
    w = (image.shape[1] // factor) * factor
    cropped = image[:h, :w]
    small = cropped.reshape(h // factor, factor, w // factor, factor).mean(axis=(1, 3))
    _save(out_path, small)


def m_jpeg(small_path: str, out_path: str) -> None:
    """Render the shrunk mosaic as a binary PGM (P5) grayscale image."""
    image = _load(small_path)
    lo, hi = float(image.min()), float(image.max())
    span = hi - lo if hi > lo else 1.0
    pixels = np.clip((image - lo) / span * 255.0, 0, 255).astype(np.uint8)
    header = f"P5\n{pixels.shape[1]} {pixels.shape[0]}\n255\n".encode()
    Path(out_path).write_bytes(header + pixels.tobytes())


def _main_project(args: List[str]) -> None:
    m_project(args[0], args[1])


def _main_diff_fit(args: List[str]) -> None:
    m_diff_fit(args[0], args[1], args[2], int(args[3]), args[4])


def _main_concat_fit(args: List[str]) -> None:
    m_concat_fit(args[:-1], args[-1])


def _main_bg_model(args: List[str]) -> None:
    m_bg_model(args[0], args[1])


def _main_background(args: List[str]) -> None:
    m_background(args[0], args[1], args[2], args[3])


def _main_add(args: List[str]) -> None:
    # argv: <tile.npy>... <grid> <pad> <mosaic.npy>
    m_add(args[:-3], int(args[-3]), int(args[-2]), args[-1])


def _main_shrink(args: List[str]) -> None:
    m_shrink(args[0], int(args[1]), args[2])


def _main_jpeg(args: List[str]) -> None:
    m_jpeg(args[0], args[1])


#: CLI dispatch table for ``python -m repro.montage_lite <tool> ...``.
TOOLS = {
    "mProjectPP": _main_project,
    "mDiffFit": _main_diff_fit,
    "mConcatFit": _main_concat_fit,
    "mBgModel": _main_bg_model,
    "mBackground": _main_background,
    "mAdd": _main_add,
    "mShrink": _main_shrink,
    "mJpeg": _main_jpeg,
}
