"""The ``repro-service`` soak harness.

Runs a multi-hour *simulated* trace of open-loop multi-tenant arrivals
through the DES pull engine with the full
:class:`~repro.liveness.ServiceAdmissionPolicy` ladder in front, and
reports what a service operator would ask for: per-tenant, per-class
p50/p99 slowdown, shed counts by ladder stage, peak backlog, brownout
history and cluster cost.  Everything is a pure function of the
:class:`SoakConfig` (including its seed), so two runs of the same config
render byte-identical reports — the CI determinism gate diffs them.

Capacity is *probed*, not assumed: a fault-free batch run of the member
workflow measures the cluster's sustainable workflow rate, and a
single-member run on the idle cluster measures the ideal makespan that
slowdowns are normalised against.  Offered load is then expressed as a
multiple of that probed capacity (``load_factor``), so "soak at 2x
capacity" means the same thing on any cluster shape.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud import ClusterSpec
from repro.engines.base import EngineResult, RunConfig
from repro.engines.pull import PullEngine
from repro.liveness import (
    AdmissionControl,
    BrownoutController,
    ServiceAdmissionPolicy,
)
from repro.monitor.metrics import percentile
from repro.service.arrivals import OnOffArrivals, PoissonArrivals
from repro.service.workload import ServiceWorkload, TenantSpec, build_workload
from repro.workflow import Ensemble

__all__ = ["SoakConfig", "SoakSetup", "SoakReport", "build_soak", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """One seeded soak experiment; every field feeds the determinism
    contract (no wall-clock anywhere downstream)."""

    seed: int = 0
    #: Simulated arrival window in seconds (the run itself continues
    #: until the last admitted workflow settles).
    horizon: float = 7200.0
    # -- cluster / member workflow ----------------------------------------
    instance_type: str = "c3.8xlarge"
    n_nodes: int = 2
    #: Montage degree of each ensemble member.
    degree: float = 0.3
    timeout: float = 60.0
    check_interval: float = 1.0
    # -- offered load (fractions of probed capacity) -----------------------
    #: Total offered load as a multiple of probed capacity; the class
    #: fractions below must sum to it.
    load_factor: float = 2.0
    gold_fraction: float = 0.3
    silver_fraction: float = 0.5
    #: best_effort offers the remainder: load_factor - gold - silver.
    tenants_per_class: int = 2
    #: Members in the capacity-probe batch.  Must be large enough to
    #: saturate the cluster (well past its slot count / member width),
    #: else the probe reports parallel absorption, not capacity, and the
    #: "2x capacity" soak never actually overloads anything.
    probe_members: int = 64
    # -- best-effort burst shape -------------------------------------------
    burst_on: float = 60.0
    burst_off: float = 60.0
    # -- policy ladder ------------------------------------------------------
    admission_max_pending: int = 64
    admission_retry_after: float = 5.0
    #: Brownout trips *below* the admission gate (overshoot 1.0): the
    #: gate is the backstop, so the graceful ladder must engage first.
    brownout_thresholds: Tuple[float, ...] = (0.5, 1.0, 1.5)
    brownout_sustain: float = 10.0
    brownout_release: float = 0.75
    brownout_stretch: float = 2.0
    max_share: float = 0.5
    #: Fair-share is the *tail* guard: the floor sits well above the
    #: admission gate so quota -> brownout -> gate engage first and
    #: fair-share only binds if a tenant still dominates a deep backlog.
    fair_share_floor: int = 256
    #: Quota headroom per class, as a multiple of the tenant's own mean
    #: offered rate.  Gold gets generous headroom (its sheds must be 0);
    #: best_effort's tight budget makes the quota stage do real work.
    quota_headroom: Tuple[float, float, float] = (3.0, 2.0, 1.25)
    quota_burst: Tuple[float, float, float] = (20.0, 10.0, 5.0)
    #: Fair-share weights per class.  Gold's weight is provisioned so
    #: its share bound saturates at 1.0 (max_share 0.5 x weight 3 x
    #: 6 tenants / weight sum 9): a share can never exceed 1, so gold is
    #: structurally exempt from fair-share shedding even when it is the
    #: only class with outstanding work, and its only bound is the quota.
    weights: Tuple[float, float, float] = (3.0, 1.0, 0.5)

    @classmethod
    def quick(cls, seed: int = 0) -> "SoakConfig":
        """CI-sized soak: a few simulated minutes, same invariants."""
        return cls(
            seed=seed,
            horizon=300.0,
            burst_on=30.0,
            burst_off=30.0,
            brownout_sustain=5.0,
        )

    def best_effort_fraction(self) -> float:
        frac = self.load_factor - self.gold_fraction - self.silver_fraction
        if frac <= 0:
            raise ValueError(
                "load_factor must exceed gold_fraction + silver_fraction"
            )
        return frac

    def spec(self) -> ClusterSpec:
        fs = "local" if self.n_nodes == 1 else "moosefs"
        return ClusterSpec(self.instance_type, self.n_nodes, filesystem=fs)

    def run_config(self) -> RunConfig:
        return RunConfig(
            default_timeout=self.timeout,
            timeout_check_interval=self.check_interval,
            record_jobs=False,
        )

    def template(self):
        from repro.generators import montage_workflow

        return montage_workflow(degree=self.degree)


def _probe(cfg: SoakConfig) -> Tuple[float, float]:
    """Measure ``(capacity_wf_per_s, ideal_makespan_s)`` with fault-free
    closed-loop runs on the soak's own cluster shape."""
    template = cfg.template()
    single = PullEngine(cfg.spec(), cfg.run_config()).run(
        Ensemble.replicated(template, 1)
    )
    batch = PullEngine(cfg.spec(), cfg.run_config()).run(
        Ensemble.replicated(template, cfg.probe_members)
    )
    capacity = cfg.probe_members / batch.makespan
    return capacity, single.makespan


@dataclass
class SoakSetup:
    """Everything :func:`run_soak` assembles before pressing go; exposed
    so tests and the chaos harness can rewire pieces."""

    config: SoakConfig
    workload: ServiceWorkload
    policy: ServiceAdmissionPolicy
    engine: PullEngine
    capacity: float
    ideal_makespan: float


def build_soak(cfg: SoakConfig) -> SoakSetup:
    """Probe capacity, lay out the tenants, build the wired engine."""
    capacity, ideal = _probe(cfg)
    fractions = {
        "gold": cfg.gold_fraction,
        "silver": cfg.silver_fraction,
        "best_effort": cfg.best_effort_fraction(),
    }
    headroom = dict(zip(fractions, cfg.quota_headroom))
    bursts = dict(zip(fractions, cfg.quota_burst))
    weights = dict(zip(fractions, cfg.weights))
    tenants: List[TenantSpec] = []
    for sla, fraction in fractions.items():
        rate = fraction * capacity / cfg.tenants_per_class
        for i in range(cfg.tenants_per_class):
            if sla == "best_effort":
                # Bursty: the mean rate is preserved, but arrivals pack
                # into ON windows at on/(on+off) duty cycle.
                duty = cfg.burst_on / (cfg.burst_on + cfg.burst_off)
                arrivals = OnOffArrivals(
                    on_rate=rate / duty,
                    on_duration=cfg.burst_on,
                    off_duration=cfg.burst_off,
                    # Stagger tenants so their bursts do not all align.
                    phase=i * cfg.burst_on,
                )
            else:
                arrivals = PoissonArrivals(rate=rate)
            tenants.append(
                TenantSpec(
                    tenant=f"{sla}-{i}",
                    sla=sla,
                    arrivals=arrivals,
                    quota_rate=rate * headroom[sla],
                    quota_burst=bursts[sla],
                    weight=weights[sla],
                )
            )
    workload = build_workload(
        tenants, cfg.template(), cfg.horizon, cfg.seed, name="service-soak"
    )
    policy = ServiceAdmissionPolicy(
        admission=AdmissionControl(
            max_pending_jobs=cfg.admission_max_pending,
            retry_after=cfg.admission_retry_after,
        ),
        brownout=BrownoutController(
            thresholds=cfg.brownout_thresholds,
            sustain=cfg.brownout_sustain,
            release=cfg.brownout_release,
            stretch=cfg.brownout_stretch,
        ),
        max_share=cfg.max_share,
        fair_share_floor=cfg.fair_share_floor,
    )
    workload.wire(policy)
    engine = PullEngine(cfg.spec(), cfg.run_config(), service=policy)
    return SoakSetup(
        config=cfg,
        workload=workload,
        policy=policy,
        engine=engine,
        capacity=capacity,
        ideal_makespan=ideal,
    )


@dataclass
class SoakReport:
    """What the soak measured; renders and serializes deterministically."""

    seed: int
    horizon: float
    load_factor: float
    capacity_wf_per_s: float
    ideal_makespan_s: float
    makespan_s: float
    cost_usd: float
    peak_backlog: int
    brownout_transitions: List[Tuple[float, int]]
    #: tenant -> row of counters and slowdown percentiles.
    tenants: Dict[str, Dict]
    #: sla class -> aggregated row.
    classes: Dict[str, Dict]
    liveness: Dict[str, int]
    #: Invariant violations ("" = none): gold sheds, unbounded backlog...
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def sustained_rate(self) -> float:
        """Admitted-and-completed workflows per simulated second — the
        service's saturation throughput under this offered load."""
        admitted = sum(row["admitted"] for row in self.classes.values())
        return admitted / self.makespan_s if self.makespan_s > 0 else 0.0

    def shed_fractions(self) -> Dict[str, float]:
        return {
            sla: (row["shed"] / row["submitted"]) if row["submitted"] else 0.0
            for sla, row in self.classes.items()
        }

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "horizon_s": self.horizon,
            "load_factor": self.load_factor,
            "capacity_wf_per_s": self.capacity_wf_per_s,
            "ideal_makespan_s": self.ideal_makespan_s,
            "makespan_s": self.makespan_s,
            "sustained_wf_per_s": self.sustained_rate(),
            "cost_usd": self.cost_usd,
            "peak_backlog": self.peak_backlog,
            "brownout_transitions": [
                [t, level] for t, level in self.brownout_transitions
            ],
            "tenants": self.tenants,
            "classes": self.classes,
            "shed_fractions": self.shed_fractions(),
            "liveness": self.liveness,
            "problems": self.problems,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        lines = [
            f"service soak seed={self.seed}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  offered {self.load_factor:g}x capacity "
            f"({self.capacity_wf_per_s:.4f} wf/s) over {self.horizon:g} s; "
            f"sustained {self.sustained_rate():.4f} wf/s",
            f"  makespan {self.makespan_s:.1f} s, cost ${self.cost_usd:.2f}, "
            f"peak backlog {self.peak_backlog}, "
            f"{len(self.brownout_transitions)} brownout transition(s)",
            "  tenant          class        sub   adm  shed  "
            "p50-slow  p99-slow",
        ]
        for tenant in sorted(self.tenants):
            row = self.tenants[tenant]
            lines.append(
                f"  {tenant:<15} {row['sla']:<11} "
                f"{row['submitted']:>5} {row['admitted']:>5} "
                f"{row['shed']:>5}  {row['p50_slowdown']:>8.2f}  "
                f"{row['p99_slowdown']:>8.2f}"
            )
        lines.append(
            "  class        sub   adm  shed  shed%   p50-slow  p99-slow"
        )
        fractions = self.shed_fractions()
        for sla in sorted(self.classes):
            row = self.classes[sla]
            lines.append(
                f"  {sla:<11} {row['submitted']:>5} {row['admitted']:>5} "
                f"{row['shed']:>5}  {100 * fractions[sla]:>5.1f}  "
                f"{row['p50_slowdown']:>9.2f}  {row['p99_slowdown']:>9.2f}"
            )
        if any(v for v in self.liveness.values()):
            lines.append(
                "  liveness: "
                + ", ".join(
                    f"{k} {v}" for k, v in sorted(self.liveness.items()) if v
                )
            )
        for problem in self.problems:
            lines.append(f"  INVARIANT VIOLATED: {problem}")
        return "\n".join(lines)


def _check_soak(
    cfg: SoakConfig, report: SoakReport, result: EngineResult
) -> List[str]:
    """The soak's acceptance invariants, the graceful-degradation story
    in executable form."""
    problems: List[str] = []
    gold = report.classes.get("gold", {})
    if gold.get("shed", 0):
        problems.append(f"gold sheds must be 0, got {gold['shed']}")
    if cfg.load_factor > 1.2:
        best = report.classes.get("best_effort", {})
        if not best.get("shed", 0):
            problems.append(
                "overloaded soak shed no best_effort work "
                "(the brownout ladder never engaged)"
            )
    # Bounded backlog: the gate caps non-gold admissions, so the
    # dispatch queue may overshoot only by gold's (quota-bounded) burst.
    bound = 4 * cfg.admission_max_pending
    if report.peak_backlog > bound:
        problems.append(
            f"peak backlog {report.peak_backlog} exceeds {bound} "
            f"(4x the admission gate) — queue growth is unbounded"
        )
    # Settlement: every admitted member completed (nothing stranded).
    for name, counts in sorted(result.job_counts.items()):
        stranded = sum(counts.values()) - counts.get("completed", 0)
        if stranded:
            problems.append(f"{name}: {stranded} job(s) not completed")
    return problems


def run_soak(cfg: SoakConfig) -> SoakReport:
    """Probe, build, run and certify one seeded soak."""
    setup = build_soak(cfg)
    result = setup.engine.run(setup.workload.ensemble)
    policy = setup.policy
    workload = setup.workload

    submitted: Dict[str, int] = {}
    for tenant in workload.per_tenant_counts:
        submitted[tenant] = workload.per_tenant_counts[tenant]
    sheds_by_tenant: Dict[str, Dict[str, int]] = {}
    for record in policy.sheds:
        per = sheds_by_tenant.setdefault(record.tenant, {})
        per[record.reason] = per.get(record.reason, 0) + 1
    slowdowns: Dict[str, List[float]] = {}
    for name, (start, end) in result.workflow_spans.items():
        if math.isnan(end):
            continue
        tenant, _sla = workload.tags[name]
        slowdowns.setdefault(tenant, []).append(
            (end - start) / setup.ideal_makespan
        )

    tenants: Dict[str, Dict] = {}
    classes: Dict[str, Dict] = {}
    account_stats = policy.tenant_stats()
    sla_of = {spec.tenant: spec.sla for spec in workload.tenants}
    for tenant in sorted(submitted):
        sla = sla_of[tenant]
        stats = account_stats.get(tenant, {})
        values = sorted(slowdowns.get(tenant, []))
        row = {
            "sla": sla,
            "submitted": submitted[tenant],
            "admitted": stats.get("admitted", 0),
            "shed": stats.get("shed", 0),
            "shed_by_reason": dict(
                sorted(sheds_by_tenant.get(tenant, {}).items())
            ),
            "completed": len(values),
            "p50_slowdown": percentile(values, 0.50),
            "p99_slowdown": percentile(values, 0.99),
        }
        tenants[tenant] = row
        agg = classes.setdefault(
            sla,
            {"submitted": 0, "admitted": 0, "shed": 0, "completed": 0,
             "_slowdowns": []},
        )
        agg["submitted"] += row["submitted"]
        agg["admitted"] += row["admitted"]
        agg["shed"] += row["shed"]
        agg["completed"] += row["completed"]
        agg["_slowdowns"].extend(values)
    for sla, agg in classes.items():
        values = agg.pop("_slowdowns")
        agg["p50_slowdown"] = percentile(values, 0.50)
        agg["p99_slowdown"] = percentile(values, 0.99)

    report = SoakReport(
        seed=cfg.seed,
        horizon=cfg.horizon,
        load_factor=cfg.load_factor,
        capacity_wf_per_s=setup.capacity,
        ideal_makespan_s=setup.ideal_makespan,
        makespan_s=result.makespan,
        cost_usd=result.cost(),
        peak_backlog=policy.peak_backlog,
        brownout_transitions=list(policy.brownout.transitions),
        tenants=tenants,
        classes=classes,
        liveness=dict(result.liveness_stats),
    )
    report.problems = _check_soak(cfg, report, result)
    return report
