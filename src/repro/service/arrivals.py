"""Seeded open-loop arrival processes.

Closed-loop experiments (the paper's Fig 8) submit the next workflow
relative to the system's own progress; an *open-loop* source submits on
its own schedule regardless of backlog, which is what makes overload a
sustained regime instead of a transient.  Both processes here are pure
functions of ``(seed, horizon)`` — an explicit ``random.Random(seed)``,
never the global RNG (code lint CL002) — so a tenant's arrival trace is
byte-reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = ["PoissonArrivals", "OnOffArrivals"]


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate`` per second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def times(self, horizon: float, seed: int) -> List[float]:
        """Arrival instants in ``[0, horizon)``, strictly increasing."""
        rng = random.Random(seed)
        out: List[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            if t >= horizon:
                return out
            out.append(t)


@dataclass(frozen=True)
class OnOffArrivals:
    """Bursty arrivals: Poisson at ``on_rate`` during ON windows, silent
    during OFF windows (a classic ON-OFF burst model).

    The window pattern is periodic and deterministic (``phase`` shifts
    its start) — only the arrival instants inside ON windows are
    sampled — so the *shape* of a burst scenario is a scenario property
    while its micro-timing still varies with the seed.
    """

    on_rate: float
    on_duration: float
    off_duration: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.on_rate <= 0:
            raise ValueError("on_rate must be positive")
        if self.on_duration <= 0:
            raise ValueError("on_duration must be positive")
        if self.off_duration < 0:
            raise ValueError("off_duration must be >= 0")
        if self.phase < 0:
            raise ValueError("phase must be >= 0")

    def times(self, horizon: float, seed: int) -> List[float]:
        """Arrival instants in ``[0, horizon)``, strictly increasing."""
        rng = random.Random(seed)
        period = self.on_duration + self.off_duration
        out: List[float] = []
        window_start = self.phase
        while window_start < horizon:
            t = window_start
            end = min(window_start + self.on_duration, horizon)
            while True:
                t += rng.expovariate(self.on_rate)
                if t >= end:
                    break
                out.append(t)
            window_start += period
        return out
