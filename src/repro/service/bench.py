"""Service-suite benchmark payload (``BENCH_service.json``).

The kernel suite (:mod:`repro.parallel.bench`) gates *wall-clock*
throughput; this suite gates *service behaviour*: the sustained arrival
rate the soak absorbs at saturation and the shed fraction per SLA class.
Those numbers come out of the deterministic DES, so they carry no
machine noise — the ``repro-bench --compare`` gate still allows the
usual rate tolerance, but the interesting guard is the ``exact`` block:
admitted/shed counters that must match the committed snapshot bit for
bit.  A drift there means the admission ladder's behaviour changed and
the snapshot must be regenerated deliberately.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Dict

from repro.service.soak import SoakConfig, run_soak

__all__ = ["BENCH_SERVICE_FILENAME", "run_service_benchmarks"]

BENCH_SERVICE_FILENAME = "BENCH_service.json"
SCHEMA_VERSION = 1


def run_service_benchmarks(quick: bool = False, seed: int = 0) -> Dict:
    """Run the soak; return the ``BENCH_service.json`` payload (same
    envelope as the kernel suite so ``compare_benchmarks`` applies)."""
    cfg = SoakConfig.quick(seed=seed) if quick else SoakConfig(seed=seed)
    t0 = time.perf_counter()
    report = run_soak(cfg)
    wall = time.perf_counter() - t0
    classes = report.classes
    totals = {
        key: sum(row[key] for row in classes.values())
        for key in ("submitted", "admitted", "shed", "completed")
    }
    sample = {
        "rate": report.sustained_rate(),
        "unit": "wf/s (simulated)",
        "wall_s": wall,
        "capacity_wf_per_s": report.capacity_wf_per_s,
        "shed_fraction": report.shed_fractions(),
        "p99_slowdown": {
            sla: row["p99_slowdown"] for sla, row in sorted(classes.items())
        },
        "problems": list(report.problems),
        # Deterministic counters: exact-matched by the compare gate.
        "exact": {
            "submitted": totals["submitted"],
            "admitted": totals["admitted"],
            "shed": totals["shed"],
            "completed": totals["completed"],
            "shed_gold": classes.get("gold", {}).get("shed", 0),
            "shed_silver": classes.get("silver", {}).get("shed", 0),
            "shed_best_effort": classes.get("best_effort", {}).get("shed", 0),
            "peak_backlog": report.peak_backlog,
            "brownout_transitions": len(report.brownout_transitions),
        },
    }
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro-bench --suite service",
        "suite": "service",
        "quick": quick,
        "seed": seed,
        "machine": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
        },
        "benchmarks": {"service_soak": sample},
    }
