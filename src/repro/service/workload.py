"""Multi-tenant workload builder for the service soak harness.

Each simulated tenant owns an SLA class, an open-loop arrival process
and (optionally) a quota; :func:`build_workload` merges their arrival
traces into one :class:`~repro.workflow.ensemble.Ensemble` whose member
names encode the owning tenant, plus the tag registry the
:class:`~repro.liveness.ServiceAdmissionPolicy` needs.  Members share
the template's job skeletons (``relabel``), so a multi-hour trace with
hundreds of members stays cheap to build.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.liveness.policy import ServiceAdmissionPolicy, TokenBucket
from repro.service.arrivals import OnOffArrivals, PoissonArrivals
from repro.workflow.dag import Workflow
from repro.workflow.ensemble import Ensemble, SubmissionPlan

__all__ = ["TenantSpec", "ServiceWorkload", "build_workload"]

ArrivalProcess = "PoissonArrivals | OnOffArrivals"


@dataclass(frozen=True)
class TenantSpec:
    """One simulated tenant of the service.

    ``quota_rate``/``quota_burst`` configure the tenant's token bucket
    (``None`` rate means unmetered).  ``weight`` scales the tenant's
    fair-share bound.
    """

    tenant: str
    sla: str
    arrivals: object  # PoissonArrivals | OnOffArrivals
    quota_rate: Optional[float] = None
    quota_burst: float = 10.0
    weight: float = 1.0

    def quota(self) -> Optional[TokenBucket]:
        if self.quota_rate is None:
            return None
        return TokenBucket(rate=self.quota_rate, burst=self.quota_burst)


def _tenant_seed(seed: int, tenant: str) -> int:
    """Salt the run seed per tenant so traces are independent but each
    is a pure function of ``(seed, tenant)``."""
    return (seed * 1_000_003 + zlib.crc32(tenant.encode())) & 0x7FFFFFFF


@dataclass
class ServiceWorkload:
    """The merged ensemble plus everything the policy needs to run it."""

    ensemble: Ensemble
    #: member workflow name -> (tenant, sla), in submission order.
    tags: Dict[str, Tuple[str, str]]
    tenants: Tuple[TenantSpec, ...]

    def wire(self, policy: ServiceAdmissionPolicy) -> ServiceAdmissionPolicy:
        """Register every tenant (with its quota and weight) and every
        member workflow on ``policy``; returns it for chaining."""
        for spec in self.tenants:
            policy.add_tenant(spec.tenant, quota=spec.quota(), weight=spec.weight)
        for name, (tenant, sla) in self.tags.items():
            policy.register(name, tenant, sla)
        return policy

    @property
    def per_tenant_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for tenant, _sla in self.tags.values():
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts


def build_workload(
    tenants: Sequence[TenantSpec],
    template: Workflow,
    horizon: float,
    seed: int,
    name: str = "service",
) -> ServiceWorkload:
    """Merge per-tenant arrival traces into one submission-ordered ensemble.

    Ties in arrival time break on tenant id then per-tenant index, so the
    merged order — and therefore everything downstream — is a pure
    function of ``(tenants, horizon, seed)``.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    ids = [spec.tenant for spec in tenants]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate tenant ids: {ids}")
    arrivals: list = []  # (time, tenant, k)
    for spec in tenants:
        trace = spec.arrivals.times(horizon, _tenant_seed(seed, spec.tenant))
        arrivals.extend((t, spec.tenant, k) for k, t in enumerate(trace))
    if not arrivals:
        raise ValueError(f"no arrivals within horizon={horizon}")
    arrivals.sort()
    by_id = {spec.tenant: spec for spec in tenants}
    workflows = []
    tags: Dict[str, Tuple[str, str]] = {}
    for t, tenant, k in arrivals:
        member = template.relabel(f"{tenant}.{k:04d}")
        workflows.append(member)
        tags[member.name] = (tenant, by_id[tenant].sla)
    plan = SubmissionPlan(times=tuple(t for t, _tenant, _k in arrivals))
    return ServiceWorkload(
        ensemble=Ensemble(workflows, plan, name=name),
        tags=tags,
        tenants=tuple(tenants),
    )
