"""The multi-tenant open-loop service front end (ROADMAP item 1).

The paper's Fig 8 experiments vary the submission interval of ensemble
members, but always in a closed, single-owner loop.  A service that
serves many parties must instead survive *open-loop* arrivals — offered
load that can exceed capacity indefinitely — which turns admission from
a binary gate into a graceful-degradation ladder
(:class:`~repro.liveness.ServiceAdmissionPolicy`; docs/FAULTS.md,
"Overload and graceful degradation").

This package holds the workload side of that story:

* :mod:`~repro.service.arrivals` — seeded open-loop arrival processes
  (Poisson and burst/ON-OFF), byte-deterministic per seed;
* :mod:`~repro.service.workload` — N simulated tenants, each with an
  SLA class, quota and arrival process, merged into one
  :class:`~repro.workflow.ensemble.Ensemble` plus the policy registry;
* :mod:`~repro.service.soak` — the ``repro-service`` soak harness: a
  multi-hour simulated trace through the DES pull engine reporting
  per-tenant, per-class p50/p99 slowdown, shed counts and cost;
* :mod:`~repro.service.bench` — the ``BENCH_service.json`` regression
  payload (sustained arrival rate at saturation, shed fraction per
  class) gated by ``repro-bench``.
"""

from repro.service.arrivals import OnOffArrivals, PoissonArrivals
from repro.service.soak import (
    SoakConfig,
    SoakReport,
    SoakSetup,
    build_soak,
    run_soak,
)
from repro.service.workload import ServiceWorkload, TenantSpec, build_workload

__all__ = [
    "OnOffArrivals",
    "PoissonArrivals",
    "ServiceWorkload",
    "SoakConfig",
    "SoakReport",
    "SoakSetup",
    "TenantSpec",
    "build_soak",
    "build_workload",
    "run_soak",
]
