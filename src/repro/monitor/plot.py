"""Dependency-free SVG rendering of the reproduced figures.

matplotlib is deliberately not a dependency; these helpers emit clean
standalone SVG so the benchmark outputs can be turned into actual figure
files (time-series like Fig 4/6/9, Gantt timelines like Fig 2) anywhere
the library runs.

* :func:`svg_line_chart` — multi-series line chart with axes, ticks and
  a legend;
* :func:`svg_gantt` — per-vCPU-slot timeline coloured by task type.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.engines.base import EngineResult
from repro.monitor.timeline import slot_timeline

__all__ = ["svg_line_chart", "svg_gantt", "PALETTE"]

_PathLike = Union[str, Path]

#: Colour cycle for series/task types.
PALETTE = (
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f",
    "#956cb4", "#8c613c", "#dc7ec0", "#797979",
)


def _ticks(lo: float, hi: float, n: int = 5) -> Sequence[float]:
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n - 1)
    # Round the step to 1/2/5 x 10^k.
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 5, 10):
        step = mult * magnitude
        if step >= raw:
            break
    first = lo - (lo % step) if lo % step else lo
    ticks = []
    t = first
    while t <= hi + 1e-9 * span:
        if t >= lo - 1e-9 * span:
            ticks.append(t)
        t += step
    return ticks or [lo, hi]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:g}"


def svg_line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    path: Optional[_PathLike] = None,
    width: int = 640,
    height: int = 400,
) -> str:
    """Render ``{label: (xs, ys)}`` as an SVG line chart; returns the SVG."""
    if not series:
        raise ValueError("need at least one series")
    margin_l, margin_r, margin_t, margin_b = 64, 150, 36, 48
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    xs_all = [x for xs, _ in series.values() for x in xs]
    ys_all = [y for _, ys in series.values() for y in ys]
    if not xs_all:
        raise ValueError("series contain no points")
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(0.0, min(ys_all)), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-size="15">{html.escape(title)}</text>',
    ]
    # Axes and ticks.
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" x2="{margin_l + plot_w}" '
        f'y2="{margin_t + plot_h}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="black"/>'
    )
    for t in _ticks(x_lo, x_hi):
        x = sx(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_t + plot_h}" x2="{x:.1f}" '
            f'y2="{margin_t + plot_h + 5}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_t + plot_h + 18}" '
            f'text-anchor="middle">{_fmt(t)}</text>'
        )
    for t in _ticks(y_lo, y_hi):
        y = sy(t)
        parts.append(
            f'<line x1="{margin_l - 5}" y1="{y:.1f}" x2="{margin_l}" '
            f'y2="{y:.1f}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{margin_l - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt(t)}</text>'
        )
    if xlabel:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 10}" '
            f'text-anchor="middle">{html.escape(xlabel)}</text>'
        )
    if ylabel:
        parts.append(
            f'<text x="16" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
            f'transform="rotate(-90 16 {margin_t + plot_h / 2:.0f})">'
            f"{html.escape(ylabel)}</text>"
        )
    # Series + legend.
    for i, (label, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        points = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="{color}"/>'
            )
        ly = margin_t + 14 + i * 18
        lx = margin_l + plot_w + 10
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 24}" y="{ly}">{html.escape(label)}</text>')
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg)
    return svg


def svg_gantt(
    result: EngineResult,
    path: Optional[_PathLike] = None,
    width: int = 900,
    row_height: int = 8,
    max_slots_per_node: int = 32,
) -> str:
    """Render the per-slot timeline as SVG (the paper's Fig 2 layout).

    Rows are vCPU slots grouped by node; bars are jobs coloured by task
    type, with the I/O share of each bar rendered as a lighter leading
    segment (the 'communication time' of Fig 2).
    """
    segments = slot_timeline(result)
    lanes = sorted(
        {(seg.node, seg.slot) for seg in segments if seg.slot < max_slots_per_node}
    )
    lane_index = {lane: i for i, lane in enumerate(lanes)}
    t_end = max(seg.end for seg in segments)
    margin_l, margin_t = 70, 30
    plot_w = width - margin_l - 20
    height = margin_t + len(lanes) * row_height + 40
    type_colors: Dict[str, str] = {}

    def color_of(task_type: str) -> str:
        if task_type not in type_colors:
            type_colors[task_type] = PALETTE[len(type_colors) % len(PALETTE)]
        return type_colors[task_type]

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="10">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_l}" y="16">{html.escape(result.engine)} on '
        f"{html.escape(result.spec.name)} — {result.makespan:.0f} s</text>",
    ]
    for (node, slot), idx in lane_index.items():
        if slot == 0:
            y = margin_t + idx * row_height + row_height - 2
            parts.append(f'<text x="4" y="{y}">node {node}</text>')
    for seg in segments:
        if (seg.node, seg.slot) not in lane_index:
            continue
        y = margin_t + lane_index[(seg.node, seg.slot)] * row_height
        x0 = margin_l + seg.start / t_end * plot_w
        w = max(0.5, seg.duration / t_end * plot_w)
        color = color_of(seg.task_type)
        io_frac = seg.io_time / seg.duration if seg.duration > 0 else 0.0
        io_w = w * min(1.0, io_frac)
        if io_w > 0.3:
            parts.append(
                f'<rect x="{x0:.1f}" y="{y}" width="{io_w:.1f}" '
                f'height="{row_height - 1}" fill="{color}" opacity="0.35"/>'
            )
        parts.append(
            f'<rect x="{x0 + io_w:.1f}" y="{y}" width="{max(0.2, w - io_w):.1f}" '
            f'height="{row_height - 1}" fill="{color}"/>'
        )
    # Legend and time axis.
    lx = margin_l
    ly = height - 12
    for task_type, color in type_colors.items():
        entry_width = 14 + 7 * len(task_type) + 16
        if lx + entry_width > width - 10:
            break  # legend overflow: elide the remaining types
        parts.append(f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" fill="{color}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly}">{html.escape(task_type)}</text>')
        lx += entry_width
    parts.append(
        f'<text x="{margin_l + plot_w:.0f}" y="16" text-anchor="end">'
        f"0 .. {t_end:.0f} s</text>"
    )
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg)
    return svg
