"""Per-vCPU-slot execution timelines (paper Fig 2).

Fig 2 plots, for every vCPU slot of every node, the alternation of
compute time and data-staging (communication) time.  The DES does not pin
jobs to slots (neither does the worker daemon), so the timeline assigns
each job record to the lowest-numbered slot of its node that is free at
the job's start — the same greedy packing a Gantt renderer would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.engines.base import EngineResult, JobRecord

__all__ = ["SlotSegment", "slot_timeline", "stage_windows"]


@dataclass(frozen=True)
class SlotSegment:
    """One job execution on one vCPU slot."""

    node: int
    slot: int
    job_id: str
    task_type: str
    start: float
    end: float
    compute_time: float
    io_time: float  # staging/read/write (Fig 2's "communication time")

    @property
    def duration(self) -> float:
        return self.end - self.start


def slot_timeline(result: EngineResult) -> List[SlotSegment]:
    """Greedy slot assignment of job records; sorted by (node, slot, start)."""
    if not result.records:
        raise ValueError(
            "run has no job records (RunConfig.record_jobs was False?)"
        )
    by_node: Dict[int, List[JobRecord]] = {}
    for rec in result.records:
        by_node.setdefault(rec.node, []).append(rec)
    segments: List[SlotSegment] = []
    for node_index, recs in by_node.items():
        recs.sort(key=lambda r: (r.start, r.end))
        slot_free_at: List[float] = []
        for rec in recs:
            slot = next(
                (i for i, free in enumerate(slot_free_at) if free <= rec.start + 1e-9),
                None,
            )
            if slot is None:
                slot = len(slot_free_at)
                slot_free_at.append(0.0)
            slot_free_at[slot] = rec.end
            segments.append(
                SlotSegment(
                    node=node_index,
                    slot=slot,
                    job_id=rec.job_id,
                    task_type=rec.task_type,
                    start=rec.start,
                    end=rec.end,
                    compute_time=rec.compute_time,
                    io_time=rec.read_time + rec.write_time + rec.overhead_time,
                )
            )
    segments.sort(key=lambda s: (s.node, s.slot, s.start))
    return segments


def stage_windows(result: EngineResult, blocking_types=("mConcatFit", "mBgModel")):
    """Start/end of the blocking window (Montage stage 2) per workflow.

    Returns ``{workflow: (stage2_start, stage2_end)}`` from the job
    records; used to verify the paper's "stage 2 is ~40% of the makespan"
    observation (Fig 2) and the three-stage pattern (Fig 4).
    """
    windows: Dict[str, List[float]] = {}
    for rec in result.records:
        if rec.task_type in blocking_types:
            window = windows.setdefault(rec.workflow, [float("inf"), 0.0])
            window[0] = min(window[0], rec.start)
            window[1] = max(window[1], rec.end)
    return {name: (w[0], w[1]) for name, w in windows.items()}
