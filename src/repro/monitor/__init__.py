"""Monitoring and reporting.

The paper collects OS-level metrics every 3 seconds with mpstat/iostat
(§IV.A); here the DES resources keep exact segment logs and this package
resamples them into the same time series:

* :mod:`~repro.monitor.metrics` — per-node and cluster-wide CPU
  utilisation, disk read/write throughput and concurrent-thread series
  (Figs 4, 6, 9, 10);
* :mod:`~repro.monitor.timeline` — per-vCPU-slot Gantt data with
  compute/communication split (Fig 2);
* :mod:`~repro.monitor.report` — aggregate totals (Fig 7) and text
  rendering for the benchmark harness.
"""

from repro.monitor.export import ascii_gantt, metrics_to_csv, to_chrome_trace
from repro.monitor.metrics import (
    NodeMetrics,
    cluster_metrics,
    node_metrics,
    percentile,
    robustness_metrics,
)
from repro.monitor.report import format_series, run_summary, summary_table
from repro.monitor.timeline import SlotSegment, slot_timeline

__all__ = [
    "NodeMetrics",
    "SlotSegment",
    "ascii_gantt",
    "cluster_metrics",
    "format_series",
    "metrics_to_csv",
    "node_metrics",
    "percentile",
    "robustness_metrics",
    "run_summary",
    "slot_timeline",
    "summary_table",
    "to_chrome_trace",
]
