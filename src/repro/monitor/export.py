"""Export run results to standard tooling formats.

* :func:`to_chrome_trace` — Chrome/Perfetto trace-event JSON: one track
  per (node, vCPU slot), one complete event per executed job, so a run
  can be inspected in ``chrome://tracing`` exactly like the paper's Fig 2
  visualisation;
* :func:`metrics_to_csv` — mpstat/iostat-style series as CSV for
  spreadsheet or matplotlib post-processing;
* :func:`ascii_gantt` — a quick terminal rendering of the slot timeline.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Optional, Union

from repro.engines.base import EngineResult
from repro.monitor.metrics import NodeMetrics
from repro.monitor.timeline import slot_timeline

__all__ = ["to_chrome_trace", "metrics_to_csv", "ascii_gantt"]

_PathLike = Union[str, Path]


def to_chrome_trace(result: EngineResult, path: Optional[_PathLike] = None) -> dict:
    """Build (and optionally write) a Chrome trace-event document.

    pid = node index, tid = vCPU slot; timestamps are microseconds as the
    format requires.  Each job is a complete ("X") event carrying its
    phase breakdown as arguments.
    """
    events = []
    for seg in slot_timeline(result):
        events.append(
            {
                "name": seg.task_type,
                "cat": "job",
                "ph": "X",
                "pid": seg.node,
                "tid": seg.slot,
                "ts": seg.start * 1e6,
                "dur": seg.duration * 1e6,
                "args": {
                    "job_id": seg.job_id,
                    "compute_s": round(seg.compute_time, 4),
                    "io_s": round(seg.io_time, 4),
                },
            }
        )
    for node_index, node in enumerate(result.cluster.nodes):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node_index,
                "args": {"name": node.name},
            }
        )
    # Injected faults as instant events: node-scoped when the fault names
    # a node (kills, spot notices, degradations), global otherwise
    # (broker chaos, dead letters).
    for fault in result.fault_events:
        event = {
            "name": fault.kind,
            "cat": "fault",
            "ph": "i",
            "ts": fault.time * 1e6,
            "s": "g" if fault.node is None else "p",
            "pid": 0 if fault.node is None else fault.node,
            "args": {"detail": fault.detail},
        }
        events.append(event)
    # Journaled runs: mark every compaction checkpoint as a global
    # instant event, so crash/resume points can be located on the
    # timeline next to the faults they interact with.
    journal = getattr(result, "journal", None)
    if journal is not None:
        for seq, time in journal.checkpoint_history:
            events.append(
                {
                    "name": "journal-checkpoint",
                    "cat": "recovery",
                    "ph": "i",
                    "ts": time * 1e6,
                    "s": "g",
                    "pid": 0,
                    "args": {"seq": seq},
                }
            )
    other = {
        "engine": result.engine,
        "cluster": result.spec.name,
        "makespan_s": result.makespan,
    }
    if journal is not None:
        other["journal"] = {
            "records": len(journal),
            "checkpoints": len(journal.checkpoint_history),
            "resumes": journal.resumes,
        }
    if result.integrity_stats:
        other["integrity"] = dict(result.integrity_stats)
    if getattr(result, "liveness_stats", None):
        other["liveness"] = dict(result.liveness_stats)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    if path is not None:
        Path(path).write_text(json.dumps(document))
    return document


def metrics_to_csv(metrics: NodeMetrics, path: Optional[_PathLike] = None) -> str:
    """Serialize a metrics series to CSV (paper's 3-second samples)."""
    buffer = io.StringIO()
    buffer.write("time_s,cpu_util_pct,disk_write_mb_s,disk_read_mb_s,threads\n")
    for t, cpu, w, r, th in zip(
        metrics.times,
        metrics.cpu_util,
        metrics.disk_write,
        metrics.disk_read,
        metrics.threads,
    ):
        buffer.write(f"{t:.1f},{cpu:.2f},{w:.2f},{r:.2f},{th:.2f}\n")
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def ascii_gantt(result: EngineResult, width: int = 78, max_slots: int = 16) -> str:
    """Terminal rendering of the per-slot timeline (Fig 2 at a glance).

    Each row is one vCPU slot; ``#`` marks busy time.  Rows beyond
    ``max_slots`` per node are elided.
    """
    segments = slot_timeline(result)
    if not segments:
        return "(empty timeline)"
    t_end = max(seg.end for seg in segments)
    scale = (width - 20) / t_end if t_end > 0 else 1.0
    lines = [f"0{' ' * (width - 22)}{t_end:,.0f}s"]
    by_lane: dict = {}
    for seg in segments:
        by_lane.setdefault((seg.node, seg.slot), []).append(seg)
    for (node, slot), segs in sorted(by_lane.items()):
        if slot >= max_slots:
            continue
        row = [" "] * (width - 20)
        for seg in segs:
            lo = int(seg.start * scale)
            hi = max(lo + 1, int(seg.end * scale))
            for i in range(lo, min(hi, len(row))):
                row[i] = "#"
        lines.append(f"n{node:02d}.s{slot:02d} |" + "".join(row))
    return "\n".join(lines)
