"""Resource-consumption time series (the paper's mpstat/iostat sampling).

Each node's DES resources log exact utilisation segments; these helpers
resample them into fixed-interval series, default 3 seconds like the
paper's background monitoring process (§IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.engines.base import EngineResult
from repro.liveness import new_liveness_stats

__all__ = [
    "NodeMetrics",
    "node_metrics",
    "cluster_metrics",
    "robustness_metrics",
    "percentile",
]

#: The paper's sampling interval (seconds).
SAMPLE_INTERVAL = 3.0


@dataclass
class NodeMetrics:
    """Sampled series for one node (or a cluster aggregate).

    ``times`` are bucket start times; utilisation is percent; throughputs
    are MB/s (decimal), matching the paper's axes.
    """

    times: np.ndarray
    cpu_util: np.ndarray
    disk_write: np.ndarray
    disk_read: np.ndarray
    threads: np.ndarray

    @property
    def peak_threads(self) -> float:
        return float(self.threads.max()) if self.threads.size else 0.0

    @property
    def peak_cpu_util(self) -> float:
        return float(self.cpu_util.max()) if self.cpu_util.size else 0.0

    def mean_cpu_util(self) -> float:
        return float(self.cpu_util.mean()) if self.cpu_util.size else 0.0


def node_metrics(
    result: EngineResult,
    node_index: int,
    dt: float = SAMPLE_INTERVAL,
    t_end: float | None = None,
) -> NodeMetrics:
    """Sampled metrics of one node over ``[0, t_end]`` (default makespan)."""
    node = result.cluster.nodes[node_index]
    end = result.makespan if t_end is None else t_end
    times, busy = node.cores.log.sample(end, dt)
    _t, writes = node.disk.write.log.sample(end, dt)
    _t, reads = node.disk.read.log.sample(end, dt)
    if result.thread_logs:
        _t, threads = result.thread_logs[node_index].sample(end, dt)
    else:
        threads = np.zeros_like(busy)
    return NodeMetrics(
        times=times,
        cpu_util=100.0 * busy / node.cores.capacity,
        disk_write=writes / 1e6,
        disk_read=reads / 1e6,
        threads=threads,
    )


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of a finite sample.

    Deterministic and interpolation-free — the reported p50/p99 is always
    an actually observed value, and two runs over the same sample render
    the same bytes (no float blending), which the service soak report's
    byte-identity contract relies on.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = int(np.ceil(q * len(ordered)))
    return float(ordered[max(0, min(len(ordered) - 1, rank - 1))])


def robustness_metrics(result: EngineResult) -> Dict[str, int]:
    """Control-plane robustness counters of one run.

    Always returns the full counter set (zeros when the liveness plane
    was off) so dashboards get a stable schema: heartbeat misses, lease
    fencings/regrants, stale-epoch acks, shed submissions, failovers,
    partitions, and the final dead-letter queue depth.
    """
    stats = new_liveness_stats()
    stats["dead_letter_depth"] = len(result.dead_letters)
    stats["shed_record_drops"] = 0  # bounded shed-ledger overflow count
    stats.update(getattr(result, "liveness_stats", None) or {})
    return stats


def cluster_metrics(
    result: EngineResult,
    dt: float = SAMPLE_INTERVAL,
    t_end: float | None = None,
) -> NodeMetrics:
    """Cluster aggregate: mean CPU utilisation, summed disk throughput."""
    per_node = [
        node_metrics(result, i, dt, t_end) for i in range(len(result.cluster.nodes))
    ]
    n = len(per_node)
    return NodeMetrics(
        times=per_node[0].times,
        cpu_util=sum(m.cpu_util for m in per_node) / n,
        disk_write=sum(m.disk_write for m in per_node),
        disk_read=sum(m.disk_read for m in per_node),
        threads=sum(m.threads for m in per_node),
    )
