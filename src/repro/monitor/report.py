"""Aggregate run reports and text rendering for the benchmark harness.

The benchmarks regenerate the paper's tables and figure series as text:
``run_summary`` provides the Fig 7-style totals, ``summary_table`` and
``format_series`` render aligned rows the way the paper reports them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.engines.base import EngineResult

__all__ = ["run_summary", "summary_table", "format_series"]


def run_summary(result: EngineResult) -> Dict[str, float]:
    """Fig 7-style totals for one run."""
    return {
        "engine": result.engine,
        "cluster": result.spec.name,
        "workflows": result.n_workflows,
        "jobs": result.jobs_executed,
        "makespan_s": round(result.makespan, 1),
        "total_cpu_seconds": round(result.total_cpu_seconds(), 1),
        "total_disk_write_gb": round(result.total_disk_write_bytes() / 1e9, 2),
        "total_disk_read_gb": round(result.total_disk_read_bytes() / 1e9, 2),
        "resubmissions": result.resubmissions,
        "cost_usd": round(result.cost(), 2),
    }


def summary_table(rows: Sequence[Dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(col) for col in columns]]
    for row in rows:
        table.append([_fmt(row.get(col, "")) for col in columns])
    widths = [max(len(r[i]) for r in table) for i in range(len(columns))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    label: str, xs: Iterable[float], ys: Iterable[float], unit: str = ""
) -> str:
    """One figure series as '<label>: x=... y=...' pairs."""
    pairs = "  ".join(f"{x:g}:{y:.3g}" for x, y in zip(xs, ys))
    suffix = f" [{unit}]" if unit else ""
    return f"{label}{suffix}: {pairs}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
