"""Command-line entry points.

Five commands mirror the system's main user journeys:

* ``repro-run`` — execute a workflow ensemble on a simulated cluster with
  a chosen engine and print the run summary (the DAG is validated at
  submission time, paper §III.C; ``--lint`` adds the full static
  analyzer as a pre-flight);
* ``repro-plan`` — size clusters for a workload/deadline (Table III);
* ``repro-profile`` — run the Fig 5 profiling campaign for an instance
  type and print the derived node performance index;
* ``repro-lint`` — static analysis: workflow/ensemble data-flow lint, or
  the repo code lint (``--code``).  See docs/STATIC_ANALYSIS.md.
* ``repro-chaos`` — run an ensemble under a named fault scenario and
  verify the recovery invariants.  See docs/FAULTS.md.
* ``repro-bench`` — benchmark harness: the ``kernel`` suite measures
  event-loop and engine throughput (``BENCH_kernel.json``); the
  ``service`` suite gates the soak's deterministic admission counters
  (``BENCH_service.json``).  See docs/PERFORMANCE.md.
* ``repro-schedules`` — seeded schedule explorer: run bounded concurrency
  scenarios under exhaustive/PCT-sampled interleavings and shrink any
  failing schedule to a minimal trace.  See docs/STATIC_ANALYSIS.md.
* ``repro-service`` — multi-tenant open-loop soak: seeded arrival
  processes through the quota/fair-share/brownout admission ladder,
  reporting per-tenant per-class slowdown and shed counts.  See
  docs/FAULTS.md ("Overload and graceful degradation").
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.cloud import ClusterSpec
from repro.cloud.cluster import FS_KINDS
from repro.engines import DeweV1Engine, PullEngine, SchedulingEngine
from repro.engines.base import RunConfig
from repro.generators import cybershake_workflow, ligo_workflow, montage_workflow
from repro.monitor import run_summary, summary_table
from repro.provision import ProfilingCampaign, plan_cluster
from repro.workflow import Ensemble, ValidationError, validate_workflow

ENGINES = {
    "dewe-v2": PullEngine,
    "pegasus": SchedulingEngine,
    "dewe-v1": DeweV1Engine,
}

WORKFLOW_KINDS = ("montage", "ligo", "cybershake")


def _make_workflow(kind: str, size: float):
    if kind == "montage":
        return montage_workflow(degree=size)
    if kind == "ligo":
        return ligo_workflow(blocks=max(1, int(size)))
    if kind == "cybershake":
        return cybershake_workflow(ruptures=max(1, int(size)))
    raise SystemExit(f"unknown workflow kind {kind!r}")


def _load_workflow_file(path: str):
    from repro.workflow.serialize import load_dax, load_json

    if path.endswith((".xml", ".dax")):
        return load_dax(path)
    return load_json(path)


def main_run(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Run a workflow ensemble on a simulated EC2 cluster.",
    )
    parser.add_argument("--engine", choices=sorted(ENGINES), default="dewe-v2")
    parser.add_argument("--workflow", default="montage",
                        choices=("montage", "ligo", "cybershake"))
    parser.add_argument("--size", type=float, default=1.0,
                        help="Montage degree / LIGO blocks / CyberShake ruptures")
    parser.add_argument("--workflows", type=int, default=1,
                        help="ensemble size (copies of the workflow)")
    parser.add_argument("--interval", type=float, default=0.0,
                        help="incremental submission interval in seconds")
    parser.add_argument("--instance-type", default="c3.8xlarge")
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--filesystem", choices=FS_KINDS, default=None)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="job timeout for the master daemon")
    parser.add_argument("--export-dir", default=None,
                        help="write trace.json / timeline.svg / metrics.csv here")
    parser.add_argument("--lint", action="store_true",
                        help="run the full static analyzer as a pre-flight "
                             "and refuse to simulate on errors")
    parser.add_argument("--verbose", action="store_true",
                        help="report every validation/lint problem, not "
                             "just the first few")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-20 "
                             "hot spots by cumulative time")
    args = parser.parse_args(argv)

    fs = args.filesystem or ("local" if args.nodes == 1 else "moosefs")
    spec = ClusterSpec(args.instance_type, args.nodes, filesystem=fs)
    template = _make_workflow(args.workflow, args.size)
    # Submission-time validation (paper §III.C): reject malformed DAGs
    # before burning simulated cluster time on them.
    try:
        validate_workflow(template)
    except ValidationError as exc:
        print(exc.render(verbose=args.verbose), file=sys.stderr)
        return 2
    ensemble = Ensemble.replicated(template, args.workflows, interval=args.interval)
    if args.lint:
        from repro.analysis.dataflow import analyze_ensemble

        report = analyze_ensemble(ensemble)
        if report.findings:
            print(report.render(verbose=args.verbose), file=sys.stderr)
        if report.errors:
            print("lint pre-flight failed: refusing to simulate",
                  file=sys.stderr)
            return 2
    config = RunConfig(
        default_timeout=args.timeout, record_jobs=args.export_dir is not None
    )
    engine = ENGINES[args.engine](spec, config)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = engine.run(ensemble)
        profiler.disable()
        pstats.Stats(profiler, stream=sys.stderr).sort_stats(
            "cumulative"
        ).print_stats(20)
    else:
        result = engine.run(ensemble)
    print(summary_table([run_summary(result)]))
    if args.export_dir is not None:
        from pathlib import Path

        from repro.monitor import metrics_to_csv, node_metrics, to_chrome_trace
        from repro.monitor.plot import svg_gantt

        out = Path(args.export_dir)
        out.mkdir(parents=True, exist_ok=True)
        to_chrome_trace(result, out / "trace.json")
        svg_gantt(result, path=out / "timeline.svg")
        metrics_to_csv(node_metrics(result, 0), out / "metrics.csv")
        print(f"exported trace.json, timeline.svg, metrics.csv to {out}")
    return 0


def main_plan(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Size clusters for a workload under a deadline (Eq. 2).",
    )
    parser.add_argument("--workflows", type=int, default=200)
    parser.add_argument("--deadline", type=float, default=3300.0)
    parser.add_argument("--instance-types", nargs="*",
                        default=["c3.8xlarge", "r3.8xlarge", "i2.8xlarge"])
    parser.add_argument("--index", type=float, default=None,
                        help="override the node performance index")
    args = parser.parse_args(argv)

    rows = []
    for itype in args.instance_types:
        plan = plan_cluster(itype, args.workflows, args.deadline, index=args.index)
        rows.append(
            {
                "instance_type": itype,
                "nodes": plan.spec.n_nodes,
                "vCPUs": plan.spec.total_vcpus,
                "index": plan.performance_index,
                "predicted_s": round(plan.predicted_time, 0),
                "cost_usd": round(plan.predicted_cost, 2),
                "usd_per_wf": round(plan.price_per_workflow, 3),
                "deadline_ok": plan.meets_deadline,
            }
        )
    print(summary_table(rows))
    return 0


def main_profile(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Run the Fig 5 profiling campaign for an instance type.",
    )
    parser.add_argument("--instance-type", default="c3.8xlarge")
    parser.add_argument("--degree", type=float, default=1.0,
                        help="Montage degree of the profiled workflow")
    parser.add_argument("--workflows", type=int, default=20,
                        help="multi-node test workload")
    parser.add_argument("--max-nodes", type=int, default=6)
    args = parser.parse_args(argv)

    campaign = ProfilingCampaign(montage_workflow(degree=args.degree))
    single = campaign.single_node(args.instance_type)
    print("single-node (Fig 5a):")
    for w, t in zip(single.workflow_counts, single.execution_times):
        print(f"  {w:3d} workflows -> {t:8.1f} s")
    multi = campaign.multi_node(
        args.instance_type,
        node_counts=tuple(range(2, args.max_nodes + 1)),
        workflows=args.workflows,
    )
    print(f"multi-node, {args.workflows} workflows (Fig 5b/5c):")
    for n, t, p in zip(multi.node_counts, multi.execution_times, multi.indices):
        print(f"  {n:2d} nodes -> {t:8.1f} s   P = {p:.6f}")
    print(f"converged node performance index: {multi.converged:.6f}")
    return 0


def main_chaos(argv: Optional[List[str]] = None) -> int:
    """Chaos harness CLI: run named fault scenarios, check recovery.

    Exit codes: 0 all invariants held, 1 a recovery invariant or a
    simulation invariant (sanitizer) was violated, 2 usage error.
    """
    import repro.analysis.sanitizer as sanitizer
    from repro.faults.chaos import SCENARIOS, run_chaos

    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Run a workflow ensemble under a named fault scenario "
                    "and verify the recovery invariants (docs/FAULTS.md).",
    )
    parser.add_argument("--scenario", default="smoke",
                        choices=sorted(SCENARIOS) + ["all"],
                        help="built-in scenario name, or 'all'")
    parser.add_argument("--game-day", action="store_true",
                        help="shorthand for --scenario game-day: partition "
                             "+ spot kill + straggler + master failover in "
                             "one seeded run (docs/FAULTS.md)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario's fault seed")
    parser.add_argument("--list", action="store_true",
                        help="list the built-in scenarios and exit")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run each scenario twice and require "
                             "byte-identical fault traces")
    parser.add_argument("--trace", action="store_true",
                        help="print the full fault trace after the summary")
    parser.add_argument("--crash-at", type=int, default=None, metavar="N",
                        help="crash the master after N journal records and "
                             "resume by validated replay (overrides the "
                             "scenario's crash_after)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="write the certified run's write-ahead journal "
                             "as JSONL (requires a crashing scenario or "
                             "--crash-at; not valid with --scenario all)")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name:12s} {SCENARIOS[name].description}")
        return 0
    if args.game_day:
        args.scenario = "game-day"
    if args.journal is not None and args.scenario == "all":
        parser.error("--journal requires a single --scenario")

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    failures = 0
    # Collect-mode sanitizer: record every simulation-invariant violation
    # across all scenarios instead of aborting at the first.
    with sanitizer.enabled(strict=False) as san:
        for name in names:
            scenario = SCENARIOS[name]
            if args.crash_at is not None:
                scenario = dataclasses.replace(
                    scenario, crash_after=args.crash_at
                )
            report = run_chaos(scenario, seed=args.seed)
            if args.check_determinism:
                again = run_chaos(scenario, seed=args.seed)
                if (
                    again.trace_text != report.trace_text
                    or again.makespan != report.makespan
                ):
                    report.problems.append(
                        "two runs with the same seed diverged "
                        "(fault trace or makespan)"
                    )
            print(report.summary())
            if args.trace and report.trace_text:
                print(report.trace_text)
            if args.journal is not None:
                if report.journal is None:
                    print(
                        "no journal to export: scenario has no crash_after "
                        "(use --crash-at N)",
                        file=sys.stderr,
                    )
                    return 2
                report.journal.to_jsonl(args.journal)
            if not report.ok:
                failures += 1
    for violation in san.violations:
        print(f"sanitizer: {violation}", file=sys.stderr)
    if san.violations:
        failures += 1
    return 1 if failures else 0


def main_lint(argv: Optional[List[str]] = None) -> int:
    """Static analysis CLI.

    Default mode analyzes a generated (or loaded) workflow ensemble with
    the data-flow rules; ``--code`` runs the repo AST lints instead.
    Exit codes: 0 clean (INFO notes allowed), 1 warnings, 2 errors.
    """
    from repro.analysis.dataflow import RULES, AnalyzerConfig, analyze_ensemble

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis for workflows, ensembles and the repo "
                    "itself (rule catalogue: docs/STATIC_ANALYSIS.md).",
    )
    parser.add_argument("--code", nargs="*", metavar="PATH", default=None,
                        help="run the repo code lint over PATH(s) "
                             "(default: the installed repro package)")
    parser.add_argument("--workflow", default="montage", choices=WORKFLOW_KINDS)
    parser.add_argument("--size", type=float, default=1.0,
                        help="Montage degree / LIGO blocks / CyberShake ruptures")
    parser.add_argument("--workflows", type=int, default=1,
                        help="ensemble size (copies of the workflow)")
    parser.add_argument("--interval", type=float, default=0.0,
                        help="incremental submission interval in seconds")
    parser.add_argument("--file", default=None,
                        help="analyze a serialized workflow (.json or "
                             ".xml/.dax) instead of generating one")
    parser.add_argument("--hotspot-fanout", type=int, default=None,
                        help="FS001 threshold: files consumed by more jobs "
                             "than this are flagged (default 256)")
    parser.add_argument("--ignore", action="append", default=None,
                        metavar="RULE", help="suppress a rule id (repeatable)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--verbose", action="store_true",
                        help="list every finding, not just the first 25")
    args = parser.parse_args(argv)

    if args.code is not None:
        from pathlib import Path

        import repro
        from repro.analysis.codelint import lint_paths

        paths = args.code or [Path(repro.__file__).parent]
        findings = lint_paths(paths)
        for finding in findings:
            print(finding)
        print(f"code lint: {len(findings)} finding(s)")
        return 1 if findings else 0

    ignore = frozenset(args.ignore or ())
    unknown = ignore - set(RULES)
    if unknown:
        print(f"unknown rule id(s) in --ignore: {', '.join(sorted(unknown))}; "
              f"known rules: {', '.join(sorted(RULES))}", file=sys.stderr)
        return 2
    if args.file is not None:
        try:
            template = _load_workflow_file(args.file)
        except OSError as exc:
            print(f"cannot read workflow file: {exc}", file=sys.stderr)
            return 2
    else:
        template = _make_workflow(args.workflow, args.size)
    ensemble = Ensemble.replicated(
        template, max(1, args.workflows), interval=args.interval
    )
    config_kwargs = {"ignore": ignore}
    if args.hotspot_fanout is not None:
        config_kwargs["hotspot_fanout"] = args.hotspot_fanout
    report = analyze_ensemble(ensemble, AnalyzerConfig(**config_kwargs))
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render(verbose=args.verbose))
    if report.errors:
        return 2
    if report.warnings:
        return 1
    return 0


def main_schedules(argv: Optional[List[str]] = None) -> int:
    """Schedule-explorer CLI (docs/STATIC_ANALYSIS.md § Concurrency).

    Explores each selected scenario exhaustively up to a budget, then by
    seeded PCT-style sampling; failing interleavings are shrunk and
    printed as replayable traces.  Exit codes: 0 every scenario matched
    expectations (clean, or failing with ``--expect-bug``), 1 mismatch,
    2 usage error.  Output is byte-deterministic for a given seed.
    """
    from repro.analysis.concurrency.explorer import Explorer, shrink_schedule
    from repro.analysis.concurrency.scenarios import SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro-schedules",
        description="Explore thread interleavings of bounded concurrency "
                    "scenarios; shrink failing schedules to minimal traces.",
    )
    parser.add_argument("--scenario", action="append", default=None,
                        choices=sorted(SCENARIOS),
                        help="scenario to explore (repeatable; default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list the built-in scenarios and exit")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the PCT-style sampling phase")
    parser.add_argument("--max-schedules", type=int, default=500,
                        help="exhaustive-exploration budget per scenario")
    parser.add_argument("--random", type=int, default=200, metavar="N",
                        help="PCT-sampled schedules per scenario after the "
                             "exhaustive budget")
    parser.add_argument("--quick", action="store_true",
                        help="small budgets for CI (50 exhaustive + 50 "
                             "sampled)")
    parser.add_argument("--expect-bug", action="store_true",
                        help="invert the verdict: scenarios must FAIL "
                             "(for seeded-defect scenarios in CI)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="explore each scenario twice and require "
                             "identical outcomes and schedules")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            tag = "seeded-bug" if scenario.expect_bug else "clean"
            print(f"{name:16s} [{tag:10s}] {scenario.description}")
        return 0

    exhaustive = 50 if args.quick else args.max_schedules
    sampled = 50 if args.quick else args.random
    names = args.scenario or sorted(SCENARIOS)
    mismatches = 0
    for name in names:
        scenario = SCENARIOS[name]

        def explore():
            explorer = Explorer(scenario.build)
            outcome = explorer.explore_exhaustive(max_schedules=exhaustive)
            if not outcome.found_bug and not outcome.complete:
                outcome = explorer.explore_random(
                    seed=args.seed, schedules=sampled
                )
            if outcome.found_bug:
                outcome.shrunk = shrink_schedule(explorer, outcome.failure)
            return explorer, outcome

        explorer, outcome = explore()
        if args.check_determinism:
            _, again = explore()
            same = outcome.found_bug == again.found_bug and (
                outcome.failure is None
                or outcome.failure.schedule == again.failure.schedule
            )
            if not same:
                print(f"{name}: NONDETERMINISTIC exploration under seed "
                      f"{args.seed}", file=sys.stderr)
                mismatches += 1
                continue
        verdict = "bug found" if outcome.found_bug else "clean"
        space = "complete" if outcome.complete else "bounded"
        print(f"{name}: {verdict} after {explorer.runs} run(s) "
              f"({space} exploration)")
        if outcome.found_bug:
            shrunk = outcome.shrunk or outcome.failure
            print(f"  minimal trace ({shrunk.switches} context switch(es), "
                  f"schedule {shrunk.schedule}):")
            print(shrunk.render_trace())
        if outcome.found_bug != args.expect_bug:
            mismatches += 1
            expected = "a bug" if args.expect_bug else "a clean pass"
            print(f"{name}: expected {expected}", file=sys.stderr)
    return 1 if mismatches else 0


def main_bench(argv: Optional[List[str]] = None) -> int:
    """Benchmark harness (docs/PERFORMANCE.md).

    ``--suite kernel`` (default) measures wall-clock throughput of the
    DES layers; ``--suite service`` runs the multi-tenant soak and gates
    its deterministic admission counters.  Exit codes: 0 pass, 1
    regression or determinism failure against the snapshot given to
    ``--compare``, 2 usage error.
    """
    import os

    from repro.parallel.bench import (
        BENCH_FILENAME,
        compare_benchmarks,
        compare_warnings,
        load_snapshot,
        render_report,
        run_benchmarks,
        save_snapshot,
    )
    from repro.service.bench import (
        BENCH_SERVICE_FILENAME,
        run_service_benchmarks,
    )

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Measure kernel/engine throughput or service soak "
                    f"behaviour; write or compare the {BENCH_FILENAME} / "
                    f"{BENCH_SERVICE_FILENAME} regression snapshots.",
    )
    parser.add_argument("--suite", choices=("kernel", "service"),
                        default="kernel",
                        help="kernel: wall-clock throughput; service: "
                             "deterministic soak admission counters")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions and smaller workloads "
                             "(CI mode)")
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool size for the parallel-runner "
                             "benchmark (kernel suite)")
    parser.add_argument("--seed", type=int, default=0,
                        help="soak seed (service suite)")
    parser.add_argument("--write", nargs="?", const="__default__",
                        default=None, metavar="PATH",
                        help=f"save the snapshot (default {BENCH_FILENAME} "
                             f"or {BENCH_SERVICE_FILENAME} per suite); an "
                             "existing file's 'baseline' section is "
                             "preserved")
    parser.add_argument("--mark-baseline", action="store_true",
                        help="with --write: also store this run's numbers "
                             "as the 'baseline' (before) section")
    parser.add_argument("--compare", default=None, metavar="PATH",
                        help="compare against a committed snapshot and "
                             "fail on regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional rate drop for --compare "
                             "(default 0.30; drifts past 10%% print a "
                             "soft warning before the gate)")
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="run only kernel benchmarks whose name "
                             "contains SUBSTR (e.g. fig10); incompatible "
                             "with --write")
    args = parser.parse_args(argv)

    if args.filter is not None and args.write is not None:
        print("--filter produces a partial suite; refusing to --write it",
              file=sys.stderr)
        return 2

    if args.write == "__default__":
        args.write = (
            BENCH_FILENAME if args.suite == "kernel"
            else BENCH_SERVICE_FILENAME
        )
    if args.suite == "service":
        payload = run_service_benchmarks(quick=args.quick, seed=args.seed)
    else:
        payload = run_benchmarks(quick=args.quick, workers=args.workers,
                                 only=args.filter)
    print(render_report(payload))

    status = 0
    soak_problems = (
        payload["benchmarks"].get("service_soak", {}).get("problems", [])
    )
    for problem in soak_problems:
        print(f"SOAK INVARIANT VIOLATED {problem}", file=sys.stderr)
        status = 1
    if args.compare is not None:
        try:
            committed = load_snapshot(args.compare)
        except OSError as exc:
            print(f"cannot read snapshot: {exc}", file=sys.stderr)
            return 2
        # Soft warnings first: a slide past 10% shows up in the log long
        # before it trips the hard gate.
        for warning in compare_warnings(payload, committed):
            print(f"DRIFT {warning}", file=sys.stderr)
        failures = compare_benchmarks(payload, committed, args.tolerance)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"compare: within {args.tolerance:.0%} of "
                  f"{args.compare} — OK")
    if args.write is not None:
        if args.mark_baseline:
            payload["baseline"] = {
                "benchmarks": payload["benchmarks"],
                "machine": payload["machine"],
            }
        elif os.path.exists(args.write):
            try:
                payload["baseline"] = load_snapshot(args.write).get(
                    "baseline", {}
                )
            except (OSError, ValueError):
                pass
        save_snapshot(payload, args.write)
        print(f"snapshot written to {args.write}")
    return status


def main_service(argv: Optional[List[str]] = None) -> int:
    """Multi-tenant open-loop service soak (docs/FAULTS.md).

    Runs seeded arrival processes from N simulated tenants (gold /
    silver / best_effort SLA classes) through the quota -> fair-share ->
    brownout -> admission ladder in front of the DES pull engine, and
    prints the per-tenant per-class report.  The run is a pure function
    of the config, so ``--check-determinism`` re-runs it and requires a
    byte-identical report.  Exit codes: 0 all soak invariants held, 1 an
    invariant or the determinism check failed, 2 usage error.
    """
    from repro.service import SoakConfig, run_soak

    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Soak the DEWE v2 service front end under open-loop "
                    "multi-tenant overload and report graceful "
                    "degradation per SLA class (docs/FAULTS.md).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized soak (a few simulated minutes "
                             "instead of hours)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the tenants' arrival processes")
    parser.add_argument("--horizon", type=float, default=None,
                        help="override the simulated arrival window "
                             "(seconds)")
    parser.add_argument("--load", type=float, default=None,
                        help="override offered load as a multiple of "
                             "probed capacity (default 2.0)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="override the cluster size")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the soak twice and require "
                             "byte-identical reports")
    args = parser.parse_args(argv)

    cfg = SoakConfig.quick(seed=args.seed) if args.quick else SoakConfig(
        seed=args.seed
    )
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.load is not None:
        overrides["load_factor"] = args.load
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if overrides:
        cfg = dataclasses.replace(cfg, **overrides)

    report = run_soak(cfg)
    print(report.render())
    status = 0 if report.ok else 1
    if args.check_determinism:
        again = run_soak(cfg)
        if again.to_json() != report.to_json():
            print(
                "DETERMINISM FAILURE: two soaks with the same config "
                "rendered different reports",
                file=sys.stderr,
            )
            status = 1
        else:
            print("determinism: second run byte-identical — OK")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.json}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_run())
