"""Worker-daemon fault schedules.

The paper's robustness tests (§V.A.3) kill the worker daemon mid-run and
start it again 5 seconds later — either on the same node, or on the other
node of a two-node cluster.  A :class:`FaultSchedule` expresses such
scripts as timed kill/restart actions against node indices and installs
them into an engine run.

Expected behaviour (asserted by the robustness benchmark):

* interruptions during **non-blocking** jobs add roughly the interruption
  duration to the makespan (execution resumes as soon as a worker is
  back, without waiting for timeouts);
* interruptions during **blocking** jobs add roughly the interrupted
  job's timeout (nothing else is eligible, so the master must wait for
  the timeout to resubmit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.sim import Simulator

__all__ = ["FaultAction", "FaultSchedule", "kill_restart_cycle"]


@dataclass(frozen=True)
class FaultAction:
    """One timed action: kill or (re)start the worker daemon of a node."""

    time: float
    node: int
    action: str  # "kill" | "restart"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"action time must be >= 0, got {self.time}")
        if self.node < 0:
            raise ValueError(f"node index must be >= 0, got {self.node}")
        if self.action not in ("kill", "restart"):
            raise ValueError(f"unknown action {self.action!r}")


class FaultSchedule:
    """An ordered script of :class:`FaultAction`.

    ``initially_down`` lists nodes whose worker daemon is *not* started at
    t=0 (the two-node test runs only one worker daemon at a time).
    """

    def __init__(
        self,
        actions: Sequence[FaultAction],
        initially_down: Sequence[int] = (),
    ):
        self.actions: List[FaultAction] = sorted(actions, key=lambda a: a.time)
        self.initially_down = tuple(initially_down)

    def install(
        self,
        sim: Simulator,
        start_worker: Callable[[int], None],
        kill_worker: Callable[[int], None],
    ) -> None:
        """Schedule every action inside ``sim``."""
        for action in self.actions:
            func = kill_worker if action.action == "kill" else start_worker
            sim.schedule_call(action.time, func, action.node)

    def __len__(self) -> int:
        return len(self.actions)


def kill_restart_cycle(
    kill_times: Sequence[float],
    downtime: float = 5.0,
    kill_node: int = 0,
    restart_node: int | None = None,
) -> FaultSchedule:
    """The paper's interruption pattern: kill, restart ``downtime`` later.

    With ``restart_node`` set, the daemon comes back on a different node
    (the two-node NFS scenario); otherwise on the same node.
    """
    if downtime < 0:
        raise ValueError(f"downtime must be >= 0, got {downtime}")
    if restart_node == kill_node:
        # Silently identical to the same-node cycle, except it would also
        # mark the node initially down and deadlock the run — reject it.
        raise ValueError(
            f"restart_node must differ from kill_node (both {kill_node}); "
            f"omit restart_node for a same-node restart cycle"
        )
    actions = []
    current = kill_node
    for t in kill_times:
        actions.append(FaultAction(t, current, "kill"))
        if restart_node is None:
            nxt = current  # same-node restart
        else:
            nxt = restart_node if current == kill_node else kill_node
        actions.append(FaultAction(t + downtime, nxt, "restart"))
        current = nxt
    initially_down = () if restart_node is None else (restart_node,)
    return FaultSchedule(actions, initially_down=initially_down)
