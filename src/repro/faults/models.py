"""Seeded stochastic fault models (the failure modes of real clouds).

:mod:`repro.faults.injection` scripts the paper's deterministic
kill/restart cycles; this module adds the failure modes that Juve et
al.'s EC2 workflow studies show actually dominate in public clouds:

* :class:`SpotTerminationModel` — spot-style instance reclamation, with
  the two-minute-notice variant (notice drains the worker daemon so
  in-flight jobs can finish; the termination kills whatever remains);
* :class:`TransientFaultModel` — per-attempt transient job failure
  probability plus always-failing *poison* jobs;
* :class:`StragglerModel` — degraded nodes: disk bandwidth and/or CPU
  speed scaled by a factor over an interval (the "bad neighbour" /
  failing-disk straggler).

Every model is driven by an explicit ``random.Random(seed)`` at
*construction* time: sampling happens once, up front, so the resulting
event list — and therefore the whole fault trace — is a pure function of
the seed (codelint CL002 discipline).  Models install themselves against
a :class:`ChaosAPI`, the narrow set of hooks an engine exposes, so the
same model drives any engine that provides the hooks.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FaultEvent",
    "FaultTrace",
    "ChaosAPI",
    "SpotTerminationModel",
    "TransientFaultModel",
    "Degradation",
    "StragglerModel",
    "PartitionWindow",
    "NetworkPartitionModel",
    "FileCorruptionModel",
    "FileLossModel",
]


@dataclass(frozen=True)
class FaultEvent:
    """One fault-injection occurrence, for traces and timeline export."""

    time: float
    kind: str
    node: Optional[int] = None
    detail: str = ""

    def line(self) -> str:
        where = f" node={self.node}" if self.node is not None else ""
        tail = f" {self.detail}" if self.detail else ""
        return f"t={self.time:.6f} {self.kind}{where}{tail}"


class FaultTrace:
    """Ordered record of every injected fault and recovery action.

    The rendered form (:meth:`text`) is the determinism contract: two
    runs of the same seeded scenario must produce byte-identical traces.
    """

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(
        self, time: float, kind: str, node: Optional[int] = None, detail: str = ""
    ) -> FaultEvent:
        event = FaultEvent(time, kind, node, detail)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def lines(self) -> List[str]:
        return [event.line() for event in self.events]

    def text(self) -> str:
        return "\n".join(self.lines())


@dataclass
class ChaosAPI:
    """Engine hooks a fault model may drive.

    ``sim`` is the engine's :class:`~repro.sim.Simulator`;
    ``stop_worker`` is a graceful drain (finish in-flight jobs, pull
    nothing new), ``kill_worker`` the abrupt death.  ``set_disk_factor``
    / ``set_cpu_factor`` scale a node's disk bandwidth / CPU speed
    relative to its nominal capacity.  ``mark_spot_terminated`` flags
    the node's current lease as provider-interrupted for billing.

    ``begin_partition`` / ``end_partition`` (optional — engines without
    a network model leave them ``None``) cut and restore a node's
    connectivity to the control plane: mode ``"full"`` severs both
    directions, ``"to-master"`` only the worker's uplink (acks buffered,
    heartbeats dropped), ``"from-master"`` only the dispatch downlink.
    """

    sim: "object"
    n_nodes: int
    start_worker: Callable[[int], None]
    stop_worker: Callable[[int], None]
    kill_worker: Callable[[int], None]
    set_disk_factor: Callable[[int, float], None]
    set_cpu_factor: Callable[[int, float], None]
    mark_spot_terminated: Callable[[int], None]
    trace: FaultTrace
    begin_partition: Optional[Callable[[int, str], None]] = None
    end_partition: Optional[Callable[[int], None]] = None


def _hazard_steps(
    price_hazard: Optional[Sequence[Tuple[float, float]]],
) -> Optional[Tuple[Tuple[float, float], ...]]:
    """Normalize a price-hazard series to sorted steps covering t=0."""
    if not price_hazard:
        return None
    steps = sorted((float(t), float(m)) for t, m in price_hazard)
    for t, mult in steps:
        if t < 0:
            raise ValueError(f"hazard breakpoint time must be >= 0, got {t}")
        if mult < 0:
            raise ValueError(f"hazard multiplier must be >= 0, got {mult}")
    if steps[0][0] > 0.0:
        steps.insert(0, (0.0, 1.0))  # flat 1x before the first breakpoint
    if all(mult == 1.0 for _t, mult in steps):
        # Flat at 1x is the identity: skip the generic inversion so the
        # traces are byte-identical to the pre-hazard sampler (a float
        # round-trip through the piecewise accumulator costs an ulp).
        return None
    return tuple(steps)


def _invert_hazard(
    unit: float,
    base_rate: float,
    steps: Tuple[Tuple[float, float], ...],
    horizon: float,
) -> float:
    """Map an Exp(1) draw through the inverse piecewise cumulative hazard.

    With instantaneous rate ``base_rate * mult(t)`` stepwise constant,
    the event lands where the accumulated hazard reaches ``unit``;
    accumulation beyond ``horizon`` means the node survives the run.
    """
    acc = 0.0
    for i, (start, mult) in enumerate(steps):
        end = steps[i + 1][0] if i + 1 < len(steps) else horizon
        end = min(end, horizon)
        if end <= start:
            continue
        rate = base_rate * mult
        seg = rate * (end - start)
        if acc + seg >= unit:
            return start + (unit - acc) / rate if rate > 0 else horizon
        acc += seg
    return horizon  # survives: cumulative hazard over [0, horizon) < unit


class SpotTerminationModel:
    """Spot-style node reclamation, optionally with the two-minute notice.

    ``terminations`` is a sequence of ``(time, node)`` pairs.  With
    ``notice > 0`` the node is drained ``notice`` seconds before the
    kill (EC2's two-minute interruption notice: ``notice=120``); with
    ``notice=0`` the instance just vanishes.  ``replacement_delay``
    models an auto-scaling group starting a replacement instance that
    many seconds after the termination.
    """

    def __init__(
        self,
        terminations: Sequence[Tuple[float, int]],
        notice: float = 120.0,
        replacement_delay: Optional[float] = None,
    ):
        if notice < 0:
            raise ValueError(f"notice must be >= 0, got {notice}")
        if replacement_delay is not None and replacement_delay < 0:
            raise ValueError(
                f"replacement_delay must be >= 0, got {replacement_delay}"
            )
        for t, node in terminations:
            if t < 0 or node < 0:
                raise ValueError(f"bad termination ({t}, {node})")
        self.terminations: Tuple[Tuple[float, int], ...] = tuple(
            sorted((float(t), int(n)) for t, n in terminations)
        )
        self.notice = float(notice)
        self.replacement_delay = replacement_delay

    @classmethod
    def sample(
        cls,
        seed: int,
        n_nodes: int,
        horizon: float,
        rate_per_hour: float,
        notice: float = 120.0,
        replacement_delay: Optional[float] = None,
        protected: Sequence[int] = (),
        price_hazard: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> "SpotTerminationModel":
        """Draw at most one reclamation per node from a Poisson process.

        Each non-protected node's time-to-reclamation is exponential
        with ``rate_per_hour``; draws beyond ``horizon`` mean the node
        survives the run.  Nodes are visited in index order so the trace
        is a pure function of the seed.

        ``price_hazard`` indexes the hazard to a price series (ROADMAP
        item 5): a stepwise-constant sequence of ``(time, multiplier)``
        breakpoints scaling the instantaneous rate from each breakpoint
        onward, so reclamation risk spikes when the spot price does.
        The exponential unit draw per node is unchanged — only the
        inverse cumulative hazard mapping it to a time differs — so the
        default (``None``/empty, hazard flat at 1x) reproduces the
        pre-hazard fault traces byte-for-byte.
        """
        if rate_per_hour < 0:
            raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        steps = _hazard_steps(price_hazard)
        rng = random.Random(seed)
        shielded = frozenset(protected)
        terminations = []
        for node in range(n_nodes):
            if node in shielded or rate_per_hour == 0:
                continue
            unit = rng.expovariate(1.0)  # Exp(1): rate applied below
            if steps is None:
                t = unit / rate_per_hour * 3600.0
            else:
                t = _invert_hazard(unit, rate_per_hour / 3600.0, steps, horizon)
            if t < horizon:
                terminations.append((t, node))
        return cls(terminations, notice=notice, replacement_delay=replacement_delay)

    def install(self, api: ChaosAPI) -> None:
        for t, node in self.terminations:
            if node >= api.n_nodes:
                raise ValueError(
                    f"termination targets node {node} of a {api.n_nodes}-node cluster"
                )
            if self.notice > 0:
                api.sim.schedule_call(
                    max(0.0, t - self.notice), self._notice, api, node
                )
            api.sim.schedule_call(t, self._terminate, api, node)

    def _notice(self, api: ChaosAPI, node: int) -> None:
        api.trace.record(api.sim.now, "spot-notice", node)
        api.stop_worker(node)  # drain: in-flight jobs may still finish

    def _terminate(self, api: ChaosAPI, node: int) -> None:
        api.trace.record(api.sim.now, "spot-termination", node)
        api.kill_worker(node)
        api.mark_spot_terminated(node)
        if self.replacement_delay is not None:
            api.sim.schedule_call(self.replacement_delay, self._replace, api, node)

    def _replace(self, api: ChaosAPI, node: int) -> None:
        api.trace.record(api.sim.now, "spot-replacement", node)
        api.start_worker(node)


class TransientFaultModel:
    """Per-attempt transient job failures and always-failing poison jobs.

    ``should_fail(workflow, job_id, attempt)`` is a pure function of the
    seed and its arguments (a CRC32 mapped to [0, 1) and compared to
    ``p_fail``), so the failure pattern does not depend on the order in
    which the engine asks — retried attempts draw fresh values, so a
    transiently failing job eventually succeeds.  ``poison`` job ids
    fail on *every* attempt, in every workflow: the livelock candidates
    the retry budget exists for.
    """

    def __init__(
        self,
        p_fail: float = 0.0,
        seed: int = 0,
        poison: Sequence[str] = (),
    ):
        if not 0.0 <= p_fail <= 1.0:
            raise ValueError(f"p_fail must be in [0, 1], got {p_fail}")
        self.p_fail = float(p_fail)
        self.seed = int(seed)
        self.poison = frozenset(poison)

    def should_fail(self, workflow: str, job_id: str, attempt: int) -> bool:
        if job_id in self.poison:
            return True
        if self.p_fail <= 0.0:
            return False
        crc = zlib.crc32(f"{self.seed}|{workflow}|{job_id}|{attempt}".encode())
        return crc / 0x100000000 < self.p_fail


@dataclass(frozen=True)
class Degradation:
    """One degraded interval of one node.

    ``disk_factor`` scales both disk channels' bandwidth,
    ``cpu_factor`` scales the compute speed of jobs *started* during the
    interval (in-flight compute keeps its admission-time speed — the DES
    prices compute at job start).
    """

    node: int
    start: float
    duration: float
    disk_factor: float = 1.0
    cpu_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"bad degradation window ({self.start}, {self.duration})"
            )
        if self.disk_factor <= 0 or self.cpu_factor <= 0:
            raise ValueError("degradation factors must be positive")


class StragglerModel:
    """Degraded-disk / slow-CPU straggler nodes over explicit intervals."""

    def __init__(self, degradations: Sequence[Degradation]):
        ordered = sorted(degradations, key=lambda d: (d.node, d.start))
        for a, b in zip(ordered, ordered[1:]):
            if a.node == b.node and b.start < a.start + a.duration:
                raise ValueError(
                    f"overlapping degradations on node {a.node}: "
                    f"[{a.start}, {a.start + a.duration}) and [{b.start}, ...)"
                )
        self.degradations: Tuple[Degradation, ...] = tuple(ordered)

    @classmethod
    def sample(
        cls,
        seed: int,
        n_nodes: int,
        horizon: float,
        p_straggler: float,
        disk_factor: Tuple[float, float] = (0.2, 0.6),
        cpu_factor: Tuple[float, float] = (1.0, 1.0),
        duration: Tuple[float, float] = (30.0, 120.0),
    ) -> "StragglerModel":
        """Each node independently becomes a straggler with ``p_straggler``,
        for one interval with uniformly drawn start, duration and factors."""
        if not 0.0 <= p_straggler <= 1.0:
            raise ValueError(f"p_straggler must be in [0, 1], got {p_straggler}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        rng = random.Random(seed)
        degradations = []
        for node in range(n_nodes):
            if rng.random() >= p_straggler:
                continue
            dur = rng.uniform(*duration)
            start = rng.uniform(0.0, max(horizon - dur, 0.0))
            degradations.append(
                Degradation(
                    node=node,
                    start=start,
                    duration=dur,
                    disk_factor=rng.uniform(*disk_factor),
                    cpu_factor=rng.uniform(*cpu_factor),
                )
            )
        return cls(degradations)

    def install(self, api: ChaosAPI) -> None:
        for d in self.degradations:
            if d.node >= api.n_nodes:
                raise ValueError(
                    f"degradation targets node {d.node} of a "
                    f"{api.n_nodes}-node cluster"
                )
            api.sim.schedule_call(d.start, self._begin, api, d)

    def _begin(self, api: ChaosAPI, d: Degradation) -> None:
        api.trace.record(
            api.sim.now,
            "degrade-start",
            d.node,
            f"disk*{d.disk_factor:g} cpu*{d.cpu_factor:g} for {d.duration:g}s",
        )
        api.set_disk_factor(d.node, d.disk_factor)
        api.set_cpu_factor(d.node, d.cpu_factor)
        api.sim.schedule_call(d.duration, self._end, api, d)

    def _end(self, api: ChaosAPI, d: Degradation) -> None:
        api.trace.record(api.sim.now, "degrade-end", d.node)
        api.set_disk_factor(d.node, 1.0)
        api.set_cpu_factor(d.node, 1.0)


#: Valid partition directions.  ``full`` severs both directions;
#: ``to-master`` only the worker's uplink (its acks are in flight /
#: buffered, its heartbeats lost); ``from-master`` only the downlink
#: (it stops receiving dispatches but its acks still arrive).
PARTITION_MODES = ("full", "to-master", "from-master")


@dataclass(frozen=True)
class PartitionWindow:
    """One node's connectivity loss over ``[start, start + duration)``."""

    node: int
    start: float
    duration: float
    mode: str = "full"

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.start < 0 or self.duration <= 0:
            raise ValueError(f"bad partition window ({self.start}, {self.duration})")
        if self.mode not in PARTITION_MODES:
            raise ValueError(f"mode must be one of {PARTITION_MODES}, got {self.mode!r}")


class NetworkPartitionModel:
    """Node-scoped network partitions with seeded onset/healing windows.

    The failure mode spot kills don't cover: the worker is *alive* —
    still burning its lease, maybe still computing — but the control
    plane can't see it.  Without a liveness protocol its in-flight jobs
    hang until the job timeout; with heartbeat leases the master fences
    it after ``miss_threshold`` beats and redispatches.  On healing,
    buffered uplink traffic is redelivered in order, exercising the
    duplicate-ack and stale-epoch rejection paths.
    """

    def __init__(self, windows: Sequence[PartitionWindow]):
        ordered = sorted(windows, key=lambda w: (w.node, w.start))
        for a, b in zip(ordered, ordered[1:]):
            if a.node == b.node and b.start < a.start + a.duration:
                raise ValueError(
                    f"overlapping partitions on node {a.node}: "
                    f"[{a.start}, {a.start + a.duration}) and [{b.start}, ...)"
                )
        self.windows: Tuple[PartitionWindow, ...] = tuple(ordered)

    @classmethod
    def sample(
        cls,
        seed: int,
        n_nodes: int,
        horizon: float,
        p_partition: float,
        duration: Tuple[float, float] = (10.0, 60.0),
        p_asymmetric: float = 0.0,
        protected: Sequence[int] = (),
    ) -> "NetworkPartitionModel":
        """Each node independently partitions with ``p_partition`` for one
        window of uniformly drawn start/duration; with ``p_asymmetric``
        the cut is one-directional (uplink or downlink, a further coin
        flip).  Nodes are visited in index order — pure function of seed.
        """
        if not 0.0 <= p_partition <= 1.0:
            raise ValueError(f"p_partition must be in [0, 1], got {p_partition}")
        if not 0.0 <= p_asymmetric <= 1.0:
            raise ValueError(f"p_asymmetric must be in [0, 1], got {p_asymmetric}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        rng = random.Random(seed)
        shielded = frozenset(protected)
        windows = []
        for node in range(n_nodes):
            if rng.random() >= p_partition:
                continue
            dur = rng.uniform(*duration)
            start = rng.uniform(0.0, max(horizon - dur, 0.0))
            mode = "full"
            if rng.random() < p_asymmetric:
                mode = "to-master" if rng.random() < 0.5 else "from-master"
            if node in shielded:
                continue  # draws burned above keep traces seed-stable
            windows.append(
                PartitionWindow(node=node, start=start, duration=dur, mode=mode)
            )
        return cls(windows)

    def install(self, api: ChaosAPI) -> None:
        if api.begin_partition is None or api.end_partition is None:
            raise ValueError(
                "engine does not expose partition hooks "
                "(ChaosAPI.begin_partition/end_partition)"
            )
        for w in self.windows:
            if w.node >= api.n_nodes:
                raise ValueError(
                    f"partition targets node {w.node} of a "
                    f"{api.n_nodes}-node cluster"
                )
            api.sim.schedule_call(w.start, self._begin, api, w)

    def _begin(self, api: ChaosAPI, w: PartitionWindow) -> None:
        api.trace.record(
            api.sim.now, "partition-start", w.node,
            f"mode={w.mode} for {w.duration:g}s",
        )
        api.begin_partition(w.node, w.mode)
        api.sim.schedule_call(w.duration, self._end, api, w)

    def _end(self, api: ChaosAPI, w: PartitionWindow) -> None:
        api.trace.record(api.sim.now, "partition-heal", w.node)
        api.end_partition(w.node)


class _FileFaultModel:
    """Common machinery of the data-plane fault injectors.

    A model *strikes* a file at write time — only ever on the file's
    **first** write (``write_index == 1``), so the recovery path's
    regenerated copy always lands clean and the data-aware recovery
    terminates.  A file is hit when it matches one of the explicit
    ``targets`` glob patterns (matched against both ``owner/name`` and
    bare ``name``), or by a probability draw that is a pure CRC32
    function of ``(seed, salt, owner, name)`` — no hidden RNG state, so
    the set of damaged files is identical across runs of a seed.
    """

    kind = "file-fault"
    outcome = "corrupt"
    _salt = "file"

    def __init__(
        self,
        p: float = 0.0,
        seed: int = 0,
        targets: Sequence[str] = (),
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)
        self.targets: Tuple[str, ...] = tuple(targets)

    def strikes(self, owner: str, name: str, write_index: int) -> bool:
        if write_index != 1:
            return False
        path = f"{owner}/{name}"
        for pattern in self.targets:
            if fnmatchcase(path, pattern) or fnmatchcase(name, pattern):
                return True
        if self.p <= 0.0:
            return False
        crc = zlib.crc32(f"{self.seed}|{self._salt}|{owner}|{name}".encode())
        return crc / 0x100000000 < self.p


class FileCorruptionModel(_FileFaultModel):
    """Silent data corruption: the file exists but its checksum is wrong
    (bit rot, torn writes, a RAID-0 member returning garbage)."""

    kind = "file-corruption"
    outcome = "corrupt"
    _salt = "corrupt"


class FileLossModel(_FileFaultModel):
    """File loss: the file vanishes from the namespace (node churn under
    a non-replicated shared FS, eventual-consistency windows)."""

    kind = "file-loss"
    outcome = "lost"
    _salt = "loss"
