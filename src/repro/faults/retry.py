"""Unified retry policy: backoff, attempt budgets, dead-lettering.

The paper's master daemon resubmits a timed-out job forever (§III.B) —
fine for the scripted kill/restart experiments of §V.A.3, fatal for a
*poison* job that fails on every node: the ensemble livelocks while the
master republishes it until the heat death of the cluster.  This module
is the single retry discipline shared by the threaded master daemon
(:mod:`repro.dewe.master`) and the simulated pull engine
(:mod:`repro.engines.pull`):

* **attempt budget** — after ``max_attempts`` deliveries the job is
  *dead-lettered* instead of republished; descendants that can now never
  become eligible are dead-lettered too, so the workflow still settles;
* **exponential backoff with deterministic jitter** — re-dispatches wait
  ``base_delay * backoff_factor**(n-1)`` seconds (capped at
  ``max_delay``), spread by a jitter derived from a CRC of the job key so
  that fault traces are bit-reproducible (no hidden RNG state);
* **dispatch-loss deadlines** — with ``redispatch_lost`` the deadline is
  armed when the job is *published*, not only when its running ack
  arrives, so a dispatch message eaten by a lossy broker is recovered by
  the same timeout machinery.

``RetryPolicy()`` (all defaults) reproduces the paper's behaviour
exactly: unlimited attempts, immediate resubmission, deadlines armed by
running acks only.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["RetryPolicy", "DeadLetterEntry", "DeadLetterQueue"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the master treats failed and timed-out job deliveries.

    Attributes
    ----------
    max_attempts:
        Delivery budget per job; ``0`` means unlimited (the paper's
        behaviour).  A job whose ``max_attempts``-th delivery fails or
        times out is dead-lettered.
    base_delay:
        Backoff before re-dispatching after the first failed delivery;
        ``0`` re-dispatches immediately.
    backoff_factor:
        Multiplier applied per additional failed delivery (>= 1).
    max_delay:
        Backoff cap in seconds.
    jitter:
        Fractional spread of the backoff (0..1): the delay is scaled by a
        factor in ``[1 - jitter, 1 + jitter]`` chosen deterministically
        from the job key and attempt number.
    redispatch_lost:
        Arm the completion deadline at *dispatch* time (not just at the
        running ack), so dispatch messages lost in the broker are
        resubmitted.  Off by default: with a reliable broker a queued job
        is merely waiting for a free slot, and re-publishing it would
        inflate the resubmission count of long backlogs.
    """

    max_attempts: int = 0
    base_delay: float = 0.0
    backoff_factor: float = 2.0
    max_delay: float = 300.0
    jitter: float = 0.0
    redispatch_lost: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError(f"max_attempts must be >= 0, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def exhausted(self, attempts: int) -> bool:
        """True when ``attempts`` deliveries have used up the budget."""
        return self.max_attempts > 0 and attempts >= self.max_attempts

    def backoff(self, attempts: int, key: str = "") -> float:
        """Delay before re-dispatching after ``attempts`` failed deliveries.

        The jitter is a pure function of ``(key, attempts)`` — a CRC32
        mapped to ``[-1, 1]`` — so two runs of the same scenario produce
        byte-identical schedules (``random.Random`` would need shared
        state between the master and the harness; a hash needs none).
        """
        if self.base_delay <= 0:
            return 0.0
        delay = self.base_delay * self.backoff_factor ** max(0, attempts - 1)
        delay = min(delay, self.max_delay)
        if self.jitter > 0:
            crc = zlib.crc32(f"{key}#{attempts}".encode())
            unit = crc / 0xFFFFFFFF  # [0, 1]
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay


@dataclass(frozen=True)
class DeadLetterEntry:
    """One poison job taken out of circulation.

    ``reason`` is ``"failed"`` (budget exhausted by failure acks),
    ``"timeout"`` (budget exhausted by missed deadlines) or
    ``"upstream-dead"`` (an ancestor was dead-lettered, so this job can
    never become eligible).  ``attempts`` is 0 for cascaded entries.

    ``tenant``/``sla`` attribute the loss in multi-tenant service runs
    (docs/FAULTS.md); both default empty so records from single-owner
    runs — and snapshots written before the fields existed — construct
    and load unchanged.
    """

    workflow: str
    job_id: str
    attempts: int
    reason: str
    time: float
    tenant: str = ""
    sla: str = ""

    def __str__(self) -> str:
        who = f" [{self.tenant}/{self.sla}]" if self.tenant else ""
        return (
            f"{self.workflow}/{self.job_id}{who}: {self.reason} after "
            f"{self.attempts} attempt(s) at t={self.time:g}"
        )


@dataclass
class DeadLetterQueue:
    """Run-level aggregation of dead-lettered jobs across workflows."""

    entries: List[DeadLetterEntry] = field(default_factory=list)

    def add(self, entry: DeadLetterEntry) -> None:
        self.entries.append(entry)

    def extend(self, entries) -> None:
        self.entries.extend(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DeadLetterEntry]:
        return iter(self.entries)

    def jobs(self) -> List[Tuple[str, str]]:
        """``(workflow, job_id)`` pairs, in dead-letter order."""
        return [(e.workflow, e.job_id) for e in self.entries]

    def by_workflow(self) -> Dict[str, List[DeadLetterEntry]]:
        out: Dict[str, List[DeadLetterEntry]] = {}
        for entry in self.entries:
            out.setdefault(entry.workflow, []).append(entry)
        return out

    def poisoned(self) -> List[DeadLetterEntry]:
        """Entries that exhausted a budget themselves (not cascade)."""
        return [e for e in self.entries if e.reason != "upstream-dead"]
