"""Chaos harness: run ensembles under named fault scenarios and certify
the recovery invariants.

A :class:`ChaosScenario` bundles a workload, a cluster, a
:class:`~repro.faults.retry.RetryPolicy` and a set of seeded fault models
(spot terminations, transient/poison job failures, stragglers, broker
message chaos).  :func:`run_chaos` runs the scenario twice — once
fault-free for the baseline, once under chaos — and checks that the
recovery machinery actually recovered:

* **completion** — every job either completed exactly once or was
  dead-lettered (with its unreachable descendants); nothing is stranded
  queued/running/waiting at settlement;
* **dead-letter accounting** — jobs only die when the scenario injects a
  reason for them to (a poison job, a bounded retry budget); a fault-free
  retry budget must produce zero dead letters;
* **lease/billing conservation** — worker-daemon leases are well formed
  under mid-lease termination and the spot billing rule never charges a
  provider-interrupted partial hour (checked through the sanitizer hooks
  in :mod:`repro.analysis.sanitizer`);
* **bounded degradation** — the chaos makespan stays within the
  scenario's ``max_slowdown`` factor of the fault-free baseline (the
  paper's §V.A.3 observation: an interruption costs about the downtime,
  or about the blocked job's timeout — not a livelock).

Determinism contract: a scenario is a pure function of its seed.  Two
calls of :func:`run_chaos` with the same scenario and seed produce
byte-identical fault traces and the same makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.analysis.sanitizer as _sanitizer
from repro.cloud import ClusterSpec
from repro.engines.base import RunConfig
from repro.engines.pull import PullEngine
from repro.faults.models import (
    FaultTrace,
    FileCorruptionModel,
    FileLossModel,
    NetworkPartitionModel,
    SpotTerminationModel,
    StragglerModel,
    TransientFaultModel,
)
from repro.faults.retry import RetryPolicy
from repro.liveness import (
    AdmissionControl,
    BrownoutController,
    LeaseConfig,
    MasterFailoverModel,
    ServiceAdmissionPolicy,
)
from repro.mq.chaosbroker import MessageChaos
from repro.mq.priority import RepriorityPolicy
from repro.recovery.crash import resume_until_complete
from repro.recovery.journal import Journal
from repro.workflow import Ensemble

__all__ = ["ChaosScenario", "ChaosReport", "SCENARIOS", "get_scenario", "run_chaos"]

#: Seed salts so each fault model draws from an independent stream.
_SALT_SPOT = 1
_SALT_TRANSIENT = 2
_SALT_STRAGGLER = 3
_SALT_MQ = 4
_SALT_CORRUPT = 5
_SALT_LOSS = 6
_SALT_PARTITION = 7


@dataclass(frozen=True)
class ChaosScenario:
    """One named, seeded fault-injection experiment.

    The fault knobs are all *rates*; the concrete fault events are
    sampled from ``seed`` (each model with its own salt) when the
    scenario runs, so the scenario object itself is reusable across
    seeds via :func:`run_chaos`'s ``seed`` override.
    """

    name: str
    description: str = ""
    # -- workload ---------------------------------------------------------
    workflow: str = "montage"
    size: float = 0.3
    n_workflows: int = 2
    interval: float = 0.0
    # -- cluster ----------------------------------------------------------
    instance_type: str = "c3.8xlarge"
    n_nodes: int = 2
    filesystem: Optional[str] = None
    # -- master daemon ----------------------------------------------------
    timeout: float = 10.0
    check_interval: float = 0.5
    # -- retry policy -----------------------------------------------------
    max_attempts: int = 4
    base_delay: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    redispatch_lost: bool = False
    # -- fault models -----------------------------------------------------
    seed: int = 0
    spot_rate_per_hour: float = 0.0
    spot_notice: float = 120.0
    spot_replacement_delay: Optional[float] = None
    spot_protected: Tuple[int, ...] = (0,)
    p_fail: float = 0.0
    poison: Tuple[str, ...] = ()
    p_straggler: float = 0.0
    straggler_disk: Tuple[float, float] = (0.2, 0.6)
    straggler_duration: Tuple[float, float] = (5.0, 20.0)
    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    mq_delay: float = 0.5
    # -- network partitions (repro.faults.models.NetworkPartitionModel) ----
    p_partition: float = 0.0
    partition_duration: Tuple[float, float] = (3.0, 8.0)
    p_partition_asymmetric: float = 0.0
    partition_protected: Tuple[int, ...] = ()
    #: Latest partition onset (sim seconds).  The default (None) samples
    #: onsets over the stretched fault horizon, which for short runs puts
    #: most windows after settlement; cap it near the baseline makespan
    #: when the scenario should reliably cut a link mid-run.
    partition_horizon: Optional[float] = None
    # -- control-plane liveness (repro.liveness; docs/FAULTS.md) -----------
    #: Worker heartbeat cadence; 0 disables the lease protocol entirely
    #: (partitioned workers then recover via the job timeout alone).
    heartbeat_interval: float = 0.0
    lease_miss_threshold: int = 3
    #: Kill the primary master at this sim time and have the warm standby
    #: take over (``failover_detection`` seconds later) by fencing the
    #: journal and rebuilding state from the latest checkpoint.
    failover_at: Optional[float] = None
    failover_detection: float = 1.0
    #: Admission gate: defer new workflow submissions while the dispatch
    #: backlog holds this many jobs (0 = unbounded, no gate).
    admission_max_pending: int = 0
    admission_retry_after: float = 1.0
    # -- multi-tenant open-loop service (repro.service; docs/FAULTS.md) ----
    #: Arrival window in sim seconds; > 0 switches the scenario to
    #: open-loop service mode: the ensemble is built from seeded tenant
    #: arrival processes (one tenant per SLA class) and the engine runs
    #: behind a :class:`~repro.liveness.ServiceAdmissionPolicy` instead
    #: of the closed-loop admission gate.
    service_horizon: float = 0.0
    service_gold_rate: float = 0.0
    service_silver_rate: float = 0.0
    #: best_effort arrives in ON-OFF bursts at this ON-window rate.
    service_burst_rate: float = 0.0
    service_burst_on: float = 5.0
    service_burst_off: float = 5.0
    #: The service policy's embedded backlog gate (jobs).
    service_max_pending: int = 24
    service_brownout_sustain: float = 2.0
    # -- live reprioritization (repro.mq.priority; docs/FAULTS.md) ---------
    #: Run the dispatch topic as a live priority queue: SLA-banded
    #: publishes plus completion-triggered re-scoring of still-queued
    #: jobs (the OSPREY ``asynch_repriority`` pattern).
    repriority: bool = False
    #: Starvation-avoidance aging: priority points per queued second.
    repriority_aging: float = 0.0
    #: Re-score/aging sweep period; 0 = completion-triggered only.
    repriority_interval: float = 0.0
    #: Price-indexed spot hazard breakpoints ``(time, multiplier)``;
    #: empty keeps the flat-rate hazard (byte-identical traces).
    price_hazard: Tuple[Tuple[float, float], ...] = ()
    # -- data-plane faults (repro.storage.integrity) ----------------------
    p_corrupt: float = 0.0
    p_file_loss: float = 0.0
    corrupt_targets: Tuple[str, ...] = ()
    loss_targets: Tuple[str, ...] = ()
    # -- master crash (repro.recovery) ------------------------------------
    #: Crash the master after this many journal records, then resume via
    #: validated replay and require the result to be byte-identical to
    #: the uninterrupted run.  ``None`` = no crash.
    crash_after: Optional[int] = None
    #: Journal compaction cadence (records per checkpoint; 0 = never).
    checkpoint_every: int = 25
    # -- invariant bounds -------------------------------------------------
    #: Chaos makespan must stay within ``baseline * max_slowdown +
    #: slack``; the slack absorbs fixed recovery costs (one timeout, one
    #: replacement delay) that dominate tiny baselines.
    max_slowdown: Optional[float] = 3.0
    slowdown_slack: float = 30.0
    #: Set for poison scenarios: the exact job ids expected to be
    #: dead-lettered directly (descendants cascade on top).
    expect_dead: Tuple[str, ...] = ()

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.base_delay,
            backoff_factor=self.backoff_factor,
            jitter=self.jitter,
            redispatch_lost=self.redispatch_lost or self.p_drop > 0,
        )

    def spec(self) -> ClusterSpec:
        fs = self.filesystem or ("local" if self.n_nodes == 1 else "moosefs")
        return ClusterSpec(self.instance_type, self.n_nodes, filesystem=fs)

    def _template(self):
        from repro.generators import (
            cybershake_workflow,
            ligo_workflow,
            montage_workflow,
        )

        if self.workflow == "montage":
            return montage_workflow(degree=self.size)
        if self.workflow == "ligo":
            return ligo_workflow(blocks=max(1, int(self.size)))
        if self.workflow == "cybershake":
            return cybershake_workflow(ruptures=max(1, int(self.size)))
        raise ValueError(f"unknown workflow kind {self.workflow!r}")

    @property
    def is_service(self) -> bool:
        return self.service_horizon > 0

    def service_workload(self):
        """The open-loop multi-tenant workload (service mode only).

        A pure function of the scenario fields and its seed, so the two
        :func:`run_chaos` calls to :meth:`ensemble` (baseline and chaos)
        see identical member names and submission times.
        """
        from repro.service.arrivals import OnOffArrivals, PoissonArrivals
        from repro.service.workload import TenantSpec, build_workload

        tenants = [
            TenantSpec(
                tenant="gold-0", sla="gold",
                arrivals=PoissonArrivals(self.service_gold_rate),
                quota_rate=3.0 * self.service_gold_rate,
                # Weight chosen so gold's fair-share bound saturates at
                # 1.0 (max_share 0.5 x weight 3 x 3 tenants / weight sum
                # 4.5): a share can never exceed 1, so gold is
                # structurally exempt from fair-share shedding and its
                # only bound is the quota — "zero gold sheds" holds even
                # when everyone else's work is being shed.
                quota_burst=20.0, weight=3.0,
            ),
            TenantSpec(
                tenant="silver-0", sla="silver",
                arrivals=PoissonArrivals(self.service_silver_rate),
                quota_rate=2.0 * self.service_silver_rate,
                quota_burst=10.0, weight=1.0,
            ),
            TenantSpec(
                tenant="best_effort-0", sla="best_effort",
                arrivals=OnOffArrivals(
                    on_rate=self.service_burst_rate,
                    on_duration=self.service_burst_on,
                    off_duration=self.service_burst_off,
                ),
                quota_rate=self.service_burst_rate,
                quota_burst=5.0, weight=0.5,
            ),
        ]
        return build_workload(
            tenants, self._template(), self.service_horizon, self.seed,
            name=f"{self.name}-service",
        )

    def ensemble(self) -> Ensemble:
        if self.is_service:
            return self.service_workload().ensemble
        return Ensemble.replicated(
            self._template(), self.n_workflows, interval=self.interval
        )

    def run_config(self) -> RunConfig:
        return RunConfig(
            default_timeout=self.timeout,
            timeout_check_interval=self.check_interval,
            record_jobs=False,
        )

    def build_engine(
        self, seed: int, horizon: float, journal: Optional[Journal] = None
    ) -> PullEngine:
        """Assemble the chaos-wired pull engine for one seeded run."""
        models: list = []
        if self.spot_rate_per_hour > 0:
            models.append(
                SpotTerminationModel.sample(
                    seed + _SALT_SPOT,
                    self.n_nodes,
                    horizon,
                    self.spot_rate_per_hour,
                    notice=self.spot_notice,
                    replacement_delay=self.spot_replacement_delay,
                    protected=self.spot_protected,
                    price_hazard=self.price_hazard or None,
                )
            )
        if self.p_partition > 0:
            models.append(
                NetworkPartitionModel.sample(
                    seed + _SALT_PARTITION,
                    self.n_nodes,
                    min(self.partition_horizon or horizon, horizon),
                    self.p_partition,
                    duration=self.partition_duration,
                    p_asymmetric=self.p_partition_asymmetric,
                    protected=self.partition_protected,
                )
            )
        if self.p_straggler > 0:
            models.append(
                StragglerModel.sample(
                    seed + _SALT_STRAGGLER,
                    self.n_nodes,
                    horizon,
                    self.p_straggler,
                    disk_factor=self.straggler_disk,
                    duration=self.straggler_duration,
                )
            )
        transient = None
        if self.p_fail > 0 or self.poison:
            transient = TransientFaultModel(
                p_fail=self.p_fail, seed=seed + _SALT_TRANSIENT, poison=self.poison
            )
        message_chaos = None
        if self.p_drop > 0 or self.p_duplicate > 0 or self.p_delay > 0:
            message_chaos = MessageChaos(
                p_drop=self.p_drop,
                p_duplicate=self.p_duplicate,
                p_delay=self.p_delay,
                delay=self.mq_delay,
                seed=seed + _SALT_MQ,
            )
        integrity_models: list = []
        if self.p_corrupt > 0 or self.corrupt_targets:
            integrity_models.append(
                FileCorruptionModel(
                    p=self.p_corrupt,
                    seed=seed + _SALT_CORRUPT,
                    targets=self.corrupt_targets,
                )
            )
        if self.p_file_loss > 0 or self.loss_targets:
            integrity_models.append(
                FileLossModel(
                    p=self.p_file_loss,
                    seed=seed + _SALT_LOSS,
                    targets=self.loss_targets,
                )
            )
        liveness = (
            LeaseConfig(
                heartbeat_interval=self.heartbeat_interval,
                miss_threshold=self.lease_miss_threshold,
            )
            if self.heartbeat_interval > 0
            else None
        )
        service = None
        admission = None
        if self.is_service:
            # Open-loop service mode: the policy embeds its own backlog
            # gate, so the closed-loop admission knob is ignored.
            service = ServiceAdmissionPolicy(
                admission=AdmissionControl(
                    max_pending_jobs=self.service_max_pending,
                    retry_after=self.admission_retry_after,
                ),
                brownout=BrownoutController(
                    thresholds=(0.5, 1.0, 1.5),
                    sustain=self.service_brownout_sustain,
                ),
                # Members are ~20 jobs, so the policy's default floor of
                # 8 would make fair-share bind on the very first member
                # and clamp the backlog before it can overshoot — the
                # brownout ladder would never engage.  Keep fair-share
                # as the tail guard behind brownout and the gate.
                fair_share_floor=6 * self.service_max_pending,
            )
            self.service_workload().wire(service)
        elif self.admission_max_pending > 0:
            admission = AdmissionControl(
                max_pending_jobs=self.admission_max_pending,
                retry_after=self.admission_retry_after,
            )
        failover = (
            MasterFailoverModel(self.failover_at, detection=self.failover_detection)
            if self.failover_at is not None
            else None
        )
        repriority = (
            RepriorityPolicy(
                aging_rate=self.repriority_aging,
                interval=self.repriority_interval,
            )
            if self.repriority
            else None
        )
        return PullEngine(
            self.spec(),
            config=self.run_config(),
            retry=self.retry_policy(),
            transient=transient,
            chaos_models=models,
            message_chaos=message_chaos,
            fault_trace=FaultTrace(),
            journal=journal,
            integrity_models=integrity_models,
            liveness=liveness,
            admission=admission,
            failover=failover,
            service=service,
            repriority=repriority,
        )


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` invocation."""

    scenario: str
    seed: int
    makespan: float
    baseline_makespan: float
    trace_text: str
    fault_counts: Dict[str, int]
    job_counts: Dict[str, Dict[str, int]]
    dead_letters: List
    resubmissions: int
    mq_chaos_stats: Dict[str, int]
    cost: float
    elastic_cost: float
    problems: List[str] = field(default_factory=list)
    #: Master crashes injected and survived (``crash_after`` scenarios).
    crashes: int = 0
    #: Write-ahead journal records / checkpoints of the certified run.
    journal_records: int = 0
    checkpoints: int = 0
    #: Data-plane recovery counters (``p_corrupt`` / ``p_file_loss``).
    data_recoveries: int = 0
    integrity_stats: Dict[str, int] = field(default_factory=dict)
    #: Liveness-plane tallies (heartbeat misses, lease fencings, stale
    #: acks, shed submissions, failovers, partitions, dead-letter depth)
    #: when the scenario enabled leases/partitions/failover/admission.
    liveness_stats: Dict[str, int] = field(default_factory=dict)
    #: The certified run's :class:`~repro.recovery.journal.Journal`
    #: (``crash_after`` scenarios only) — exportable via ``to_jsonl``.
    journal: Optional[Journal] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def n_dead(self) -> int:
        return len(self.dead_letters)

    def summary(self) -> str:
        lines = [
            f"scenario {self.scenario!r} seed={self.seed}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  makespan {self.makespan:.1f} s "
            f"(baseline {self.baseline_makespan:.1f} s, "
            f"x{self.makespan / max(self.baseline_makespan, 1e-9):.2f})",
            f"  resubmissions {self.resubmissions}, "
            f"dead letters {self.n_dead}, "
            f"cost ${self.cost:.2f} (elastic ${self.elastic_cost:.2f})",
        ]
        if self.fault_counts:
            injected = ", ".join(
                f"{kind} x{count}" for kind, count in sorted(self.fault_counts.items())
            )
            lines.append(f"  faults: {injected}")
        if self.mq_chaos_stats:
            lines.append(
                "  broker: "
                + ", ".join(
                    f"{k} {v}" for k, v in sorted(self.mq_chaos_stats.items())
                )
            )
        if self.journal_records:
            lines.append(
                f"  journal: {self.journal_records} record(s), "
                f"{self.checkpoints} checkpoint(s), "
                f"{self.crashes} crash(es) survived"
            )
        if self.liveness_stats:
            lines.append(
                "  liveness: "
                + ", ".join(
                    f"{k} {v}" for k, v in sorted(self.liveness_stats.items())
                )
            )
        if self.integrity_stats:
            lines.append(
                "  data plane: "
                + ", ".join(
                    f"{k} {v}" for k, v in sorted(self.integrity_stats.items())
                )
                + f"; {self.data_recoveries} recovery request(s)"
            )
        for entry in self.dead_letters:
            lines.append(
                f"  dead-letter {entry.workflow}/{entry.job_id}: "
                f"{entry.reason} after {entry.attempts} attempt(s)"
            )
        for problem in self.problems:
            lines.append(f"  INVARIANT VIOLATED: {problem}")
        return "\n".join(lines)


def _check_invariants(
    scenario: ChaosScenario, result, baseline_makespan: float
) -> List[str]:
    problems: List[str] = []
    san = _sanitizer._ACTIVE
    # Completion: nothing stranded at settlement.
    for name in sorted(result.job_counts):
        counts = result.job_counts[name]
        if san is not None:
            san.check_recovery(name, counts)
        stranded = sum(counts.values()) - counts.get("completed", 0) - counts.get(
            "dead", 0
        )
        if stranded:
            problems.append(
                f"{name}: {stranded} job(s) neither completed nor dead-lettered"
            )
    # Dead letters must be explainable by the scenario.
    expected = frozenset(scenario.expect_dead)
    if not expected:
        unexpected = [e for e in result.dead_letters if e.reason != "upstream-dead"]
        if unexpected:
            first = unexpected[0]
            problems.append(
                f"{len(unexpected)} unexpected dead letter(s), first: "
                f"{first.workflow}/{first.job_id} ({first.reason})"
            )
    else:
        direct = {
            e.job_id for e in result.dead_letters if e.reason != "upstream-dead"
        }
        if direct != expected:
            problems.append(
                f"dead-lettered jobs {sorted(direct)} != expected "
                f"{sorted(expected)}"
            )
    # Graceful degradation by class (open-loop service scenarios): the
    # ladder must have protected gold absolutely while best_effort
    # absorbed the overload.
    if scenario.is_service:
        stats = result.liveness_stats
        if stats.get("shed_gold", 0):
            problems.append(
                f"service shed {stats['shed_gold']} gold submission(s); "
                f"gold must never be shed"
            )
        if not stats.get("shed_best_effort", 0):
            problems.append(
                "overloaded service scenario shed no best_effort work "
                "(the admission ladder never engaged)"
            )
    # Bounded degradation (skipped when the scenario kills jobs outright:
    # a dead-lettered workflow settles early, so its makespan is not
    # comparable to the baseline's).
    if scenario.max_slowdown is not None and not expected:
        bound = baseline_makespan * scenario.max_slowdown + scenario.slowdown_slack
        if result.makespan > bound:
            problems.append(
                f"makespan {result.makespan:.1f} s exceeds bound {bound:.1f} s "
                f"(baseline {baseline_makespan:.1f} s "
                f"x {scenario.max_slowdown} + {scenario.slowdown_slack} s)"
            )
    return problems


def _compare_crash_resume(uninterrupted, resumed) -> List[str]:
    """Field-by-field equality between the uninterrupted run and the
    crash/resume run — validated replay promises *byte-identical*
    recovery, so any divergence is an invariant violation."""
    checks = [
        ("makespan", uninterrupted.makespan, resumed.makespan),
        ("workflow_spans", uninterrupted.workflow_spans, resumed.workflow_spans),
        ("jobs_executed", uninterrupted.jobs_executed, resumed.jobs_executed),
        ("resubmissions", uninterrupted.resubmissions, resumed.resubmissions),
        ("dead_letters", uninterrupted.dead_letters, resumed.dead_letters),
        ("job_counts", uninterrupted.job_counts, resumed.job_counts),
        ("mq_chaos_stats", uninterrupted.mq_chaos_stats, resumed.mq_chaos_stats),
        ("data_recoveries", uninterrupted.data_recoveries, resumed.data_recoveries),
        ("integrity_stats", uninterrupted.integrity_stats, resumed.integrity_stats),
        ("elastic_cost", uninterrupted.elastic_cost(), resumed.elastic_cost()),
        (
            "fault_trace",
            [e.line() for e in uninterrupted.fault_events],
            [e.line() for e in resumed.fault_events],
        ),
        (
            "journal",
            uninterrupted.journal.text() if uninterrupted.journal else "",
            resumed.journal.text() if resumed.journal else "",
        ),
    ]
    return [
        f"crash/resume divergence in {name}: {a!r} != {b!r}"
        for name, a, b in checks
        if a != b
    ]


def run_chaos(scenario: ChaosScenario, seed: Optional[int] = None) -> ChaosReport:
    """Run ``scenario`` (baseline, then under chaos) and check invariants.

    The costs are computed inside the run so the billing sanitizer hooks
    fire; lease conservation is checked by the engine at run end.

    When the scenario sets ``crash_after``, the chaos run is journaled
    and then repeated with a master crash injected at that journal
    offset; the resumed run must reproduce the uninterrupted result
    byte for byte (the validated-replay contract of
    :mod:`repro.recovery.journal`).
    """
    seed = scenario.seed if seed is None else seed
    if scenario.crash_after is not None and scenario.failover_at is not None:
        # The standby IS the crash recovery; replaying the same run with
        # a second, journal-offset crash would fence the fence.
        raise ValueError("crash_after and failover_at are mutually exclusive")
    baseline = PullEngine(scenario.spec(), config=scenario.run_config()).run(
        scenario.ensemble()
    )
    # Fault sampling horizon: the baseline tells us how long the run
    # plausibly is; stretch it so late-run faults still occur under the
    # slowdown the faults themselves cause.
    horizon = baseline.makespan * (scenario.max_slowdown or 2.0)
    journal = (
        Journal(checkpoint_every=scenario.checkpoint_every)
        if scenario.crash_after is not None or scenario.failover_at is not None
        else None
    )
    engine = scenario.build_engine(seed, horizon, journal=journal)
    result = engine.run(scenario.ensemble())
    problems = _check_invariants(scenario, result, baseline.makespan)
    crashes = 0
    if scenario.crash_after is not None:
        crash_journal = Journal(
            checkpoint_every=scenario.checkpoint_every,
            crash_after=scenario.crash_after,
        )
        resumed = resume_until_complete(
            lambda j: scenario.build_engine(seed, horizon, journal=j),
            scenario.ensemble,
            crash_journal,
        )
        crashes = crash_journal.resumes
        if crashes == 0:
            problems.append(
                f"crash_after={scenario.crash_after} never fired "
                f"(journal only has {len(crash_journal)} record(s))"
            )
        problems.extend(_compare_crash_resume(result, resumed))
    return ChaosReport(
        scenario=scenario.name,
        seed=seed,
        makespan=result.makespan,
        baseline_makespan=baseline.makespan,
        trace_text="\n".join(e.line() for e in result.fault_events),
        fault_counts={
            kind: sum(1 for e in result.fault_events if e.kind == kind)
            for kind in sorted({e.kind for e in result.fault_events})
        },
        job_counts=result.job_counts,
        dead_letters=list(result.dead_letters),
        resubmissions=result.resubmissions,
        mq_chaos_stats=dict(result.mq_chaos_stats),
        cost=result.cost(),
        elastic_cost=result.elastic_cost(),
        problems=problems,
        crashes=crashes,
        journal_records=len(journal) if journal is not None else 0,
        checkpoints=len(journal.checkpoint_history) if journal is not None else 0,
        data_recoveries=result.data_recoveries,
        integrity_stats=dict(result.integrity_stats),
        liveness_stats=dict(result.liveness_stats),
        journal=journal,
    )


#: Built-in scenarios, sized to run in seconds (CI smoke included).
SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="smoke",
            description="CI gate: a little of everything — one spot kill "
            "with replacement, transient failures, duplicated messages.",
            n_nodes=2,
            n_workflows=2,
            spot_rate_per_hour=120.0,
            spot_notice=2.0,
            spot_replacement_delay=5.0,
            p_fail=0.05,
            p_duplicate=0.05,
        ),
        ChaosScenario(
            name="spot",
            description="Spot-market cluster: frequent reclamations with "
            "the two-minute-notice drain and auto-scaling replacements.",
            n_nodes=4,
            n_workflows=6,
            spot_rate_per_hour=600.0,
            spot_notice=3.0,
            spot_replacement_delay=5.0,
            max_slowdown=4.0,
        ),
        ChaosScenario(
            name="poison",
            description="A job that fails every attempt: must be "
            "dead-lettered after the budget, cascading its descendants, "
            "while every other workflow completes.",
            n_nodes=2,
            n_workflows=2,
            max_attempts=3,
            poison=("mBgModel",),
            expect_dead=("mBgModel",),
        ),
        ChaosScenario(
            name="lossy-mq",
            description="Broker under partition: dropped, duplicated and "
            "delayed messages; recovery via dispatch-loss deadlines and "
            "idempotent acks.",
            n_nodes=2,
            n_workflows=2,
            timeout=6.0,
            p_drop=0.05,
            p_duplicate=0.05,
            p_delay=0.10,
            max_attempts=8,
            max_slowdown=6.0,
        ),
        ChaosScenario(
            name="master-crash",
            description="Kill the journaled master mid-run (transient "
            "failures and duplicate acks in flight), resume by validated "
            "replay; the recovered run must be byte-identical to the "
            "uninterrupted one.",
            n_nodes=2,
            n_workflows=2,
            p_fail=0.05,
            p_duplicate=0.05,
            crash_after=60,
            checkpoint_every=20,
        ),
        ChaosScenario(
            name="data-loss",
            description="Data-plane faults: a targeted corruption of an "
            "mProjectPP output plus random corruption/loss of shared-FS "
            "files; checksum verification must trigger minimal ancestor "
            "re-execution and input restaging with zero dead letters.",
            n_nodes=2,
            n_workflows=2,
            corrupt_targets=("*/p_000000.fits",),
            loss_targets=("*/raw_000003.fits",),
            p_corrupt=0.02,
            p_file_loss=0.02,
            max_slowdown=4.0,
        ),
        ChaosScenario(
            name="partition",
            description="Network partitions under heartbeat leases: "
            "isolated workers are fenced after missed beats and their "
            "in-flight jobs redispatched; healed uplinks replay buffered "
            "acks into the stale-epoch rejection path.",
            n_nodes=3,
            n_workflows=3,
            interval=0.5,
            timeout=8.0,
            heartbeat_interval=0.25,
            p_partition=0.9,
            partition_duration=(2.0, 5.0),
            p_partition_asymmetric=0.4,
            partition_horizon=6.0,
            max_slowdown=5.0,
        ),
        ChaosScenario(
            name="game-day",
            description="Game day: a partition, a spot reclamation, a "
            "straggling disk and a primary-master crash in one seeded "
            "run — leases fence the silent worker, the warm standby "
            "takes over behind a fencing token, admission control sheds "
            "load, and every job still settles exactly once.",
            # 24 slots against a 25-wide mProjectPP wave: the dispatch
            # backlog is real, so the admission gate actually sheds.
            instance_type="m3.2xlarge",
            size=0.8,
            n_nodes=3,
            n_workflows=3,
            interval=0.5,
            timeout=15.0,
            spot_rate_per_hour=200.0,
            spot_notice=1.0,
            spot_replacement_delay=5.0,
            p_straggler=0.5,
            straggler_disk=(0.2, 0.5),
            straggler_duration=(3.0, 8.0),
            heartbeat_interval=0.25,
            p_partition=0.9,
            partition_duration=(3.0, 6.0),
            p_partition_asymmetric=0.3,
            partition_horizon=20.0,
            failover_at=8.0,
            failover_detection=0.5,
            admission_max_pending=8,
            admission_retry_after=0.5,
            checkpoint_every=15,
            price_hazard=((0.0, 1.0), (60.0, 3.0)),
            max_slowdown=6.0,
            slowdown_slack=60.0,
        ),
        ChaosScenario(
            name="overload",
            description="Overload game day: open-loop multi-tenant "
            "arrival bursts composed with spot reclamations — while "
            "capacity comes and goes, the quota/fair-share/brownout "
            "ladder sheds best_effort first and keeps gold at zero "
            "sheds.",
            size=0.3,
            n_nodes=2,
            timeout=20.0,
            check_interval=0.5,
            spot_rate_per_hour=200.0,
            spot_notice=1.0,
            spot_replacement_delay=5.0,
            service_horizon=20.0,
            service_gold_rate=1.0,
            service_silver_rate=1.6,
            service_burst_rate=10.0,
            service_burst_on=4.0,
            service_burst_off=4.0,
            service_max_pending=24,
            max_slowdown=6.0,
            slowdown_slack=60.0,
        ),
        ChaosScenario(
            name="asynch-repriority",
            description="OSPREY-style asynch_repriority: the overloaded "
            "multi-tenant service runs its dispatch topic as a live "
            "priority queue — SLA bands keep gold structurally ahead of "
            "best_effort, every completion re-scores the member's "
            "still-queued jobs (critical path remaining + deadline "
            "slack), and the periodic aging sweep lifts starving "
            "best-effort work so nothing admitted waits forever.",
            size=0.3,
            n_nodes=2,
            timeout=20.0,
            check_interval=0.5,
            service_horizon=20.0,
            service_gold_rate=1.0,
            service_silver_rate=1.6,
            service_burst_rate=10.0,
            service_burst_on=4.0,
            service_burst_off=4.0,
            service_max_pending=24,
            repriority=True,
            repriority_aging=5.0,
            repriority_interval=2.0,
            max_slowdown=6.0,
            slowdown_slack=60.0,
        ),
        ChaosScenario(
            name="stragglers",
            description="Degraded-disk stragglers: nodes intermittently "
            "lose most of their disk bandwidth but jobs keep completing.",
            n_nodes=3,
            n_workflows=6,
            interval=0.5,
            p_straggler=0.8,
            straggler_disk=(0.1, 0.4),
            straggler_duration=(2.0, 6.0),
            max_slowdown=3.0,
        ),
    )
}


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown chaos scenario {name!r}; built-ins: {known}")
