"""Fault injection for the robustness experiments (paper §V.A.3)."""

from repro.faults.injection import FaultAction, FaultSchedule, kill_restart_cycle

__all__ = ["FaultAction", "FaultSchedule", "kill_restart_cycle"]
