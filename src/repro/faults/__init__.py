"""Fault injection and fault tolerance (paper §V.A.3, and beyond).

Three layers:

* :mod:`~repro.faults.injection` — the paper's *scripted* worker-daemon
  kill/restart schedules;
* :mod:`~repro.faults.models` — *stochastic* fault models (spot
  terminations with two-minute notice, transient/poison job failures,
  degraded straggler nodes), all sampled from explicit seeds;
* :mod:`~repro.faults.retry` — the unified retry policy: exponential
  backoff with deterministic jitter, per-job attempt budgets, and
  dead-lettering of poison jobs;
* :mod:`~repro.faults.chaos` — the chaos harness: named
  :class:`~repro.faults.chaos.ChaosScenario` runs with recovery
  invariants, driven by the ``repro-chaos`` CLI.

The chaos harness imports the execution engines, so its symbols are
re-exported lazily to keep ``repro.dewe`` (which imports the retry
policy) free of import cycles.
"""

from repro.faults.injection import FaultAction, FaultSchedule, kill_restart_cycle
from repro.faults.models import (
    ChaosAPI,
    Degradation,
    FaultEvent,
    FaultTrace,
    NetworkPartitionModel,
    PartitionWindow,
    SpotTerminationModel,
    StragglerModel,
    TransientFaultModel,
)
from repro.faults.retry import DeadLetterEntry, DeadLetterQueue, RetryPolicy

__all__ = [
    "ChaosAPI",
    "ChaosReport",
    "ChaosScenario",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "Degradation",
    "FaultAction",
    "FaultEvent",
    "FaultSchedule",
    "FaultTrace",
    "NetworkPartitionModel",
    "PartitionWindow",
    "RetryPolicy",
    "SCENARIOS",
    "SpotTerminationModel",
    "StragglerModel",
    "TransientFaultModel",
    "get_scenario",
    "kill_restart_cycle",
    "run_chaos",
]

_CHAOS_EXPORTS = frozenset(
    {"ChaosReport", "ChaosScenario", "SCENARIOS", "get_scenario", "run_chaos"}
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
