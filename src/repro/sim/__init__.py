"""Discrete-event simulation kernel.

A compact, dependency-free DES in the style of SimPy: generator-based
processes communicate through :class:`~repro.sim.engine.Event` objects and
share :mod:`~repro.sim.resources` (CPU core pools, processor-sharing
bandwidth links, FIFO stores).

The kernel is the substrate for the cluster simulator that replaces the
paper's Amazon EC2 testbed (see DESIGN.md §1).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    JoinEvent,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import (
    CorePool,
    FairShareLink,
    FifoStore,
    PriorityStore,
    SegmentLog,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CorePool",
    "Event",
    "FairShareLink",
    "FifoStore",
    "Interrupt",
    "JoinEvent",
    "PriorityStore",
    "Process",
    "SegmentLog",
    "SimulationError",
    "Simulator",
    "Timeout",
]
