"""Shared resources for the cluster simulator.

Three resource kinds cover everything the workflow engines need:

* :class:`CorePool` — a counting resource with a FIFO wait queue, used for
  vCPU cores (one slot per core, matching the worker daemon's "at most one
  thread per CPU" rule from paper §III.D).
* :class:`FairShareLink` — an exact processor-sharing (PS) bandwidth
  resource, used for disk read/write channels and network links.  PS models
  the kernel's fair I/O scheduling among concurrent streams: each of the
  ``n`` active transfers progresses at ``capacity / n``.
* :class:`FifoStore` — an unbounded FIFO hand-off queue, used by the
  scheduling engine's ready/slot feeds.
* :class:`PriorityStore` — a priority hand-off queue with a deterministic
  FIFO tie-break (publish sequence) and in-place reprioritization, used
  by the simulated message broker.

The PS link uses the standard virtual-time trick: because every active
stream receives the *same* service rate, per-stream progress is a single
shared scalar ``v`` (bytes served per stream).  A transfer of ``S`` bytes
admitted at virtual time ``v0`` completes when ``v`` reaches ``v0 + S``,
so completions are managed with one heap and one pending wake-up event —
O(log n) per transfer regardless of how often the active set changes.

Each resource keeps a :class:`SegmentLog` of its utilisation so the
monitoring layer can reconstruct mpstat/iostat-style time series (paper
§IV.A) without per-sample instrumentation overhead in the hot loop.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

import numpy as np

import repro.analysis.sanitizer as _sanitizer
from repro.sim.engine import Event, SimulationError, Simulator

__all__ = [
    "SegmentLog",
    "CorePool",
    "FairShareLink",
    "FifoStore",
    "PriorityStore",
]

_EPS = 1e-9


class SegmentLog:
    """A right-continuous step function recorded as change points.

    ``record(t, value)`` appends a change point; queries integrate or
    resample the step function.  Used for busy-core counts and link
    throughput.
    """

    __slots__ = ("times", "values", "_cum")

    def __init__(self, t0: float = 0.0, v0: float = 0.0):
        self.times: List[float] = [t0]
        self.values: List[float] = [v0]
        #: Running integral at each change point: _cum[i] is the integral
        #: of the step function over [times[0], times[i]].  Maintained
        #: incrementally so integrate() is O(log n) instead of rebuilding
        #: numpy arrays over the whole history per call.
        self._cum: List[float] = [0.0]

    def record(self, t: float, value: float) -> None:
        """Append a change point at ``t`` (must be non-decreasing)."""
        values = self.values
        if value == values[-1]:
            return
        times = self.times
        if t == times[-1]:
            # Same-instant update: overwrite instead of storing a
            # zero-length segment.
            values[-1] = value
            if len(times) >= 2 and values[-2] == value:
                times.pop()
                values.pop()
                self._cum.pop()
            return
        if t < times[-1]:
            raise ValueError(f"time went backwards: {t} < {times[-1]}")
        cum = self._cum
        cum.append(cum[-1] + (t - times[-1]) * values[-1])
        times.append(t)
        values.append(value)

    @property
    def current(self) -> float:
        return self.values[-1]

    def integrate(self, t_end: float) -> float:
        """Integral of the step function from its start to ``t_end``."""
        times = self.times
        if t_end <= times[0]:
            return 0.0
        idx = bisect_right(times, t_end) - 1
        return self._cum[idx] + (t_end - times[idx]) * self.values[idx]

    def sample(
        self, t_end: float, dt: float, t_start: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Time-weighted average of the step function per ``dt`` bucket.

        Mirrors the paper's 3-second mpstat/iostat sampling.  Returns
        ``(bucket_start_times, bucket_means)``.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if t_end <= t_start:
            return np.empty(0), np.empty(0)
        edges = np.arange(t_start, t_end, dt)
        edges = np.append(edges, t_end)  # final bucket may be partial
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        # Cumulative integral at every change point.
        seg_widths = np.diff(times)
        cum = np.concatenate(([0.0], np.cumsum(seg_widths * values[:-1])))

        def integral_at(t: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(times, t, side="right") - 1
            idx = np.clip(idx, 0, len(times) - 1)
            return cum[idx] + np.clip(t - times[idx], 0.0, None) * values[idx]

        area = np.diff(integral_at(edges))
        widths = np.diff(edges)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(widths > 0, area / widths, 0.0)
        return edges[:-1], means


class CorePool:
    """Counting resource with FIFO queueing (vCPU slots on a node)."""

    __slots__ = (
        "sim", "capacity", "busy", "name", "log", "_queue", "_cancelled",
        "_granted",
    )

    def __init__(self, sim: Simulator, capacity: int, name: str = "cores"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.busy = 0
        self.name = name
        self.log = SegmentLog(sim.now, 0.0)
        self._queue: Deque[Event] = deque()
        self._cancelled: set = set()
        # Shared already-triggered grant for the uncontended fast path:
        # callers only inspect ``triggered`` (and may yield, which
        # re-enters immediately), so one processed event serves every
        # immediate grant without an allocation or an agenda entry.
        self._granted = Event(sim).succeed()

    @property
    def available(self) -> int:
        return self.capacity - self.busy

    @property
    def queued(self) -> int:
        return len(self._queue) - len(self._cancelled)

    def acquire(self) -> Event:
        """Request one core; the returned event fires when it is granted."""
        if self.busy < self.capacity and not self._queue:
            self.busy += 1
            self.log.record(self.sim.now, self.busy)
            event = self._granted
        else:
            event = Event(self.sim)
            self._queue.append(event)
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_core_pool(self)
        return event

    def cancel(self, event: Event) -> bool:
        """Withdraw a queued acquire (worker daemon shut down while waiting)."""
        if event.triggered:
            return False
        self._cancelled.add(id(event))
        return True

    def release(self) -> None:
        """Return one core, handing it to the oldest live waiter if any.

        Over-releasing (a release with no matching acquire) raises
        immediately — *before* any state changes — instead of silently
        corrupting the availability count: a pool that believes it has
        more cores than the node would let the simulator overcommit CPUs
        and report impossible makespans.
        """
        if self.busy <= 0:
            raise SimulationError(
                f"{self.name}: release() without a matching acquire() "
                f"(busy={self.busy}, capacity={self.capacity}); every "
                f"release must pair with exactly one granted acquire"
            )
        queue = self._queue
        while queue:
            waiter = queue.popleft()
            if id(waiter) in self._cancelled:
                self._cancelled.discard(id(waiter))
                continue
            waiter.succeed()  # core stays busy, ownership transfers
            return
        self.busy -= 1
        self.log.record(self.sim.now, self.busy)
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_core_pool(self)


class FairShareLink:
    """Exact processor-sharing bandwidth resource (disk channel / NIC).

    ``transfer(nbytes)`` returns an event that fires when the stream has
    received ``nbytes`` of service under equal sharing of ``capacity``
    (bytes/second) among all concurrent streams.
    """

    __slots__ = (
        "sim",
        "capacity",
        "name",
        "log",
        "_v",
        "_last",
        "_n",
        "_heap",
        "_seq",
        "_wake_ev",
        "_wake_time",
        "bytes_total",
    )

    def __init__(self, sim: Simulator, capacity: float, name: str = "link"):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self.log = SegmentLog(sim.now, 0.0)  # aggregate throughput (B/s)
        self._v = 0.0  # virtual per-stream service (bytes)
        self._last = sim.now
        self._n = 0
        self._heap: list = []  # (v_target, seq, event)
        self._seq = 0
        self._wake_ev: Optional[Event] = None
        self._wake_time = 0.0
        self.bytes_total = 0.0

    @property
    def active(self) -> int:
        return self._n

    def _advance(self) -> None:
        now = self.sim.now
        if self._n > 0 and now > self._last:
            delta = (now - self._last) * self.capacity / self._n
            self._v += delta
            self.bytes_total += delta * self._n
        self._last = now

    def _reschedule(self) -> None:
        """Arm (or keep) the wake-up for the next completion.

        A pending wake-up that fires *no later* than the new target is
        reused: firing early is merely spurious (nothing is ripe, the
        wake re-arms itself), whereas firing late would delay a
        completion.  Since arrivals only push completions later, the
        common churn pattern — transfer starts while others are in
        flight — keeps one wake-up alive instead of cancelling and
        re-allocating an event per arrival.
        """
        wake = self._wake_ev
        if self._n == 0:
            if wake is not None:
                wake.cancel()
                self._wake_ev = None
            return
        v_next = self._heap[0][0]
        dt = (v_next - self._v) * self._n / self.capacity
        if dt < 0.0:
            dt = 0.0
        target = self.sim.now + dt
        if wake is not None:
            if wake.callbacks and self._wake_time <= target:
                return
            wake.cancel()  # fires too late (or already dead): supersede
        self._wake_ev = self.sim.schedule_call(dt, self._wake)
        self._wake_time = target

    def _wake(self) -> None:
        self._wake_ev = None
        self._advance()
        heap = self._heap
        fired = 0
        # Tolerance must scale with the magnitudes of both clocks.  The
        # virtual-byte clock: once v reaches ~1e9, double rounding leaves
        # residues far above any fixed epsilon.  The time clock: when the
        # remaining service converts to a dt below the float resolution of
        # `now`, the wake-up cannot advance time at all — so anything
        # within one clock quantum's worth of bytes counts as delivered.
        quantum = 1e-9 * max(1.0, self.sim.now)
        tol = (
            _EPS
            + 1e-9 * abs(self._v)
            + self.capacity * quantum / max(self._n, 1)
        )
        while heap and heap[0][0] <= self._v + tol:
            _v_target, _seq, event = heapq.heappop(heap)
            # _complete is succeed() for plain events and arrive() for
            # JoinEvents, so batched storage fan-outs finish without an
            # intermediate event per stream.
            event._complete()
            fired += 1
        self._n -= fired
        if self._n == 0:
            self.log.record(self.sim.now, 0.0)
            self._v = 0.0  # rebase the virtual clock between busy periods
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_link(self)
        self._reschedule()

    def set_capacity(self, capacity: float) -> None:
        """Change the link's bandwidth mid-run (degraded-disk faults).

        Service already received is settled at the old rate first, then
        pending completions are rescheduled at the new rate — active
        streams simply speed up or slow down from this instant.
        """
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self._advance()
        self.capacity = float(capacity)
        if self._n > 0:
            self.log.record(self.sim.now, self.capacity)
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_link(self)
        self._reschedule()

    def transfer(self, nbytes: float) -> Event:
        """Start a stream of ``nbytes``; returns its completion event."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        event = Event(self.sim)
        if nbytes == 0:
            return event.succeed()
        self._advance()
        if self._n == 0:
            self.log.record(self.sim.now, self.capacity)
        self._seq += 1
        heapq.heappush(self._heap, (self._v + nbytes, self._seq, event))
        self._n += 1
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_link(self)
        self._reschedule()
        return event

    def transfer_into(self, nbytes: float, event: Event) -> None:
        """Start a stream whose completion *arrives into* ``event``.

        ``event`` is normally a :class:`~repro.sim.engine.JoinEvent`
        counting several streams (its ``_complete`` is ``arrive``); the
        stream completes without allocating a per-stream event or an
        agenda entry.  A zero-byte stream arrives immediately.
        """
        if nbytes <= 0:
            if nbytes < 0:
                raise ValueError(f"negative transfer size: {nbytes}")
            event._complete()
            return
        self._advance()
        if self._n == 0:
            self.log.record(self.sim.now, self.capacity)
        self._seq += 1
        heapq.heappush(self._heap, (self._v + nbytes, self._seq, event))
        self._n += 1
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_link(self)
        self._reschedule()

    def transfer_many(self, sizes, event: Event) -> None:
        """Start one stream per entry of ``sizes``, all arriving into
        ``event``, with a *single* bandwidth re-partition for the batch.

        N same-instant starts on one link cost one ``_advance`` / log
        record / sanitizer check / wake-up reschedule instead of N —
        the streams are admitted at the same virtual time either way, so
        the heap ends up byte-identical to N ``transfer_into`` calls.
        """
        self._advance()
        v = self._v
        heap = self._heap
        seq = self._seq
        started = 0
        for nbytes in sizes:
            if nbytes <= 0:
                if nbytes < 0:
                    raise ValueError(f"negative transfer size: {nbytes}")
                event._complete()
                continue
            seq += 1
            heapq.heappush(heap, (v + nbytes, seq, event))
            started += 1
        self._seq = seq
        if started == 0:
            return
        if self._n == 0:
            self.log.record(self.sim.now, self.capacity)
        self._n += started
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_link(self)
        self._reschedule()


class FifoStore:
    """Unbounded FIFO queue with event-based ``get`` (simulated broker)."""

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter.triggered:
                continue  # cancelled getter
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def take(self, predicate) -> Any:
        """Synchronously remove and return the first queued item matching
        ``predicate``, or ``None`` if no current item matches (never
        blocks).  Used by schedulers that want to pick a *specific*
        resource token instead of the FIFO head."""
        items = self._items
        for index, item in enumerate(items):
            if predicate(item):
                del items[index]
                return item
        return None

    def peek_all(self) -> List[Any]:
        """The queued items in consumption order, without removing them."""
        return list(self._items)

    def remove_at(self, index: int) -> Any:
        """Remove and return the queued item at ``index`` (consumption
        order, 0 = next out)."""
        item = self._items[index]
        del self._items[index]
        return item

    def pop_nowait(self) -> Any:
        """Remove and return the next item, or ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def cancel(self, event: Event) -> bool:
        """Abandon a pending get (the event is failed so waiters wake up)."""
        if event.triggered:
            return False
        event.succeed(None)
        return True


class _PriorityEntry:
    """One queued :class:`PriorityStore` item.

    Slotted and mutable: ``reprioritize`` flips ``alive`` in place (lazy
    deletion) and re-publishes under the same ``seq``.  Heap order is
    ``(neg_priority, seq)``; ``seq`` is unique so comparison never falls
    through to the payload.
    """

    __slots__ = ("neg_priority", "seq", "item", "meta", "alive")

    def __init__(self, neg_priority: float, seq: int, item: Any, meta: Any):
        self.neg_priority = neg_priority
        self.seq = seq
        self.item = item
        self.meta = meta
        self.alive = True

    def __lt__(self, other: "_PriorityEntry") -> bool:
        if self.neg_priority != other.neg_priority:
            return self.neg_priority < other.neg_priority
        return self.seq < other.seq

    def key(self) -> Tuple[float, int]:
        return (self.neg_priority, self.seq)


class PriorityStore:
    """Priority hand-off queue with a deterministic FIFO tie-break.

    Higher ``priority`` values are consumed first; entries of equal
    priority leave in publish order (each entry carries a monotonically
    increasing sequence number, so ordering is a pure function of the
    ``put``/``reprioritize`` history — no ties, no hash order, no
    identity comparisons).

    The default-priority hot path stays O(1) *and allocation-free*: the
    store starts in a plain mode where the FIFO lane holds raw items —
    no entry record, no sequence stamp, no heap — so a workload that
    never sets a priority pays deque costs identical to
    :class:`FifoStore` (the fast-path microbench pins parity within
    10%).  The first prioritized/metadata put, ``reprioritize``,
    ``remove`` or ``snapshot`` materializes the queued items into
    :class:`_PriorityEntry` records (arrival order preserved) and the
    store stays in entry mode from then on.  ``reprioritize`` retags
    queued entries in place (lazy deletion + re-push under the *same*
    sequence number, so a reprioritized message keeps its arrival order
    within its new priority level).

    Each entry may carry an opaque ``meta`` value (the simulated broker
    stores its ``(klass, tag)`` shedding attribution there), which keeps
    message and metadata in one record instead of a parallel mirror that
    can desync.
    """

    __slots__ = (
        "sim", "_fifo", "_heap", "_getters", "_seq", "_live", "_dead", "_plain"
    )

    def __init__(self, sim: Simulator):
        self.sim = sim
        #: Plain mode: raw items.  Entry mode: ``_PriorityEntry`` records.
        self._fifo: Deque[Any] = deque()  # priority == 0.0 lane
        self._heap: List[_PriorityEntry] = []  # everything else (lazy deletion)
        self._getters: Deque[Event] = deque()
        self._seq = 0
        self._live = 0  # entry mode only; plain mode uses len(_fifo)
        self._dead = 0
        self._plain = True

    def __len__(self) -> int:
        return len(self._fifo) if self._plain else self._live

    def _materialize(self) -> None:
        """Switch (permanently) from raw items to entry records.

        Seqs are assigned in deque order — exactly arrival order, since
        plain mode implies no other entry exists anywhere yet."""
        if not self._plain:
            return
        self._plain = False
        entries: Deque[_PriorityEntry] = deque()
        for item in self._fifo:
            self._seq += 1
            entries.append(_PriorityEntry(0.0, self._seq, item, None))
        self._live = len(entries)
        self._fifo = entries

    def _pop_entry(self) -> Optional[_PriorityEntry]:
        """Remove and return the live entry with the best (priority, seq)
        key, or ``None`` when empty."""
        fifo, heap = self._fifo, self._heap
        while fifo and not fifo[0].alive:
            fifo.popleft()
            self._dead -= 1
        while heap and not heap[0].alive:
            heapq.heappop(heap)
            self._dead -= 1
        if fifo and heap:
            if heap[0] < fifo[0]:
                entry = heapq.heappop(heap)
            else:
                entry = fifo.popleft()
        elif fifo:
            entry = fifo.popleft()
        elif heap:
            entry = heapq.heappop(heap)
        else:
            return None
        entry.alive = False
        self._live -= 1
        return entry

    def put(self, item: Any, priority: float = 0.0, meta: Any = None) -> None:
        """Deposit an item, waking the oldest waiting getter if any.

        A waiting getter implies the queue is empty, so the item is
        handed over directly — priority only orders *queued* entries.
        """
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter.triggered:
                continue  # cancelled getter
            getter.succeed(item)
            return
        if self._plain:
            if meta is None and priority == 0.0:
                self._fifo.append(item)  # allocation-free fast path
                return
            self._materialize()
        self._seq += 1
        entry = _PriorityEntry(-priority, self._seq, item, meta)
        self._live += 1
        if priority == 0.0:
            self._fifo.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.sim)
        if self._plain:
            if self._fifo:
                event.succeed(self._fifo.popleft())
            else:
                self._getters.append(event)
            return event
        entry = self._pop_entry()
        if entry is not None:
            event.succeed(entry.item)
        else:
            self._getters.append(event)
        return event

    def pop_nowait(self) -> Any:
        """Remove and return the next item, or ``None`` when empty."""
        if self._plain:
            fifo = self._fifo
            return fifo.popleft() if fifo else None
        entry = self._pop_entry()
        return None if entry is None else entry.item

    def peek_all(self) -> List[Any]:
        """The queued items in consumption order, without removing them."""
        if self._plain:
            return list(self._fifo)
        return [entry.item for entry in self._ordered_live()]

    def snapshot(self) -> List[Tuple[int, Any, Any]]:
        """Live ``(seq, item, meta)`` triples in consumption order."""
        self._materialize()
        return [(e.seq, e.item, e.meta) for e in self._ordered_live()]

    def _ordered_live(self) -> List[_PriorityEntry]:
        live = [e for e in self._fifo if e.alive]
        live.extend(e for e in self._heap if e.alive)
        live.sort(key=_PriorityEntry.key)
        return live

    def remove(self, seq: int) -> bool:
        """Mark the live entry with sequence number ``seq`` dead (it will
        never be consumed).  O(n); used only on rare eviction paths."""
        self._materialize()
        for entry in self._fifo:
            if entry.seq == seq and entry.alive:
                self._kill(entry)
                return True
        for entry in self._heap:
            if entry.seq == seq and entry.alive:
                self._kill(entry)
                return True
        return False

    def _kill(self, entry: _PriorityEntry) -> None:
        entry.alive = False
        self._live -= 1
        self._dead += 1
        self._maybe_compact()

    def reprioritize(self, selector, priority: float) -> int:
        """Retag every queued entry for which ``selector(item, meta)`` is
        true with ``priority``, preserving each entry's original sequence
        number (so arrival order still breaks ties at the new level).
        Returns the number of entries retagged."""
        self._materialize()
        moved: List[_PriorityEntry] = []
        for entry in list(self._fifo) + self._heap:
            if (
                entry.alive
                and -entry.neg_priority != priority
                and selector(entry.item, entry.meta)
            ):
                entry.alive = False
                self._dead += 1
                moved.append(
                    _PriorityEntry(-priority, entry.seq, entry.item, entry.meta)
                )
        for entry in moved:
            heapq.heappush(self._heap, entry)
        self._maybe_compact()
        return len(moved)

    def _maybe_compact(self) -> None:
        """Purge dead entries once they outnumber live ones (bounds the
        garbage a reprioritize-heavy run can accumulate)."""
        if self._dead <= 64 or self._dead <= self._live:
            return
        self._fifo = deque(e for e in self._fifo if e.alive)
        self._heap = [e for e in self._heap if e.alive]
        heapq.heapify(self._heap)
        self._dead = 0

    def cancel(self, event: Event) -> bool:
        """Abandon a pending get (the event is failed so waiters wake up)."""
        if event.triggered:
            return False
        event.succeed(None)
        return True
