"""Event loop and process model for the discrete-event simulator.

The design follows the classic generator-coroutine DES pattern (SimPy):

* :class:`Simulator` owns a binary-heap agenda of ``(time, seq, event)``
  entries and a monotonically increasing sequence number that makes event
  ordering fully deterministic.
* :class:`Event` is a one-shot occurrence; processes ``yield`` events to
  suspend until they trigger.
* :class:`Process` wraps a generator and is itself an event that triggers
  when the generator returns (its value is the generator's return value).

Only the features the workflow engines need are implemented; the hot path
(schedule, pop, resume) avoids allocations beyond the heap entries
themselves, per the HPC guide's advice to keep inner loops lean.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

import repro.analysis.sanitizer as _sanitizer

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for illegal kernel operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries the value passed to ``interrupt`` (e.g. a fault
    description for the robustness experiments).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_SUCCEEDED = 1
_FAILED = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    Callbacks are callables of one argument (the event).  An event may be
    *succeeded* with a value or *failed* with an exception; waiting
    processes receive the value or get the exception thrown into them.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._state = _PENDING
        self._value: Any = None

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once processed)."""
        return self._state == _SUCCEEDED

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; callbacks run at the current time."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _SUCCEEDED
        self._value = value
        self.sim._schedule(0.0, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _FAILED
        self._value = exception
        self.sim._schedule(0.0, self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._state = _SUCCEEDED
        self._value = value
        sim._schedule(delay, self)


class Process(Event):
    """A running generator; also an event that fires on generator return."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        self._generator = generator
        # Bootstrap: resume once at the current time.  The boot event is
        # tracked in _waiting_on so interrupt() can cancel it like any
        # other pending wait.
        boot = Event(sim)
        self._waiting_on: Optional[Event] = boot
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Used by the fault-injection harness to model worker daemons being
        killed mid-job (paper §V.A.3).  Interrupting a finished process is
        a no-op so fault schedules may outlive their targets.
        """
        if not self.is_alive:
            return
        event = Event(self.sim)
        event.fail(Interrupt(cause))
        # Jump the interrupt ahead of whatever the process was waiting on.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        event.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        gen = self._generator
        while True:
            try:
                if event._state == _FAILED:
                    exc = event._value
                    target = gen.throw(exc)
                else:
                    target = gen.send(event._value)
            except StopIteration as stop:
                if self._state == _PENDING:
                    self._state = _SUCCEEDED
                    self._value = stop.value
                    self.sim._schedule(0.0, self)
                return
            except Interrupt:
                # Interrupt escaped the generator: treat as termination.
                if self._state == _PENDING:
                    self._state = _SUCCEEDED
                    self._value = None
                    self.sim._schedule(0.0, self)
                return
            except BaseException as exc:  # propagate failure to waiters
                if self._state == _PENDING:
                    self._state = _FAILED
                    self._value = exc
                    self.sim._schedule(0.0, self)
                    return
                raise
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process yielded {target!r}; processes must yield Event"
                )
            if target.callbacks is None:
                # Already processed: loop and resume immediately.
                event = target
                continue
            self._waiting_on = target
            target.callbacks.append(self._resume)
            return


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = 0
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._check)
        if self._state == _PENDING:
            self._finalize_empty()

    def _finalize_empty(self) -> None:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every component event has fired; value is their values."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if event._state == _FAILED:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending <= 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Fires when the first component event fires; value is that value."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if not self._events:
            self.succeed([])
        elif any(ev.callbacks is None for ev in self._events):
            first = next(ev for ev in self._events if ev.callbacks is None)
            if first._state == _FAILED:
                self.fail(first._value)
            else:
                self.succeed(first._value)

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if event._state == _FAILED:
            self.fail(event._value)
        else:
            self.succeed(event._value)


class Simulator:
    """The event loop.

    Time is a float in seconds.  Determinism: events scheduled for the
    same time fire in scheduling order (a global sequence number breaks
    ties), so repeated runs with the same seed are bit-identical.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0

    # -- scheduling ------------------------------------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_schedule(self.now, delay)
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def schedule_call(
        self, delay: float, func: Callable[..., Any], *args: Any
    ) -> Event:
        """Run ``func(*args)`` after ``delay``; returns the trigger event."""
        event = Timeout(self, delay)
        event.callbacks.append(lambda ev: func(*args))
        return event

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Process one event from the agenda."""
        time, _seq, event = heapq.heappop(self._heap)
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_step(self.now, time)
        self.now = time
        callbacks = event.callbacks
        event.callbacks = None  # marks the event as processed
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the agenda is empty or ``until`` is reached.

        Returns the simulation time at exit.
        """
        heap = self._heap
        if until is None:
            while heap:
                self.step()
        else:
            if until < self.now:
                raise ValueError(f"until={until} is in the past (now={self.now})")
            while heap and heap[0][0] <= until:
                self.step()
            if self.now < until:
                self.now = until
        return self.now

    def run_until(self, event: Event) -> float:
        """Run until ``event`` has been processed (not merely triggered).

        Engines use this to stop at ensemble completion even though
        service processes (worker pull loops, timeout checkers) still
        have events on the agenda.
        """
        heap = self._heap
        while event.callbacks is not None:
            if not heap:
                raise SimulationError(
                    "agenda exhausted before the awaited event triggered"
                )
            self.step()
        return self.now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
