"""Event loop and process model for the discrete-event simulator.

The design follows the classic generator-coroutine DES pattern (SimPy):

* :class:`Simulator` owns the event agenda and a monotonically increasing
  sequence number that makes event ordering fully deterministic.
* :class:`Event` is a one-shot occurrence; processes ``yield`` events to
  suspend until they trigger.
* :class:`Process` wraps a generator and is itself an event that triggers
  when the generator returns (its value is the generator's return value).

Hot-path design (docs/PERFORMANCE.md):

* The agenda is split into a binary heap for future events and a FIFO
  deque for zero-delay events.  Most events in a workflow run trigger "at
  the current instant" (``succeed``/``fail``, completed transfers, broker
  hand-offs); routing them through a deque avoids two O(log n) heap
  operations each.  Ordering is unchanged: events still fire in global
  ``(time, seq)`` order, because every heap entry that shares the current
  timestamp was necessarily scheduled at an earlier instant (and thus has
  a smaller sequence number), and the deque preserves FIFO within the
  instant.
* :class:`Call` is a closure-free deferred function call: ``(func, args)``
  are stored on the event itself and dispatched without allocating a
  lambda (one object per call instead of three).
* Abandoned timeouts are cancelled *lazily* (:meth:`Event.cancel`): the
  agenda entry stays where it is and is skipped for free when popped,
  instead of paying an O(n) heap removal.
* Dense short-horizon timers go through a timer wheel instead of the
  heap: a ring of ``wheel_slots`` buckets, each ``wheel_granularity``
  seconds wide, covering the near future.  Insertion is an O(1) list
  append; a bucket is sorted once (C-speed, on mostly-ordered data) when
  the clock reaches it, instead of paying two O(log n) heap operations
  per timer.  Timers beyond the wheel horizon fall back to the heap.
  Ordering is byte-identical to the heap-only agenda: entries keep their
  global ``(time, seq)`` key, buckets are sorted on that key before
  dispatch, and every pop compares the sorted bucket against the heap
  head (see :meth:`Simulator._flush_wheel` for the boundary invariant).
* The sanitizer-active check is cached on the simulator (``_san``) and
  refreshed at every ``run``/``run_until``/``step`` entry, so the
  disabled path costs nothing per scheduled event.  The run loops are
  inlined and dispatch same-instant callbacks in batches.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

import repro.analysis.sanitizer as _sanitizer

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "JoinEvent",
    "Timeout",
    "Call",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for illegal kernel operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries the value passed to ``interrupt`` (e.g. a fault
    description for the robustness experiments).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_SUCCEEDED = 1
_FAILED = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    Callbacks are callables of one argument (the event).  An event may be
    *succeeded* with a value or *failed* with an exception; waiting
    processes receive the value or get the exception thrown into them.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._state = _PENDING
        self._value: Any = None

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once processed)."""
        return self._state == _SUCCEEDED

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; callbacks run at the current time."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _SUCCEEDED
        self._value = value
        sim = self.sim
        sim._seq += 1
        sim._imm.append((sim._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _FAILED
        self._value = exception
        sim = self.sim
        sim._seq += 1
        sim._imm.append((sim._seq, self))
        return self

    def cancel(self) -> bool:
        """Lazily cancel a triggered-but-unprocessed event.

        The agenda entry is *not* removed (that would be O(n) on a heap);
        the callback list is emptied instead, so the dispatch loop skips
        the event for free when it surfaces.  Returns False if the event
        was already processed.  Only sensible for events nothing waits on
        (superseded wake-ups, abandoned timeouts).
        """
        callbacks = self.callbacks
        if callbacks is None:
            return False
        del callbacks[:]
        return True

    #: Completion protocol used by resources that finish many streams into
    #: one waiter: a plain event simply succeeds, a :class:`JoinEvent`
    #: counts down.  An alias instead of an isinstance check keeps the
    #: link wake-up loop monomorphic and branch-free.
    _complete = succeed


class JoinEvent(Event):
    """A counting barrier: fires after ``count`` calls to :meth:`arrive`.

    Replaces ``AllOf`` on the storage fan-out paths, where a read or
    write forks into several link streams that all complete into one
    waiter.  Unlike ``AllOf`` it needs no per-stream child events, no
    callback registrations, and no agenda entries for the intermediate
    completions — the final ``arrive`` triggers the join directly.
    """

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", count: int):
        Event.__init__(self, sim)
        self._pending = count
        if count <= 0:
            self.succeed()

    def arrive(self) -> None:
        """Record one completed stream; triggers the join on the last."""
        self._pending -= 1
        if self._pending == 0:
            self.succeed()

    _complete = arrive


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Flattened Event.__init__ + schedule: this is one of the hottest
        # allocation sites in an engine run.
        self.sim = sim
        self.callbacks = []
        self._state = _SUCCEEDED
        self._value = value
        self.delay = delay
        if delay == 0.0:
            sim._seq += 1
            sim._imm.append((sim._seq, self))
        else:
            sim._timed(sim.now + delay, self)


class Call(Timeout):
    """A deferred ``func(*args)`` with no closure allocation.

    The event dispatches itself: it sits in its own callback list, and
    calling it invokes the stored function.  ``Simulator.schedule_call``
    returns these; cancelling one (:meth:`Event.cancel`) drops the call.
    """

    __slots__ = ("func", "args")

    def __init__(self, sim: "Simulator", delay: float, func: Callable, args: tuple):
        Timeout.__init__(self, sim, delay)
        self.func = func
        self.args = args
        self.callbacks.append(self)

    def __call__(self, _event: Event) -> None:
        self.func(*self.args)


class Process(Event):
    """A running generator; also an event that fires on generator return."""

    __slots__ = ("_generator", "_waiting_on", "_bound_resume")

    def __init__(self, sim: "Simulator", generator: Generator):
        self.sim = sim
        self.callbacks = []
        self._state = _PENDING
        self._value = None
        self._generator = generator
        # One bound method reused for every wait (a fresh bound method per
        # yield is a measurable allocation cost at millions of events).
        resume = self._bound_resume = self._resume
        # Bootstrap: resume once at the current time.  The boot event is
        # tracked in _waiting_on so interrupt() can cancel it like any
        # other pending wait.
        boot = Event(sim)
        boot._state = _SUCCEEDED
        self._waiting_on: Optional[Event] = boot
        boot.callbacks.append(resume)
        sim._seq += 1
        sim._imm.append((sim._seq, boot))

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Used by the fault-injection harness to model worker daemons being
        killed mid-job (paper §V.A.3).  Interrupting a finished process is
        a no-op so fault schedules may outlive their targets.
        """
        if not self.is_alive:
            return
        event = Event(self.sim)
        event.fail(Interrupt(cause))
        # Jump the interrupt ahead of whatever the process was waiting on.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._bound_resume)
            except ValueError:
                pass
        self._waiting_on = None
        event.callbacks.append(self._bound_resume)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        gen = self._generator
        while True:
            try:
                if event._state == _FAILED:
                    exc = event._value
                    target = gen.throw(exc)
                else:
                    target = gen.send(event._value)
            except StopIteration as stop:
                if self._state == _PENDING:
                    self._state = _SUCCEEDED
                    self._value = stop.value
                    sim = self.sim
                    sim._seq += 1
                    sim._imm.append((sim._seq, self))
                return
            except Interrupt:
                # Interrupt escaped the generator: treat as termination.
                if self._state == _PENDING:
                    self._state = _SUCCEEDED
                    self._value = None
                    sim = self.sim
                    sim._seq += 1
                    sim._imm.append((sim._seq, self))
                return
            except BaseException as exc:  # propagate failure to waiters
                if self._state == _PENDING:
                    self._state = _FAILED
                    self._value = exc
                    sim = self.sim
                    sim._seq += 1
                    sim._imm.append((sim._seq, self))
                    return
                raise
            try:
                target_callbacks = target.callbacks
            except AttributeError:
                raise SimulationError(
                    f"process yielded {target!r}; processes must yield Event"
                ) from None
            if target_callbacks is None:
                # Already processed: loop and resume immediately.
                event = target
                continue
            self._waiting_on = target
            target_callbacks.append(self._bound_resume)
            return


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = 0
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._check)
        if self._state == _PENDING:
            self._finalize_empty()
        if self._state != _PENDING:
            # Triggered during registration (a component was already
            # processed): drop the remaining registrations right away so
            # losers don't keep dead callbacks alive.
            self._detach_losers(None)

    def _finalize_empty(self) -> None:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _detach_losers(self, winner: Optional[Event]) -> None:
        """Remove our callback from every still-pending component.

        Without this, a long-lived loser (an idle pull-loop consume, a
        never-firing fault event) accumulates one dead callback per
        composite it ever appeared in — memory growth plus dead dispatch
        work in long chaos runs.
        """
        check = self._check
        for ev in self._events:
            if ev is winner:
                continue
            callbacks = ev.callbacks
            if callbacks:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass


class AllOf(_Condition):
    """Fires when every component event has fired; value is their values."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if event._state == _FAILED:
            self.fail(event._value)
            self._detach_losers(event)
            return
        self._pending -= 1
        if self._pending <= 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Fires when the first component event fires; value is that value."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if not self._events:
            self.succeed([])
        elif any(ev.callbacks is None for ev in self._events):
            first = next(ev for ev in self._events if ev.callbacks is None)
            if first._state == _FAILED:
                self.fail(first._value)
            else:
                self.succeed(first._value)

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if event._state == _FAILED:
            self.fail(event._value)
        else:
            self.succeed(event._value)
        # First event wins: unsubscribe from the losers so they don't
        # dispatch into (or keep alive) an already-decided condition.
        self._detach_losers(event)


class Simulator:
    """The event loop.

    Time is a float in seconds.  Determinism: events scheduled for the
    same time fire in scheduling order (a global sequence number breaks
    ties), so repeated runs with the same seed are bit-identical.

    The agenda has two lanes sharing one sequence-number space: a timed
    lane for future events as ``(time, seq, event)`` and ``_imm`` for
    zero-delay events as ``(seq, event)``.  A timed entry whose time
    equals ``now`` was scheduled at an earlier instant, so its seq is
    smaller than that of any ``_imm`` entry (which was scheduled *at*
    ``now``); the dispatch loops exploit this to merge the lanes in exact
    ``(time, seq)`` order with one comparison.

    The timed lane is itself hierarchical: a timer wheel of
    ``wheel_slots`` ring buckets, each ``wheel_granularity`` seconds
    wide, absorbs timers landing within the wheel horizon
    (``slots * granularity`` seconds past the flush cursor), and ``_heap``
    holds everything beyond it.  Bucket insertion is an O(1) append; a
    bucket is sorted by ``(time, seq)`` into the ``_ready`` deque when the
    clock reaches it.  The ordering invariant: every entry still in the
    wheel lies at or past the flush boundary (``_wheel_next *
    granularity``), so whenever the heap head or the ready head precedes
    the boundary it precedes every unflushed bucket entry and may be
    popped without looking at the wheel.  ``wheel_granularity`` must be a
    power of two so ``time / granularity`` is exact in binary floating
    point — otherwise a timer could land in a bucket *behind* its own
    timestamp and fire late.  ``wheel_slots=0`` disables the wheel
    (pure heap agenda, same event order).

    The sanitizer hook is sampled at construction and refreshed at every
    ``run``/``run_until``/``step`` entry (see docs/PERFORMANCE.md);
    enabling the sanitizer mid-instant between ``step`` calls is
    supported, enabling it mid-``run`` is not.
    """

    def __init__(
        self, *, wheel_slots: int = 256, wheel_granularity: float = 1.0
    ) -> None:
        if wheel_slots < 0:
            raise ValueError(f"wheel_slots must be >= 0: {wheel_slots!r}")
        if wheel_granularity <= 0.0:
            raise ValueError(
                f"wheel_granularity must be positive: {wheel_granularity!r}"
            )
        if math.frexp(wheel_granularity)[0] != 0.5:
            raise ValueError(
                "wheel_granularity must be a power of two for exact "
                f"bucket arithmetic: {wheel_granularity!r}"
            )
        self.now: float = 0.0
        self._heap: list = []
        self._imm: deque = deque()
        self._seq: int = 0
        self._san = _sanitizer._ACTIVE
        # Timer wheel (see class docstring).  _wheel_next is the absolute
        # index of the next unflushed bucket; _ready holds the current
        # bucket, already sorted, awaiting dispatch.
        self._nslots: int = wheel_slots
        self._inv_gran: float = 1.0 / wheel_granularity
        self._gran: float = wheel_granularity
        self._wheel: list = [[] for _ in range(wheel_slots)]
        self._wheel_next: int = 0
        self._wheel_count: int = 0
        self._ready: deque = deque()

    # -- scheduling ------------------------------------------------------
    def _timed(self, time: float, event: Event) -> None:
        """Insert a future event at absolute ``time`` (wheel or heap)."""
        self._seq += 1
        base = self._wheel_next
        if self._wheel_count == 0:
            # Empty wheel: snap the cursor forward so the horizon starts
            # at the current instant instead of wherever the last flush
            # left it (time may have advanced arbitrarily far since).
            here = int(self.now * self._inv_gran)
            if here > base:
                self._wheel_next = base = here
        slot = int(time * self._inv_gran)
        if base <= slot < base + self._nslots:
            self._wheel[slot % self._nslots].append((time, self._seq, event))
            self._wheel_count += 1
        else:
            heapq.heappush(self._heap, (time, self._seq, event))

    def _flush_wheel(self) -> None:
        """Advance the flush cursor until a lane has the next timed event.

        Stops as soon as (a) the heap head precedes the flush boundary —
        every unflushed bucket entry lies at or past the boundary, so the
        heap head is globally next — or (b) a non-empty bucket was sorted
        into ``_ready``, or (c) the wheel drained.  Only called when
        ``_ready`` is empty and the wheel is not.
        """
        heap = self._heap
        wheel = self._wheel
        nslots = self._nslots
        gran = self._gran
        while self._wheel_count:
            if heap and heap[0][0] < self._wheel_next * gran:
                return
            bucket = wheel[self._wheel_next % nslots]
            self._wheel_next += 1
            if bucket:
                self._wheel_count -= len(bucket)
                bucket.sort()
                self._ready.extend(bucket)
                del bucket[:]
                return

    def _pop_timed(self) -> tuple:
        """Pop the next ``(time, seq, event)`` across heap, ready, wheel.

        Raises IndexError when all timed lanes are empty (matching the
        bare ``heappop`` the two-lane agenda used).
        """
        ready = self._ready
        if not ready and self._wheel_count:
            self._flush_wheel()
        heap = self._heap
        if ready:
            if heap and heap[0] < ready[0]:
                return heapq.heappop(heap)
            return ready.popleft()
        return heapq.heappop(heap)

    def _next_time(self) -> float:
        """Time of the next timed event, or ``inf``; flushes as needed."""
        ready = self._ready
        if not ready and self._wheel_count:
            self._flush_wheel()
        heap = self._heap
        if ready:
            if heap and heap[0][0] < ready[0][0]:
                return heap[0][0]
            return ready[0][0]
        return heap[0][0] if heap else float("inf")

    def _schedule(self, delay: float, event: Event) -> None:
        san = self._san
        if san is not None:
            san.check_schedule(self.now, delay)
        if delay == 0.0:
            self._seq += 1
            self._imm.append((self._seq, event))
        else:
            self._timed(self.now + delay, event)

    def schedule_call(
        self, delay: float, func: Callable[..., Any], *args: Any
    ) -> Call:
        """Run ``func(*args)`` after ``delay``; returns the trigger event.

        ``func`` and ``args`` are stored on the returned :class:`Call`
        directly — no closure is allocated, and the call can be withdrawn
        with :meth:`Event.cancel`.
        """
        return Call(self, delay, func, args)

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Process one event from the agenda."""
        self._san = san = _sanitizer._ACTIVE
        imm = self._imm
        heap = self._heap
        ready = self._ready
        now = self.now
        if imm:
            # A timed entry at the current instant outranks the imm lane
            # (it was scheduled at an earlier instant, so its seq is
            # smaller); both timed lanes can hold one.
            iseq = imm[0][0]
            timed = None
            if heap and heap[0][0] == now and heap[0][1] < iseq:
                timed = heap[0]
            if ready and ready[0][0] == now and ready[0][1] < iseq:
                if timed is None or ready[0][1] < timed[1]:
                    time, _seq, event = ready.popleft()
                else:
                    time, _seq, event = heapq.heappop(heap)
            elif timed is not None:
                time, _seq, event = heapq.heappop(heap)
            else:
                time = now
                event = imm.popleft()[1]
        else:
            time, _seq, event = self._pop_timed()
        if san is not None:
            san.check_step(self.now, time)
        self.now = time
        callbacks = event.callbacks
        event.callbacks = None  # marks the event as processed
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the agenda is empty or ``until`` is reached.

        Returns the simulation time at exit.
        """
        self._san = san = _sanitizer._ACTIVE
        heap = self._heap
        imm = self._imm
        ready = self._ready
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        if san is not None:
            if until is None:
                while imm or heap or ready or self._wheel_count:
                    self.step()
            else:
                while imm or self._next_time() <= until:
                    self.step()
                if self.now < until:
                    self.now = until
            return self.now
        # Fast path: inlined dispatch, no per-event method call, batched
        # same-instant callbacks (the imm lane drains without touching
        # the clock or the timed lanes).
        pop = heapq.heappop
        popleft = imm.popleft
        rpopleft = ready.popleft
        while True:
            if imm:
                now = self.now
                iseq = imm[0][0]
                if heap and heap[0][0] == now and heap[0][1] < iseq:
                    if ready and ready[0][0] == now and ready[0][1] < heap[0][1]:
                        event = rpopleft()[2]
                    else:
                        event = pop(heap)[2]
                elif ready and ready[0][0] == now and ready[0][1] < iseq:
                    event = rpopleft()[2]
                else:
                    event = popleft()[1]
            else:
                if not ready and self._wheel_count:
                    self._flush_wheel()
                if ready:
                    if heap and heap[0] < ready[0]:
                        entry = pop(heap)
                        in_ready = False
                    else:
                        entry = rpopleft()
                        in_ready = True
                elif heap:
                    entry = pop(heap)
                    in_ready = False
                else:
                    break
                time = entry[0]
                if until is not None and time > until:
                    if in_ready:
                        ready.appendleft(entry)
                    else:
                        heapq.heappush(heap, entry)
                    break
                self.now = time
                event = entry[2]
        # -- dispatch -----------------------------------------------
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    callback(event)
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until(self, event: Event) -> float:
        """Run until ``event`` has been processed (not merely triggered).

        Engines use this to stop at ensemble completion even though
        service processes (worker pull loops, timeout checkers) still
        have events on the agenda.
        """
        self._san = san = _sanitizer._ACTIVE
        heap = self._heap
        imm = self._imm
        ready = self._ready
        if san is not None:
            while event.callbacks is not None:
                if not (imm or heap or ready or self._wheel_count):
                    raise SimulationError(
                        "agenda exhausted before the awaited event triggered"
                    )
                self.step()
            return self.now
        pop = heapq.heappop
        popleft = imm.popleft
        rpopleft = ready.popleft
        while event.callbacks is not None:
            if imm:
                now = self.now
                iseq = imm[0][0]
                if heap and heap[0][0] == now and heap[0][1] < iseq:
                    if ready and ready[0][0] == now and ready[0][1] < heap[0][1]:
                        current = rpopleft()[2]
                    else:
                        current = pop(heap)[2]
                elif ready and ready[0][0] == now and ready[0][1] < iseq:
                    current = rpopleft()[2]
                else:
                    current = popleft()[1]
            else:
                if not ready and self._wheel_count:
                    self._flush_wheel()
                if ready:
                    if heap and heap[0] < ready[0]:
                        entry = pop(heap)
                    else:
                        entry = rpopleft()
                elif heap:
                    entry = pop(heap)
                else:
                    raise SimulationError(
                        "agenda exhausted before the awaited event triggered"
                    )
                self.now = entry[0]
                current = entry[2]
            callbacks = current.callbacks
            current.callbacks = None
            if callbacks:
                for callback in callbacks:
                    callback(current)
        return self.now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._imm:
            return self.now
        return self._next_time()
