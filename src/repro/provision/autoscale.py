"""Dynamic resource provisioning policies (paper §V.A.3).

"DEWE v2's capability of resuming workflow execution after interruption
of the worker daemon opens the door for dynamic resource provisioning...
When there are a large number of non-blocking jobs in the queue, more
worker nodes can be added to the cluster to speed up the execution.  When
there are a limited number of blocking jobs in the queue, some worker
nodes can be removed from the cluster to reduce cost.  Such dynamic
resource provisioning strategy might not be effective for public clouds
with a charge-by-hour model (such as AWS), but can be useful for public
clouds with a charge-by-minute model (such as Google Compute Engine)."

The paper could not evaluate this on AWS; this module implements it over
the simulator.  :func:`queue_depth_autoscaler` is the straightforward
policy from the quote: scale out while the dispatch queue is deep, scale
in while it is (nearly) empty — which is exactly the blocking stages.
The ablation benchmark ``test_ablation_elastic.py`` shows the predicted
billing-model interaction: per-minute billing rewards elasticity, the
2015 hourly model does not.
"""

from __future__ import annotations

from typing import Callable, Generator

__all__ = ["queue_depth_autoscaler"]


def queue_depth_autoscaler(
    min_nodes: int = 1,
    check_interval: float = 15.0,
    scale_out_depth: float = 32.0,
    scale_in_depth: float = 1.0,
    boot_delay: float = 45.0,
) -> Callable:
    """Build an autoscaler for :class:`~repro.engines.pull.PullEngine`.

    Parameters
    ----------
    min_nodes:
        Never drop below this many active worker daemons (node 0 also
        hosts the master in the paper's deployments).
    check_interval:
        Controller tick, seconds.
    scale_out_depth:
        Queue depth per *idle provisioned* node that triggers a start —
        one node's worth of slots waiting is the natural unit.
    scale_in_depth:
        Queue depth at or below which a node is released.
    boot_delay:
        Seconds between the start decision and the worker daemon joining
        (instance boot + cloud-init, as in the paper's MooseFS setup).

    Returns a generator function suitable for ``PullEngine(autoscaler=...)``.
    """
    if min_nodes < 1:
        raise ValueError(f"min_nodes must be >= 1, got {min_nodes}")
    if check_interval <= 0:
        raise ValueError(f"check_interval must be positive, got {check_interval}")
    if boot_delay < 0:
        raise ValueError(f"boot_delay must be >= 0, got {boot_delay}")

    def controller(api) -> Generator:
        sim = api.sim
        booting: set = set()

        def join(node_index: int) -> None:
            booting.discard(node_index)
            api.start_worker(node_index)

        while not api.finished:
            yield sim.timeout(check_interval)
            if api.finished:
                return
            depth = api.queue_depth()
            active = set(api.active_nodes())
            idle_pool = [
                i for i in range(api.n_nodes) if i not in active and i not in booting
            ]
            if depth >= scale_out_depth and idle_pool:
                node_index = idle_pool[0]
                booting.add(node_index)
                sim.schedule_call(boot_delay, join, node_index)
            elif depth <= scale_in_depth and len(active) > min_nodes:
                # Release the highest-numbered node (node 0 stays for the
                # master); graceful, so in-flight jobs finish first.
                victim = max(active)
                if victim >= min_nodes:
                    api.stop_worker(victim)

    return controller
