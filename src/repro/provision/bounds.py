"""Makespan lower bounds for sanity-checking plans and runs.

Two classic bounds apply to any engine on any homogeneous cluster:

* **critical path** — the runtime-weighted longest path, unavoidable even
  with infinite workers (the Montage blocking stage is mostly this);
* **work bound** — total CPU seconds divided by total cores.

For an ensemble, the work bound sums members and the critical-path bound
takes the latest ``submit_time + cp`` over members.  Every simulated or
real run must respect ``makespan >= ensemble_lower_bound`` (asserted by
property tests), and a provisioning plan promising less than the bound is
infeasible regardless of the performance index — a cheap early check
before renting anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.cluster import ClusterSpec
from repro.workflow.analysis import critical_path
from repro.workflow.dag import Workflow
from repro.workflow.ensemble import Ensemble

__all__ = ["MakespanBounds", "workflow_bounds", "ensemble_lower_bound", "check_plan_feasible"]


@dataclass(frozen=True)
class MakespanBounds:
    """Lower bounds for one workload on one cluster."""

    critical_path: float
    work_bound: float

    @property
    def lower_bound(self) -> float:
        return max(self.critical_path, self.work_bound)


def workflow_bounds(workflow: Workflow, spec: ClusterSpec) -> MakespanBounds:
    """Bounds for a single workflow on ``spec`` (speed-adjusted)."""
    speeds = [t.cpu_speed for t in spec.node_itypes()]
    best_speed = max(speeds)
    effective_cores = sum(
        t.vcpus * t.cpu_speed for t in spec.node_itypes()
    )
    cp, _path = critical_path(workflow)
    return MakespanBounds(
        critical_path=cp / best_speed,
        work_bound=workflow.total_runtime() / effective_cores,
    )


def ensemble_lower_bound(ensemble: Ensemble, spec: ClusterSpec) -> float:
    """Makespan lower bound for an ensemble with its submission plan."""
    speeds = [t.cpu_speed for t in spec.node_itypes()]
    best_speed = max(speeds)
    effective_cores = sum(t.vcpus * t.cpu_speed for t in spec.node_itypes())
    total_work = 0.0
    cp_bound = 0.0
    for submit_time, wf in ensemble:
        total_work += wf.total_runtime()
        cp, _ = critical_path(wf)
        cp_bound = max(cp_bound, submit_time + cp / best_speed)
    return max(cp_bound, total_work / effective_cores)


def check_plan_feasible(
    workflow: Workflow, spec: ClusterSpec, workflows: int, deadline: float
) -> bool:
    """Can ``workflows`` copies possibly finish within ``deadline``?

    A necessary (not sufficient) condition; the planner's Eq. 2 estimate
    should always pass it, and a False here means no amount of index
    optimism will save the plan.
    """
    if workflows < 1:
        raise ValueError(f"workflows must be >= 1, got {workflows}")
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline}")
    bounds = workflow_bounds(workflow, spec)
    total_work_time = workflows * workflow.total_runtime() / sum(
        t.vcpus * t.cpu_speed for t in spec.node_itypes()
    )
    return max(bounds.critical_path, total_work_time) <= deadline
