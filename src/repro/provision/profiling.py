"""Profiling campaigns (paper §IV.A).

"We begin with small scale experiments to profile the resource
consumption patterns of the workflow ensemble.  Based on the small scale
testing results we derive the performance index of a worker node."

Two experiment families, mirroring the paper exactly:

* **single-node tests** — up to ``max_workflows`` copies of the template
  workflow on a one-node cluster (Fig 5a): execution time should grow
  linearly with the workload;
* **multi-node tests** — a fixed ``multi_node_workflows``-copy ensemble
  on 2..``max_nodes`` nodes (Fig 5b): execution time falls with cluster
  size but flattens; the node performance index per point (Fig 5c)
  converges to the value used for provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cloud.cluster import ClusterSpec
from repro.engines.base import RunConfig
from repro.engines.pull import PullEngine
from repro.provision.index import converged_index, node_performance_index
from repro.workflow.dag import Workflow
from repro.workflow.ensemble import Ensemble

__all__ = ["SingleNodeProfile", "MultiNodeProfile", "ProfilingCampaign"]


@dataclass
class SingleNodeProfile:
    """Fig 5a data for one instance type."""

    instance_type: str
    workflow_counts: List[int]
    execution_times: List[float]

    def index_at(self, i: int) -> float:
        return node_performance_index(
            self.workflow_counts[i], 1, self.execution_times[i]
        )


@dataclass
class MultiNodeProfile:
    """Fig 5b/5c data for one instance type."""

    instance_type: str
    workflows: int
    node_counts: List[int]
    execution_times: List[float]
    indices: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.indices:
            self.indices = [
                node_performance_index(self.workflows, n, t)
                for n, t in zip(self.node_counts, self.execution_times)
            ]

    @property
    def converged(self) -> float:
        """The large-cluster performance index (Fig 5c tail)."""
        return converged_index(self.indices)


class ProfilingCampaign:
    """Runs the paper's profiling experiments in the simulator.

    Parameters
    ----------
    template:
        The workflow to profile (e.g. a 6.0-degree Montage).
    filesystem:
        Shared FS used in multi-node profiling (the paper used NFS here).
    engine_factory:
        Alternative engine constructor for ablations; defaults to
        :class:`~repro.engines.pull.PullEngine`.
    """

    def __init__(
        self,
        template: Workflow,
        filesystem: str = "nfs-nton",
        run_config: Optional[RunConfig] = None,
        engine_factory: Optional[Callable[..., object]] = None,
    ):
        self.template = template
        self.filesystem = filesystem
        self.run_config = run_config or RunConfig(record_jobs=False)
        self.engine_factory = engine_factory or PullEngine

    def _run(self, instance_type: str, n_nodes: int, n_workflows: int) -> float:
        fs = "local" if n_nodes == 1 else self.filesystem
        spec = ClusterSpec(instance_type, n_nodes, filesystem=fs)
        engine = self.engine_factory(spec, self.run_config)
        ensemble = Ensemble.replicated(self.template, n_workflows)
        return engine.run(ensemble).makespan

    def single_node(
        self, instance_type: str, workflow_counts: Sequence[int] = (1, 2, 4, 6, 8, 10)
    ) -> SingleNodeProfile:
        """Fig 5a: workload sweep on one node."""
        times = [self._run(instance_type, 1, w) for w in workflow_counts]
        return SingleNodeProfile(
            instance_type=instance_type,
            workflow_counts=list(workflow_counts),
            execution_times=times,
        )

    def multi_node(
        self,
        instance_type: str,
        node_counts: Sequence[int] = (2, 3, 4, 5, 6),
        workflows: int = 20,
    ) -> MultiNodeProfile:
        """Fig 5b/5c: cluster-size sweep at a fixed workload."""
        times = [self._run(instance_type, n, workflows) for n in node_counts]
        return MultiNodeProfile(
            instance_type=instance_type,
            workflows=workflows,
            node_counts=list(node_counts),
            execution_times=times,
        )
