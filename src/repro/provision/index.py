"""Node performance index (paper §IV.B).

Equation 1:  P = W / (N * T)
    "how much of a workflow can be completed by one worker node in one
    second" — W workflows on N nodes finishing in T seconds.

Equation 2:  N = W / (P * T)
    the number of worker nodes needed to finish W workflows within the
    deadline T, given the converged large-cluster index P.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["node_performance_index", "required_nodes", "converged_index"]


def node_performance_index(workflows: float, nodes: int, seconds: float) -> float:
    """Eq. 1: workflows per node-second."""
    if workflows <= 0:
        raise ValueError(f"workflows must be positive, got {workflows}")
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return workflows / (nodes * seconds)


def required_nodes(workflows: float, index: float, deadline: float) -> int:
    """Eq. 2: nodes needed to finish ``workflows`` within ``deadline``.

    Rounded up — renting a fraction of a node is impossible and rounding
    down would miss the deadline.
    """
    if workflows <= 0:
        raise ValueError(f"workflows must be positive, got {workflows}")
    if index <= 0:
        raise ValueError(f"index must be positive, got {index}")
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline}")
    return max(1, math.ceil(workflows / (index * deadline)))


def converged_index(indices: Sequence[float], tail: int = 2) -> float:
    """Large-cluster index estimate from a cluster-size sweep (Fig 5c).

    Clustering performance degradation makes P fall as N grows and
    "gradually converge when the number of worker nodes is greater
    than 4" (§IV.B); the estimate is the mean of the last ``tail``
    sweep points.
    """
    if not indices:
        raise ValueError("need at least one index measurement")
    if tail < 1:
        raise ValueError(f"tail must be >= 1, got {tail}")
    tail_values = list(indices)[-tail:]
    return sum(tail_values) / len(tail_values)
