"""Submission-interval tuning (paper §V.A.2's future work).

The paper shows that incremental submission with a well-chosen interval
beats batch submission (Fig 8) and leaves "the investigation of more
sophisticated submission strategies" as future work.  This module
provides the obvious next step: choose the interval *by simulation* —
profile the ensemble on the target cluster across a candidate grid and
pick the interval minimising the makespan (or a makespan/cost blend).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cloud.cluster import ClusterSpec
from repro.engines.base import RunConfig
from repro.engines.pull import PullEngine
from repro.workflow.dag import Workflow
from repro.workflow.ensemble import Ensemble

__all__ = ["IntervalSweep", "tune_submission_interval"]


@dataclass
class IntervalSweep:
    """Result of an interval search."""

    intervals: List[float]
    makespans: List[float]
    best_interval: float
    best_makespan: float

    @property
    def batch_makespan(self) -> float:
        """Makespan at interval 0 (batch submission)."""
        try:
            index = self.intervals.index(0.0)
        except ValueError:
            return float("nan")
        return self.makespans[index]

    @property
    def speedup_vs_batch(self) -> float:
        batch = self.batch_makespan
        if batch != batch or batch <= 0:  # NaN guard
            return 0.0
        return (batch - self.best_makespan) / batch


def tune_submission_interval(
    template: Workflow,
    spec: ClusterSpec,
    n_workflows: int,
    candidates: Optional[Sequence[float]] = None,
    config: Optional[RunConfig] = None,
) -> IntervalSweep:
    """Search the submission interval minimising the ensemble makespan.

    ``candidates`` defaults to a grid from 0 (batch) to 40% of the
    single-workflow makespan — the region in which Fig 8's optimum falls.
    Deterministic: the simulator makes repeated evaluation exact, so no
    replication is needed.
    """
    if n_workflows < 2:
        raise ValueError("interval tuning needs at least 2 workflows")
    config = config or RunConfig(record_jobs=False)
    if candidates is None:
        base = PullEngine(spec, config).run(Ensemble([template])).makespan
        candidates = [round(base * f) for f in (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4)]
    seen = sorted(set(float(c) for c in candidates))
    if any(c < 0 for c in seen):
        raise ValueError("intervals must be >= 0")

    makespans: List[float] = []
    for interval in seen:
        ensemble = Ensemble.replicated(template, n_workflows, interval=interval)
        makespans.append(PullEngine(spec, config).run(ensemble).makespan)
    best_makespan, best_interval = min(zip(makespans, seen))
    return IntervalSweep(
        intervals=list(seen),
        makespans=makespans,
        best_interval=best_interval,
        best_makespan=best_makespan,
    )
