"""Cluster planning under cost and deadline constraints (paper §V.B).

Given the converged node performance index of each candidate instance
type, Eq. 2 sizes the cluster for the target workload and deadline; the
planner then prices each design under hourly billing and reports them
(Table III).  The paper sets T = 3300 s (55 minutes) for W = 200 because
EC2 bills whole hours — finishing just inside the hour minimises cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.cluster import ClusterSpec
from repro.cloud.instances import get_instance_type
from repro.cloud.pricing import BillingModel, cluster_cost
from repro.provision.index import required_nodes

__all__ = ["ClusterPlan", "plan_cluster", "plan_table", "PAPER_INDICES"]

#: The paper's estimated large-cluster node performance indices (§IV.B):
#: "0.0015, 0.0024, and 0.0026 for clusters with c3.8xlarge, r3.8xlarge,
#: and i2.8xlarge instance types".
PAPER_INDICES: Dict[str, float] = {
    "c3.8xlarge": 0.0015,
    "r3.8xlarge": 0.0024,
    "i2.8xlarge": 0.0026,
}


@dataclass(frozen=True)
class ClusterPlan:
    """One provisioning decision with its predicted cost."""

    spec: ClusterSpec
    workflows: int
    deadline: float
    performance_index: float
    predicted_time: float
    predicted_cost: float

    @property
    def meets_deadline(self) -> bool:
        return self.predicted_time <= self.deadline

    @property
    def price_per_workflow(self) -> float:
        return self.predicted_cost / self.workflows


def plan_cluster(
    instance_type: str,
    workflows: int,
    deadline: float,
    index: Optional[float] = None,
    filesystem: str = "moosefs",
    billing: BillingModel = BillingModel.PER_HOUR,
) -> ClusterPlan:
    """Size a cluster of ``instance_type`` for the workload (Eq. 2)."""
    if workflows < 1:
        raise ValueError(f"workflows must be >= 1, got {workflows}")
    itype = get_instance_type(instance_type)
    if index is None:
        index = PAPER_INDICES.get(instance_type)
        if index is None:
            raise ValueError(
                f"no performance index known for {instance_type!r}; "
                "profile it first (repro.provision.ProfilingCampaign)"
            )
    n_nodes = required_nodes(workflows, index, deadline)
    predicted_time = workflows / (index * n_nodes)
    return ClusterPlan(
        spec=ClusterSpec(instance_type, n_nodes, filesystem=filesystem),
        workflows=workflows,
        deadline=deadline,
        performance_index=index,
        predicted_time=predicted_time,
        predicted_cost=cluster_cost(itype, n_nodes, predicted_time, billing),
    )


def plan_table(
    workflows: int = 200,
    deadline: float = 3300.0,
    indices: Optional[Dict[str, float]] = None,
    filesystem: str = "moosefs",
) -> List[ClusterPlan]:
    """Regenerate Table III: one plan per candidate instance type.

    With the paper's indices, W=200 and T=3300 s this yields 40 c3, 25 r3
    and 23 i2 nodes.
    """
    indices = indices or PAPER_INDICES
    return [
        plan_cluster(name, workflows, deadline, index, filesystem)
        for name, index in indices.items()
    ]
