"""Profiling-based resource provisioning (paper §IV).

The strategy: run *small-scale* profiling experiments (single-node
workload sweep, multi-node cluster-size sweep), derive the **node
performance index** P = W / (N * T) (Eq. 1), observe its convergence as
clusters grow (clustering performance degradation, Fig 5c), and size the
production cluster as N = W / (P * T) (Eq. 2) to meet deadline T for
workload W at minimal cost.
"""

from repro.provision.autoscale import queue_depth_autoscaler
from repro.provision.bounds import (
    check_plan_feasible,
    ensemble_lower_bound,
    workflow_bounds,
)
from repro.provision.index import (
    converged_index,
    node_performance_index,
    required_nodes,
)
from repro.provision.planner import PAPER_INDICES, ClusterPlan, plan_cluster, plan_table
from repro.provision.profiling import (
    MultiNodeProfile,
    ProfilingCampaign,
    SingleNodeProfile,
)

__all__ = [
    "ClusterPlan",
    "PAPER_INDICES",
    "MultiNodeProfile",
    "ProfilingCampaign",
    "SingleNodeProfile",
    "check_plan_feasible",
    "converged_index",
    "ensemble_lower_bound",
    "workflow_bounds",
    "node_performance_index",
    "plan_cluster",
    "plan_table",
    "queue_depth_autoscaler",
    "required_nodes",
]
