"""CyberShake post-processing workflow generator.

CyberShake (paper ref [3]) computes physics-based seismic hazard curves.
The post-processing workflow for one site extracts strain Green tensors
(SGTs) for each rupture, synthesises seismograms for every rupture
variation, computes peak intensity values, and aggregates the results:

    ExtractSGT (per rupture)
        -> SeismogramSynthesis (per variation, fan-out)
            -> PeakValCalc (per variation)
                -> ZipSeis / ZipPSA (global aggregators)

The fan-out per rupture is large and the aggregators are blocking, giving
an I/O-heavy contrast to Montage (the SGT files are big).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workflow.dag import DataFile, Workflow

__all__ = ["cybershake_workflow"]

SGT_BYTES = 400e6          # strain Green tensor slab per rupture
SEISMOGRAM_BYTES = 0.5e6
PSA_BYTES = 0.1e6
ZIP_BYTES = 50e6

RUNTIME = {
    "ExtractSGT": 30.0,
    "SeismogramSynthesis": 12.0,
    "PeakValCalc": 0.6,
    "ZipSeis": 40.0,
    "ZipPSA": 15.0,
}


def cybershake_workflow(
    ruptures: int = 20,
    variations: int = 15,
    name: Optional[str] = None,
    jitter: float = 0.0,
    seed: int = 0,
) -> Workflow:
    """Generate a CyberShake-post-processing-shaped workflow.

    Parameters
    ----------
    ruptures:
        Number of rupture SGT extractions.
    variations:
        Seismogram variations per rupture (fan-out width).
    """
    if ruptures < 1 or variations < 1:
        raise ValueError("ruptures and variations must be >= 1")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    if name is None:
        name = f"cybershake-{ruptures}x{variations}"
    wf = Workflow(name)
    rng = np.random.default_rng(seed) if jitter > 0 else None

    def runtime_of(task_type: str) -> float:
        base = RUNTIME[task_type]
        if rng is not None:
            base *= float(rng.lognormal(0.0, jitter))
        return base

    seismograms = []
    psa_files = []
    for r in range(ruptures):
        master_sgt = DataFile(f"{name}/sgt_master_{r:04d}.sgt", SGT_BYTES, "input")
        sgt = DataFile(f"{name}/sgt_{r:04d}.sgt", SGT_BYTES * 0.5)
        wf.new_job(
            f"ExtractSGT_{r:04d}",
            "ExtractSGT",
            runtime=runtime_of("ExtractSGT"),
            inputs=[master_sgt],
            outputs=[sgt],
        )
        for v in range(variations):
            seis = DataFile(f"{name}/seis_{r:04d}_{v:04d}.grm", SEISMOGRAM_BYTES)
            seismograms.append(seis)
            wf.new_job(
                f"SeismogramSynthesis_{r:04d}_{v:04d}",
                "SeismogramSynthesis",
                runtime=runtime_of("SeismogramSynthesis"),
                inputs=[sgt],
                outputs=[seis],
            )
            wf.add_dependency(
                f"ExtractSGT_{r:04d}", f"SeismogramSynthesis_{r:04d}_{v:04d}"
            )
            psa = DataFile(f"{name}/psa_{r:04d}_{v:04d}.bsa", PSA_BYTES)
            psa_files.append(psa)
            wf.new_job(
                f"PeakValCalc_{r:04d}_{v:04d}",
                "PeakValCalc",
                runtime=runtime_of("PeakValCalc"),
                inputs=[seis],
                outputs=[psa],
            )
            wf.add_dependency(
                f"SeismogramSynthesis_{r:04d}_{v:04d}", f"PeakValCalc_{r:04d}_{v:04d}"
            )

    zip_seis = DataFile(f"{name}/seismograms.zip", ZIP_BYTES, "output")
    wf.new_job(
        "ZipSeis",
        "ZipSeis",
        runtime=runtime_of("ZipSeis"),
        inputs=list(seismograms),
        outputs=[zip_seis],
    )
    zip_psa = DataFile(f"{name}/peak_values.zip", ZIP_BYTES * 0.2, "output")
    wf.new_job(
        "ZipPSA",
        "ZipPSA",
        runtime=runtime_of("ZipPSA"),
        inputs=list(psa_files),
        outputs=[zip_psa],
    )
    for r in range(ruptures):
        for v in range(variations):
            wf.add_dependency(f"SeismogramSynthesis_{r:04d}_{v:04d}", "ZipSeis")
            wf.add_dependency(f"PeakValCalc_{r:04d}_{v:04d}", "ZipPSA")

    return wf
