"""LIGO inspiral-analysis workflow generator.

The LIGO inspiral pipeline (paper ref [2]) searches gravitational-wave
strain data for compact-binary coalescence signals.  Its DAG shape is a
two-round matched-filter cascade:

    TmpltBank (N)  ->  Inspiral (N)  ->  Thinca (per group)
                   ->  TrigBank (N)  ->  Inspiral2 (N) -> Thinca2 (per group)

Each analysis block processes an independent segment of strain data, and
coincidence (Thinca) jobs merge groups of blocks — a fan-out / fan-in
pattern that, unlike Montage, has *no* globally blocking stage, making it
a useful contrast workload for the submission-interval experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workflow.dag import DataFile, Workflow

__all__ = ["ligo_workflow"]

STRAIN_SEGMENT_BYTES = 200e6   # raw strain data per analysis block
TEMPLATE_BANK_BYTES = 5e6
TRIGGER_BYTES = 2e6
COINC_BYTES = 1e6

RUNTIME = {
    "TmpltBank": 18.0,
    "Inspiral": 45.0,
    "Thinca": 5.0,
    "TrigBank": 4.0,
    "Inspiral2": 25.0,
    "Thinca2": 5.0,
}


def ligo_workflow(
    blocks: int = 40,
    group: int = 5,
    name: Optional[str] = None,
    jitter: float = 0.0,
    seed: int = 0,
) -> Workflow:
    """Generate a LIGO-inspiral-shaped workflow.

    Parameters
    ----------
    blocks:
        Number of independent strain-data analysis blocks (DAG width).
    group:
        Blocks per coincidence (Thinca) job.
    """
    if blocks < 1:
        raise ValueError(f"blocks must be >= 1, got {blocks}")
    if group < 1:
        raise ValueError(f"group must be >= 1, got {group}")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    if name is None:
        name = f"ligo-{blocks}x{group}"
    wf = Workflow(name)
    rng = np.random.default_rng(seed) if jitter > 0 else None

    def runtime_of(task_type: str) -> float:
        base = RUNTIME[task_type]
        if rng is not None:
            base *= float(rng.lognormal(0.0, jitter))
        return base

    triggers1 = []
    for b in range(blocks):
        strain = DataFile(f"{name}/strain_{b:04d}.gwf", STRAIN_SEGMENT_BYTES, "input")
        bank = DataFile(f"{name}/bank_{b:04d}.xml", TEMPLATE_BANK_BYTES)
        wf.new_job(
            f"TmpltBank_{b:04d}",
            "TmpltBank",
            runtime=runtime_of("TmpltBank"),
            inputs=[strain],
            outputs=[bank],
        )
        trig = DataFile(f"{name}/trig1_{b:04d}.xml", TRIGGER_BYTES)
        triggers1.append(trig)
        wf.new_job(
            f"Inspiral_{b:04d}",
            "Inspiral",
            runtime=runtime_of("Inspiral"),
            inputs=[strain, bank],
            outputs=[trig],
        )
        wf.add_dependency(f"TmpltBank_{b:04d}", f"Inspiral_{b:04d}")

    # First-round coincidence per group of blocks.
    coincs = []
    n_groups = (blocks + group - 1) // group
    for g in range(n_groups):
        members = range(g * group, min((g + 1) * group, blocks))
        coinc = DataFile(f"{name}/coinc1_{g:04d}.xml", COINC_BYTES)
        coincs.append((g, list(members), coinc))
        wf.new_job(
            f"Thinca_{g:04d}",
            "Thinca",
            runtime=runtime_of("Thinca"),
            inputs=[triggers1[b] for b in members],
            outputs=[coinc],
        )
        for b in members:
            wf.add_dependency(f"Inspiral_{b:04d}", f"Thinca_{g:04d}")

    # Second round: template banks from coincident triggers, re-filter.
    triggers2 = {}
    for g, members, coinc in coincs:
        for b in members:
            tbank = DataFile(f"{name}/trigbank_{b:04d}.xml", TEMPLATE_BANK_BYTES)
            wf.new_job(
                f"TrigBank_{b:04d}",
                "TrigBank",
                runtime=runtime_of("TrigBank"),
                inputs=[coinc],
                outputs=[tbank],
            )
            wf.add_dependency(f"Thinca_{g:04d}", f"TrigBank_{b:04d}")
            trig2 = DataFile(f"{name}/trig2_{b:04d}.xml", TRIGGER_BYTES)
            triggers2[b] = trig2
            wf.new_job(
                f"Inspiral2_{b:04d}",
                "Inspiral2",
                runtime=runtime_of("Inspiral2"),
                inputs=[tbank],
                outputs=[trig2],
            )
            wf.add_dependency(f"TrigBank_{b:04d}", f"Inspiral2_{b:04d}")

    for g, members, _coinc in coincs:
        out = DataFile(f"{name}/coinc2_{g:04d}.xml", COINC_BYTES, "output")
        wf.new_job(
            f"Thinca2_{g:04d}",
            "Thinca2",
            runtime=runtime_of("Thinca2"),
            inputs=[triggers2[b] for b in members],
            outputs=[out],
        )
        for b in members:
            wf.add_dependency(f"Inspiral2_{b:04d}", f"Thinca2_{g:04d}")

    return wf
