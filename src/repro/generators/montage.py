"""Geometric Montage workflow generator.

Montage builds a sky mosaic from a grid of overlapping input tiles
(paper Fig 1).  The generator lays ``G x G`` tiles on a grid and derives
the DAG from tile adjacency:

* ``mProjectPP`` — one per tile: re-project the raw image;
* ``mDiffFit`` — one per overlapping tile pair: fit the difference of two
  projected images (8-neighbourhood plus a band of distance-2 overlaps);
* ``mConcatFit`` — concatenate all fit results (blocking job);
* ``mBgModel`` — solve the background model (blocking job);
* ``mBackground`` — one per tile: apply the background correction;
* ``mImgTbl`` / ``mAdd`` / ``mShrink`` / ``mJpeg`` — assemble, shrink and
  render the final mosaic.

Calibration (anchored to paper §II for a 6.0-degree workflow):

=====================  =============  ==========================
quantity               paper          this generator (degree 6.0)
=====================  =============  ==========================
jobs                   8,586          8,586
input files            1,444 (4 GB)   1,444 (4.0 GB)
intermediate files     22,850 (35GB)  22,858 (35.0 GB)
=====================  =============  ==========================

Per-job CPU costs are chosen so that one 6.0-degree workflow on a single
c3.8xlarge under the pull engine completes in roughly 600 s (Fig 6) with
the blocking stage occupying a large single-threaded window (Fig 2/4's
three-stage pattern).  All constants are module-level so ablation studies
can override them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.workflow.dag import DataFile, Job, Workflow

__all__ = [
    "MONTAGE_BLOCKING_TYPES",
    "montage_grid_size",
    "montage_workflow",
]

# Tiles on a side for a 6.0-degree mosaic; 38^2 = 1,444 input images
# matches the paper's input-file count exactly.
_REF_DEGREE = 6.0
_REF_GRID = 38
_REF_TILES = _REF_GRID * _REF_GRID

# Diff jobs per tile calibrated so a 6.0-degree workflow has 8,586 jobs:
# 8,586 = 2 * 1,444 (mProjectPP + mBackground) + 6 tail jobs + 5,692 diffs.
_DIFFS_PER_TILE = 5692 / _REF_TILES

# -- file sizes (bytes; decimal GB as in instance-type marketing) -----------
RAW_IMAGE_BYTES = 4.0e9 / _REF_TILES        # 1,444 inputs totalling 4.0 GB
PROJECTED_BYTES = 3.3e6                     # mProjectPP image
PROJECTED_AREA_BYTES = 1.65e6               # mProjectPP area map
DIFF_IMAGE_BYTES = 2.0e6                    # mDiffFit difference image
DIFF_AREA_BYTES = 1.0e6
FIT_RECORD_BYTES = 1.0e4                    # plane-fit coefficients
FITS_TABLE_BYTES = 2.0e6                    # mConcatFit output
CORRECTIONS_BYTES = 1.0e6                   # mBgModel output
CORRECTED_BYTES = 3.3e6                     # mBackground image
CORRECTED_AREA_BYTES = 1.65e6
IMAGE_TABLE_BYTES = 2.0e6                   # mImgTbl output
MOSAIC_BYTES_REF = 2.4e9                    # mAdd mosaic at 6.0 degrees
MOSAIC_AREA_BYTES_REF = 1.2e9
SHRUNK_BYTES = 5.0e7
JPEG_BYTES = 3.0e7

# -- CPU seconds on one reference core (c3/r3/i2 cores are comparable,
#    paper §IV.A: "all three instance types have similar CPU performance").
#    Short fan-out jobs are "copies of a few short-running jobs ... within
#    the range of a few seconds" (paper §II).
RUNTIME = {
    "mProjectPP": 1.7,
    "mDiffFit": 0.9,
    "mBackground": 0.7,
}
# Aggregation jobs scale linearly with the number of tiles; values are for
# the 6.0-degree reference and produce the Fig 2/6 blocking window.
RUNTIME_REF = {
    "mConcatFit": 90.0,
    "mBgModel": 130.0,
    "mImgTbl": 10.0,
    "mAdd": 70.0,
    "mShrink": 25.0,
    "mJpeg": 20.0,
}

#: The jobs the paper calls *blocking* (§II): while they run, no other job
#: of the workflow is eligible.
MONTAGE_BLOCKING_TYPES = ("mConcatFit", "mBgModel")


def montage_grid_size(degree: float) -> int:
    """Tiles per side for a mosaic of ``degree`` (area scales as degree^2)."""
    if degree <= 0:
        raise ValueError(f"degree must be positive, got {degree}")
    return max(2, round(_REF_GRID * degree / _REF_DEGREE))


def _tile_overlaps(grid: int, n_diffs: int) -> List[Tuple[int, int]]:
    """Deterministic overlapping tile pairs.

    8-neighbourhood edges first (the physical overlaps of adjacent
    tiles), then distance-2 horizontal overlaps until ``n_diffs`` pairs
    are reached; capped at the number of available pairs.
    """
    pairs: List[Tuple[int, int]] = []

    def tile(r: int, c: int) -> int:
        return r * grid + c

    for r in range(grid):
        for c in range(grid):
            here = tile(r, c)
            if c + 1 < grid:
                pairs.append((here, tile(r, c + 1)))
            if r + 1 < grid:
                pairs.append((here, tile(r + 1, c)))
            if r + 1 < grid and c + 1 < grid:
                pairs.append((here, tile(r + 1, c + 1)))
            if r + 1 < grid and c - 1 >= 0:
                pairs.append((here, tile(r + 1, c - 1)))
    if len(pairs) < n_diffs:
        for r in range(grid):
            for c in range(grid - 2):
                pairs.append((tile(r, c), tile(r, c + 2)))
                if len(pairs) >= n_diffs:
                    break
            if len(pairs) >= n_diffs:
                break
    return pairs[:n_diffs]


def montage_workflow(
    degree: float = 6.0,
    name: Optional[str] = None,
    jitter: float = 0.0,
    seed: int = 0,
    parallel_blocking_jobs: bool = False,
) -> Workflow:
    """Generate a Montage workflow for a ``degree``-degree square mosaic.

    Parameters
    ----------
    degree:
        Mosaic size; 6.0 reproduces the paper's reference workload.
    jitter:
        Relative sigma of lognormal runtime noise (0 = deterministic).
    seed:
        Seed for the jitter RNG (ignored when ``jitter`` is 0).
    parallel_blocking_jobs:
        If True, mConcatFit/mBgModel are marked as able to exploit
        multiple cores (OpenMP-style), the speed-up opportunity noted in
        paper §III.D.
    """
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    grid = montage_grid_size(degree)
    n_tiles = grid * grid
    n_diffs = round(_DIFFS_PER_TILE * n_tiles)
    scale = n_tiles / _REF_TILES  # aggregation-cost scaling
    if name is None:
        name = f"montage-{degree:g}deg"
    wf = Workflow(name)
    rng = np.random.default_rng(seed) if jitter > 0 else None

    def runtime_of(task_type: str) -> float:
        base = RUNTIME.get(task_type)
        if base is None:
            base = RUNTIME_REF[task_type] * scale
        if rng is not None:
            base *= float(rng.lognormal(mean=0.0, sigma=jitter))
        return base

    blocking_threads = 8 if parallel_blocking_jobs else 1

    # Stage 1a: one mProjectPP per tile.
    projected: List[DataFile] = []
    proj_areas: List[DataFile] = []
    for i in range(n_tiles):
        raw = DataFile(f"{name}/raw_{i:06d}.fits", RAW_IMAGE_BYTES, "input")
        proj = DataFile(f"{name}/p_{i:06d}.fits", PROJECTED_BYTES)
        area = DataFile(f"{name}/p_area_{i:06d}.fits", PROJECTED_AREA_BYTES)
        projected.append(proj)
        proj_areas.append(area)
        wf.new_job(
            f"mProjectPP_{i:06d}",
            "mProjectPP",
            runtime=runtime_of("mProjectPP"),
            inputs=[raw],
            outputs=[proj, area],
        )

    # Stage 1b: one mDiffFit per overlapping pair.  Small grids may not
    # have enough overlaps to reach the nominal diff count, so the real
    # pair list is authoritative from here on.
    overlaps = _tile_overlaps(grid, n_diffs)
    n_diffs = len(overlaps)
    fit_records: List[DataFile] = []
    for k, (a, b) in enumerate(overlaps):
        fit = DataFile(f"{name}/fit_{k:06d}.txt", FIT_RECORD_BYTES)
        diff = DataFile(f"{name}/diff_{k:06d}.fits", DIFF_IMAGE_BYTES)
        darea = DataFile(f"{name}/diff_area_{k:06d}.fits", DIFF_AREA_BYTES)
        fit_records.append(fit)
        wf.new_job(
            f"mDiffFit_{k:06d}",
            "mDiffFit",
            runtime=runtime_of("mDiffFit"),
            inputs=[projected[a], proj_areas[a], projected[b], proj_areas[b]],
            outputs=[diff, darea, fit],
        )
        wf.add_dependency(f"mProjectPP_{a:06d}", f"mDiffFit_{k:06d}")
        wf.add_dependency(f"mProjectPP_{b:06d}", f"mDiffFit_{k:06d}")

    # Stage 2: the two blocking jobs.
    fits_table = DataFile(f"{name}/fits.tbl", FITS_TABLE_BYTES)
    wf.new_job(
        "mConcatFit",
        "mConcatFit",
        runtime=runtime_of("mConcatFit"),
        threads=blocking_threads,
        inputs=list(fit_records),
        outputs=[fits_table],
    )
    for k in range(n_diffs):
        wf.add_dependency(f"mDiffFit_{k:06d}", "mConcatFit")

    corrections = DataFile(f"{name}/corrections.tbl", CORRECTIONS_BYTES)
    wf.new_job(
        "mBgModel",
        "mBgModel",
        runtime=runtime_of("mBgModel"),
        threads=blocking_threads,
        inputs=[fits_table],
        outputs=[corrections],
    )
    wf.add_dependency("mConcatFit", "mBgModel")

    # Stage 3a: one mBackground per tile.
    corrected: List[DataFile] = []
    corrected_areas: List[DataFile] = []
    for i in range(n_tiles):
        cimg = DataFile(f"{name}/c_{i:06d}.fits", CORRECTED_BYTES)
        carea = DataFile(f"{name}/c_area_{i:06d}.fits", CORRECTED_AREA_BYTES)
        corrected.append(cimg)
        corrected_areas.append(carea)
        wf.new_job(
            f"mBackground_{i:06d}",
            "mBackground",
            runtime=runtime_of("mBackground"),
            inputs=[projected[i], proj_areas[i], corrections],
            outputs=[cimg, carea],
        )
        wf.add_dependency("mBgModel", f"mBackground_{i:06d}")
        wf.add_dependency(f"mProjectPP_{i:06d}", f"mBackground_{i:06d}")

    # Stage 3b: assemble the mosaic.
    image_table = DataFile(f"{name}/images.tbl", IMAGE_TABLE_BYTES)
    wf.new_job(
        "mImgTbl",
        "mImgTbl",
        runtime=runtime_of("mImgTbl"),
        # mImgTbl only scans image headers; that metadata traffic is
        # negligible and folded into the job's runtime.
        inputs=[],
        outputs=[image_table],
    )
    for i in range(n_tiles):
        wf.add_dependency(f"mBackground_{i:06d}", "mImgTbl")

    mosaic = DataFile(f"{name}/mosaic.fits", MOSAIC_BYTES_REF * scale)
    mosaic_area = DataFile(f"{name}/mosaic_area.fits", MOSAIC_AREA_BYTES_REF * scale)
    wf.new_job(
        "mAdd",
        "mAdd",
        runtime=runtime_of("mAdd"),
        inputs=[image_table] + corrected + corrected_areas,
        outputs=[mosaic, mosaic_area],
    )
    wf.add_dependency("mImgTbl", "mAdd")

    shrunk = DataFile(f"{name}/mosaic_small.fits", SHRUNK_BYTES)
    wf.new_job(
        "mShrink",
        "mShrink",
        runtime=runtime_of("mShrink"),
        inputs=[mosaic],
        outputs=[shrunk],
    )
    wf.add_dependency("mAdd", "mShrink")

    jpeg = DataFile(f"{name}/mosaic.jpg", JPEG_BYTES, "output")
    wf.new_job(
        "mJpeg",
        "mJpeg",
        runtime=runtime_of("mJpeg"),
        inputs=[shrunk],
        outputs=[jpeg],
    )
    wf.add_dependency("mShrink", "mJpeg")

    return wf
