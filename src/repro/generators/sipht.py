"""SIPHT workflow generator.

SIPHT (sRNA identification protocol using high-throughput technology,
Harvard) searches bacterial genomes for small untranslated RNAs.  Its
Pegasus-gallery shape is wide and shallow: many independent candidate
searches (Patser jobs) feed one concatenation, in parallel with a band of
heterogeneous analysis codes (Blast variants, RNAMotif, FindTerm,
TransTerm) that all converge on a single SRNA job, followed by annotation
fan-out.

SIPHT matters for engine testing because its job families are *not*
homogeneous — runtimes differ wildly across the analysis band — making it
the natural low-:func:`~repro.workflow.traces.homogeneity_index` contrast
to Montage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workflow.dag import DataFile, Workflow

__all__ = ["sipht_workflow"]

GENOME_BYTES = 8e6
CANDIDATE_BYTES = 0.5e6
RESULT_BYTES = 2e6

RUNTIME = {
    "Patser": 1.5,
    "PatserConcat": 3.0,
    "TransTerm": 60.0,
    "FindTerm": 45.0,
    "RNAMotif": 20.0,
    "Blast": 120.0,
    "SRNA": 15.0,
    "FFN_Parse": 4.0,
    "BlastSynteny": 25.0,
    "BlastCandidate": 10.0,
    "BlastQRNA": 35.0,
    "BlastParalogues": 18.0,
    "SRNAAnnotate": 8.0,
}

_ANALYSIS_BAND = ("TransTerm", "FindTerm", "RNAMotif", "Blast")
_ANNOTATION_FAN = ("BlastSynteny", "BlastCandidate", "BlastQRNA", "BlastParalogues")


def sipht_workflow(
    patsers: int = 24,
    name: Optional[str] = None,
    jitter: float = 0.0,
    seed: int = 0,
) -> Workflow:
    """Generate a SIPHT-shaped workflow with ``patsers`` candidate jobs."""
    if patsers < 1:
        raise ValueError(f"patsers must be >= 1, got {patsers}")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    if name is None:
        name = f"sipht-{patsers}"
    wf = Workflow(name)
    rng = np.random.default_rng(seed) if jitter > 0 else None

    def runtime_of(task_type: str) -> float:
        base = RUNTIME[task_type]
        if rng is not None:
            base *= float(rng.lognormal(0.0, jitter))
        return base

    genome = DataFile(f"{name}/genome.fna", GENOME_BYTES, "input")

    # Wide Patser band -> concatenation.
    patser_outs = []
    for i in range(patsers):
        out = DataFile(f"{name}/patser_{i:03d}.out", CANDIDATE_BYTES)
        patser_outs.append(out)
        wf.new_job(
            f"Patser_{i:03d}",
            "Patser",
            runtime=runtime_of("Patser"),
            inputs=[genome],
            outputs=[out],
        )
    concat = DataFile(f"{name}/patser_concat.out", CANDIDATE_BYTES * patsers)
    wf.new_job(
        "PatserConcat",
        "PatserConcat",
        runtime=runtime_of("PatserConcat"),
        inputs=list(patser_outs),
        outputs=[concat],
    )
    for i in range(patsers):
        wf.add_dependency(f"Patser_{i:03d}", "PatserConcat")

    # Heterogeneous analysis band, all independent.
    analysis_outs = []
    for task_type in _ANALYSIS_BAND:
        out = DataFile(f"{name}/{task_type.lower()}.out", RESULT_BYTES)
        analysis_outs.append(out)
        wf.new_job(
            task_type,
            task_type,
            runtime=runtime_of(task_type),
            inputs=[genome],
            outputs=[out],
        )

    # SRNA joins everything.
    srna_out = DataFile(f"{name}/srna.out", RESULT_BYTES)
    wf.new_job(
        "SRNA",
        "SRNA",
        runtime=runtime_of("SRNA"),
        inputs=[concat] + analysis_outs,
        outputs=[srna_out],
    )
    wf.add_dependency("PatserConcat", "SRNA")
    for task_type in _ANALYSIS_BAND:
        wf.add_dependency(task_type, "SRNA")

    # FFN parse feeds part of the annotation fan.
    ffn = DataFile(f"{name}/ffn_parse.out", RESULT_BYTES)
    wf.new_job(
        "FFN_Parse",
        "FFN_Parse",
        runtime=runtime_of("FFN_Parse"),
        inputs=[genome],
        outputs=[ffn],
    )

    # Annotation fan after SRNA.
    fan_outs = []
    for task_type in _ANNOTATION_FAN:
        out = DataFile(f"{name}/{task_type.lower()}.out", RESULT_BYTES)
        fan_outs.append(out)
        inputs = [srna_out, ffn] if task_type == "BlastSynteny" else [srna_out]
        wf.new_job(
            task_type,
            task_type,
            runtime=runtime_of(task_type),
            inputs=inputs,
            outputs=[out],
        )
        wf.add_dependency("SRNA", task_type)
        if task_type == "BlastSynteny":
            wf.add_dependency("FFN_Parse", task_type)

    final = DataFile(f"{name}/annotations.out", RESULT_BYTES, "output")
    wf.new_job(
        "SRNAAnnotate",
        "SRNAAnnotate",
        runtime=runtime_of("SRNAAnnotate"),
        inputs=list(fan_outs),
        outputs=[final],
    )
    for task_type in _ANNOTATION_FAN:
        wf.add_dependency(task_type, "SRNAAnnotate")
    return wf
