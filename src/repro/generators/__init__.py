"""Synthetic scientific-workflow generators.

The paper's evaluation uses Montage, and its introduction motivates LIGO
and CyberShake; all three are generated here with realistic DAG shapes and
calibrated cost models (no real FITS/seismogram data is needed because the
engines only consume job runtimes and file sizes).

* :func:`~repro.generators.montage.montage_workflow` — geometric Montage
  generator parameterised by mosaic degree; a 6.0-degree workflow matches
  the paper's §II numbers (8,586 jobs; 1,444 input files / 4.0 GB;
  ~22,850 intermediate files / ~35 GB).
* :func:`~repro.generators.ligo.ligo_workflow` — LIGO inspiral-analysis
  shaped DAG.
* :func:`~repro.generators.cybershake.cybershake_workflow` — CyberShake
  post-processing shaped DAG.
* :func:`~repro.generators.random_dag.random_layered_workflow` — seeded
  random layered DAGs for property-based tests.
"""

from repro.generators.cybershake import cybershake_workflow
from repro.generators.epigenomics import epigenomics_workflow
from repro.generators.ligo import ligo_workflow
from repro.generators.montage import MONTAGE_BLOCKING_TYPES, montage_workflow
from repro.generators.random_dag import random_layered_workflow
from repro.generators.sipht import sipht_workflow

__all__ = [
    "MONTAGE_BLOCKING_TYPES",
    "cybershake_workflow",
    "epigenomics_workflow",
    "ligo_workflow",
    "montage_workflow",
    "random_layered_workflow",
    "sipht_workflow",
]
