"""Seeded random layered DAGs for property-based testing.

Layered random DAGs exercise the engines on shapes that none of the
hand-built generators produce (irregular widths, variable fan-in), which
is how the property tests check engine invariants (every job runs exactly
once, precedence is respected) independent of workflow family.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workflow.dag import DataFile, Workflow

__all__ = ["random_layered_workflow"]


def random_layered_workflow(
    n_jobs: int = 50,
    n_levels: int = 5,
    max_fan_in: int = 3,
    mean_runtime: float = 2.0,
    mean_file_bytes: float = 1e6,
    seed: int = 0,
    name: Optional[str] = None,
) -> Workflow:
    """Generate a random layered workflow.

    Jobs are distributed over ``n_levels`` layers; each non-root job
    depends on 1..``max_fan_in`` random jobs of the previous layer and
    consumes one output file of each chosen parent.  Runtimes and sizes
    are exponential with the given means.  Fully deterministic per seed.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_levels < 1:
        raise ValueError(f"n_levels must be >= 1, got {n_levels}")
    if max_fan_in < 1:
        raise ValueError(f"max_fan_in must be >= 1, got {max_fan_in}")
    n_levels = min(n_levels, n_jobs)
    rng = np.random.default_rng(seed)
    if name is None:
        name = f"random-{n_jobs}j{n_levels}l-s{seed}"
    wf = Workflow(name)

    # Split jobs over levels; every level gets at least one job.
    counts = np.ones(n_levels, dtype=int)
    extra = n_jobs - n_levels
    if extra > 0:
        bins = rng.integers(0, n_levels, size=extra)
        counts += np.bincount(bins, minlength=n_levels)

    layers = []
    job_index = 0
    for level, count in enumerate(counts):
        layer = []
        for _ in range(count):
            job_id = f"job_{job_index:05d}"
            out = DataFile(
                f"{name}/{job_id}.out",
                float(rng.exponential(mean_file_bytes)),
                "intermediate" if level < n_levels - 1 else "output",
            )
            inputs = []
            if level == 0:
                inputs.append(
                    DataFile(
                        f"{name}/{job_id}.in",
                        float(rng.exponential(mean_file_bytes)),
                        "input",
                    )
                )
            job = wf.new_job(
                job_id,
                f"type{level}",
                runtime=float(rng.exponential(mean_runtime)),
                inputs=inputs,
                outputs=[out],
            )
            layer.append(job)
            job_index += 1
        layers.append(layer)

    for level in range(1, n_levels):
        prev = layers[level - 1]
        for job in layers[level]:
            fan_in = int(rng.integers(1, max_fan_in + 1))
            parents = rng.choice(len(prev), size=min(fan_in, len(prev)), replace=False)
            for p in parents:
                parent = prev[int(p)]
                wf.add_dependency(parent.id, job.id)
                job.inputs.append(parent.outputs[0])

    return wf
