"""Epigenomics workflow generator.

The USC Epigenome Center's methylation pipeline is a standard member of
the Pegasus workflow gallery alongside Montage/CyberShake/LIGO.  Its
shape is a set of independent *lanes*, each a deep chain over chunks of
sequence data, merged at the end:

    fastqSplit (per lane)
        -> filterContams -> sol2sanger -> fastq2bfq -> map   (per chunk)
    mapMerge (per lane) -> mapMergeGlobal -> maqIndex -> pileup

Unlike Montage, the fan jobs form *chains* (4 sequential steps per
chunk), so the DAG is deep and narrow per chunk — a useful contrast for
engine tests: coordination overhead is paid per level.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workflow.dag import DataFile, Workflow

__all__ = ["epigenomics_workflow"]

LANE_BYTES = 1.2e9          # raw sequence data per lane
CHUNK_BYTES = 60e6
MAPPED_BYTES = 30e6
MERGED_BYTES = 400e6

RUNTIME = {
    "fastqSplit": 8.0,
    "filterContams": 3.0,
    "sol2sanger": 2.0,
    "fastq2bfq": 2.5,
    "map": 40.0,
    "mapMerge": 15.0,
    "mapMergeGlobal": 25.0,
    "maqIndex": 12.0,
    "pileup": 30.0,
}

_CHAIN = ("filterContams", "sol2sanger", "fastq2bfq", "map")


def epigenomics_workflow(
    lanes: int = 4,
    chunks: int = 8,
    name: Optional[str] = None,
    jitter: float = 0.0,
    seed: int = 0,
) -> Workflow:
    """Generate an Epigenomics-shaped workflow.

    Parameters
    ----------
    lanes:
        Independent sequencing lanes (outer parallelism).
    chunks:
        Chunks per lane (inner parallelism; each chunk is a 4-job chain).
    """
    if lanes < 1 or chunks < 1:
        raise ValueError("lanes and chunks must be >= 1")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    if name is None:
        name = f"epigenomics-{lanes}x{chunks}"
    wf = Workflow(name)
    rng = np.random.default_rng(seed) if jitter > 0 else None

    def runtime_of(task_type: str) -> float:
        base = RUNTIME[task_type]
        if rng is not None:
            base *= float(rng.lognormal(0.0, jitter))
        return base

    merged_files = []
    for lane in range(lanes):
        raw = DataFile(f"{name}/lane_{lane:02d}.fastq", LANE_BYTES, "input")
        chunk_files = [
            DataFile(f"{name}/l{lane:02d}_c{c:03d}.fastq", CHUNK_BYTES)
            for c in range(chunks)
        ]
        split_id = f"fastqSplit_{lane:02d}"
        wf.new_job(
            split_id,
            "fastqSplit",
            runtime=runtime_of("fastqSplit"),
            inputs=[raw],
            outputs=chunk_files,
        )
        mapped = []
        for c in range(chunks):
            prev_id = split_id
            prev_file = chunk_files[c]
            for step in _CHAIN:
                job_id = f"{step}_{lane:02d}_{c:03d}"
                out_size = MAPPED_BYTES if step == "map" else CHUNK_BYTES
                out = DataFile(f"{name}/{job_id}.out", out_size)
                wf.new_job(
                    job_id,
                    step,
                    runtime=runtime_of(step),
                    inputs=[prev_file],
                    outputs=[out],
                )
                wf.add_dependency(prev_id, job_id)
                prev_id, prev_file = job_id, out
            mapped.append((prev_id, prev_file))
        merge_id = f"mapMerge_{lane:02d}"
        merged = DataFile(f"{name}/merged_{lane:02d}.map", MERGED_BYTES)
        merged_files.append(merged)
        wf.new_job(
            merge_id,
            "mapMerge",
            runtime=runtime_of("mapMerge"),
            inputs=[f for _id, f in mapped],
            outputs=[merged],
        )
        for job_id, _f in mapped:
            wf.add_dependency(job_id, merge_id)

    global_map = DataFile(f"{name}/global.map", MERGED_BYTES * lanes)
    wf.new_job(
        "mapMergeGlobal",
        "mapMergeGlobal",
        runtime=runtime_of("mapMergeGlobal"),
        inputs=list(merged_files),
        outputs=[global_map],
    )
    for lane in range(lanes):
        wf.add_dependency(f"mapMerge_{lane:02d}", "mapMergeGlobal")

    index = DataFile(f"{name}/global.index", 50e6)
    wf.new_job(
        "maqIndex",
        "maqIndex",
        runtime=runtime_of("maqIndex"),
        inputs=[global_map],
        outputs=[index],
    )
    wf.add_dependency("mapMergeGlobal", "maqIndex")

    pileup = DataFile(f"{name}/methylation.pileup", 200e6, "output")
    wf.new_job(
        "pileup",
        "pileup",
        runtime=runtime_of("pileup"),
        inputs=[index, global_map],
        outputs=[pileup],
    )
    wf.add_dependency("maqIndex", "pileup")
    return wf
