"""MooseFS placement policy (paper §V.B).

In the large-scale experiments "all the worker nodes are configured to be
a MooseFS [chunk] server" and each file is stored with a single copy.
MooseFS splits files into 64 MB chunks; the paper's Montage files are a
few MB, so each file lands wholly on one chunk server chosen by the
master — statistically uniform over the cluster ("it is safe to assume
that statistically all worker nodes have equal access to the underlying
shared file system").  A per-file hash reproduces that uniform placement
deterministically.
"""

from __future__ import annotations

import zlib

from repro.sim import Simulator
from repro.storage.base import SharedFileSystem

__all__ = ["moosefs_placement", "make_moosefs"]


def moosefs_placement(file_name: str, n_nodes: int) -> int:
    """Uniform per-file chunk-server placement."""
    return zlib.crc32(file_name.encode()) % n_nodes


def make_moosefs(sim: Simulator, nodes) -> SharedFileSystem:
    """MooseFS-style shared file system over every node."""
    return SharedFileSystem(sim, nodes, placement=moosefs_placement, name="moosefs")
