"""Storage substrate: node disks, write-back cache, shared file systems.

The paper's workers read inputs from and write outputs to a POSIX shared
file system (NFS for small clusters, MooseFS for the large-scale runs,
§III.B/§V.B) backed by each node's RAID-0 instance-store SSDs.  This
package models that stack:

* :class:`~repro.storage.disk.DiskArray` — a node's RAID-0 array as a pair
  of processor-sharing links (random-read channel, sequential-write
  channel, per Table II);
* :class:`~repro.storage.cache.WriteBackCache` — the OS page cache's
  write-back behaviour ("the operating system caches the disk writes and
  flushes them to the disk in batches", §IV.A) plus the read-miss model
  that makes stage 3 I/O-bound once the working set outgrows memory;
* :class:`~repro.storage.base.SharedFileSystem` — routes file reads and
  writes over disks and 10 Gbps NICs according to a placement policy;
* :mod:`~repro.storage.nfs` / :mod:`~repro.storage.moosefs` — the
  placement policies: central NFS server, N-to-N NFS exports (per-workflow
  hot spots) and MooseFS chunk servers (uniform per-file striping).
"""

from repro.storage.base import SharedFileSystem, local_placement
from repro.storage.cache import WriteBackCache, read_miss_ratio
from repro.storage.disk import DiskArray
from repro.storage.moosefs import make_moosefs, moosefs_placement
from repro.storage.nfs import make_central_nfs, make_nton_nfs

__all__ = [
    "DiskArray",
    "SharedFileSystem",
    "WriteBackCache",
    "local_placement",
    "make_central_nfs",
    "make_moosefs",
    "make_nton_nfs",
    "moosefs_placement",
    "read_miss_ratio",
]
