"""NFS placement policies (paper §IV.A and §V.B).

Two deployments from the paper:

* **Central NFS** — one node (or NAS head) exports storage to everyone;
  every remote node's I/O funnels through the server's disk and NIC.
* **N-to-N NFS** — "each and every worker node [shares] its local storage
  via NFS, and mount[s] the NFS shares from other nodes" (§V.B).  A
  workflow's folder lives on one export, so all files of one workflow
  share a home node — which is exactly the "unbalanced utilization" the
  paper observed as clusters grow, and why the large-scale runs switched
  to MooseFS.
"""

from __future__ import annotations

import zlib

from repro.sim import Simulator
from repro.storage.base import SharedFileSystem, local_placement

__all__ = ["nton_placement", "make_central_nfs", "make_nton_nfs"]


def nton_placement(file_name: str, n_nodes: int) -> int:
    """Home node of a file under N-to-N NFS: hash of its workflow folder.

    File names are ``"<workflow>/<file>"`` (workflows are encapsulated in
    a folder on the shared file system, paper §III.B).
    """
    folder = file_name.split("/", 1)[0]
    return zlib.crc32(folder.encode()) % n_nodes


def make_central_nfs(sim: Simulator, nodes) -> SharedFileSystem:
    """Central NFS: node 0 is the storage server."""
    return SharedFileSystem(sim, nodes, placement=local_placement, name="nfs-central")


def make_nton_nfs(sim: Simulator, nodes) -> SharedFileSystem:
    """N-to-N NFS: one export per node, keyed by workflow folder."""
    return SharedFileSystem(sim, nodes, placement=nton_placement, name="nfs-nton")
