"""Shared file system: routing file I/O over disks and NICs.

Every worker node mounts one POSIX namespace (paper §III.B); a *placement
policy* maps each file to the node whose RAID-0 array physically holds it.
Reads from a remote home traverse the home's disk-read channel, its NIC
egress, and the reader's NIC ingress in parallel (pipelined streaming);
writes are absorbed by the writer's write-back cache and flushed through
the corresponding route.

The file system also maintains the *active data set* used by the
read-miss model (see :mod:`repro.storage.cache`): inputs staged before the
run plus every intermediate written during it.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

from repro.sim import AllOf, Event, JoinEvent, Simulator
from repro.storage.cache import read_miss_ratio
from repro.workflow.dag import DataFile, Workflow

__all__ = ["SharedFileSystem", "local_placement"]

#: A placement policy: (file_name, n_nodes) -> home node index.
PlacementPolicy = Callable[[str, int], int]


def local_placement(file_name: str, n_nodes: int) -> int:
    """Everything on node 0 (single-node clusters, central NFS server)."""
    return 0


class SharedFileSystem:
    """One shared namespace over a cluster's nodes.

    Parameters
    ----------
    sim:
        The simulator.
    nodes:
        Sequence of :class:`~repro.cloud.node.SimNode`.
    placement:
        Maps ``(file_name, n_nodes)`` to the index of the home node.
    name:
        Label used in reports ("nfs", "moosefs", ...).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence,
        placement: PlacementPolicy = local_placement,
        name: str = "sharedfs",
        precise_cache: bool = True,
    ):
        if not nodes:
            raise ValueError("a shared file system needs at least one node")
        self.sim = sim
        self.nodes = list(nodes)
        self.placement = placement
        self.name = name
        self.precise_cache = precise_cache
        self.active_bytes = 0.0
        self.bytes_read = 0.0       # effective device reads (after cache)
        self.bytes_written = 0.0    # logical writes
        self.remote_reads = 0
        self.local_reads = 0
        # LRU stack-distance cache model: `write_clock` counts every byte
        # that entered the namespace; a file read hits the page cache iff
        # fewer bytes than the node's cache arrived since the file was
        # last touched.  This is what makes producer->consumer reads (a
        # mDiffFit reading projections written seconds earlier) free while
        # stage 3 re-reads of stage-1 outputs go to disk once the working
        # set outgrows memory (Fig 4's i2 < r3 < c3 stage-3 ordering).
        self.write_clock = 0.0
        self._last_touch: dict = {}
        # Single-node clusters have exactly one possible home; skipping
        # the placement call per file is a measurable win on the
        # local-filesystem benchmark configurations.
        self._sole = self.nodes[0] if len(self.nodes) == 1 else None
        # Shared already-triggered event for no-op reads/writes (fully
        # cached inputs, zero-byte outputs); callers only check
        # ``triggered`` so one processed event serves them all.
        self._noop = Event(sim).succeed()

    # -- data-set accounting ----------------------------------------------
    def stage_inputs(self, workflows: Iterable[Workflow]) -> None:
        """Account for pre-staged input files (paper: "the required input
        files are copied to the shared file system before the experiments",
        §V.B).  Every ensemble member has its own copy of its inputs (the
        paper's 200-workflow ensemble has 288,800 input files — 200 x
        1,444), so staging is counted per workflow even when relabelled
        members share DataFile objects."""
        for wf in workflows:
            for f in wf.files().values():
                if f.kind == "input":
                    self.active_bytes += f.size
                    self.write_clock += f.size
                    self._last_touch[(wf.name, f.name)] = self.write_clock

    def home_of(self, f: DataFile):
        if self._sole is not None:
            return self._sole
        return self.nodes[self.placement(f.name, len(self.nodes))]

    def _read_bytes_of(self, node, f: DataFile, owner: str) -> float:
        """Device bytes a read of ``f`` costs on ``node`` (cache model).

        Linear-decay LRU: the page cache holds ``node.page_cache_bytes``;
        a page's survival probability decays linearly with the bytes that
        entered the cache since it was last touched (competing traffic
        evicts pages long before the strict LRU depth is reached —
        readahead, metadata, uneven access).  Miss fraction =
        ``min(1, stack_distance / cache_bytes)``; never-seen files miss
        entirely.
        """
        if not self.precise_cache:
            return f.size * read_miss_ratio(node.page_cache_bytes, self.active_bytes)
        key = (owner, f.name)
        last = self._last_touch.get(key)
        self._last_touch[key] = self.write_clock  # LRU touch
        if last is None:
            return f.size
        distance = self.write_clock - last
        return f.size * min(1.0, distance / node.page_cache_bytes)

    # -- I/O ----------------------------------------------------------------
    def read(self, node, files: Sequence[DataFile], owner: str = "") -> Event:
        """Read ``files`` from ``node``; fires when all bytes arrived.

        ``owner`` is the reading workflow's name — relabelled ensemble
        members share :class:`DataFile` objects but own distinct physical
        files, so cache state is keyed per owner.
        """
        local = 0.0
        remote: dict = {}
        sole = self._sole
        if self.precise_cache:
            # Inlined _read_bytes_of: the per-file dict traffic dominates
            # the read path on cache-heavy workloads, so hoist the loop
            # invariants out of the method-call overhead.
            touch = self._last_touch
            clock = self.write_clock
            cache_bytes = node.page_cache_bytes
            for f in files:
                key = (owner, f.name)
                last = touch.get(key)
                touch[key] = clock
                if last is None:
                    nbytes = f.size
                else:
                    distance = clock - last
                    if distance >= cache_bytes:
                        nbytes = f.size
                    else:
                        nbytes = f.size * (distance / cache_bytes)
                if nbytes == 0.0:
                    continue
                home = sole if sole is not None else self.home_of(f)
                if home is node:
                    local += nbytes
                    self.local_reads += 1
                else:
                    remote[home] = remote.get(home, 0.0) + nbytes
                    self.remote_reads += 1
        else:
            for f in files:
                nbytes = self._read_bytes_of(node, f, owner)
                if nbytes == 0.0:
                    continue
                home = self.home_of(f)
                if home is node:
                    local += nbytes
                    self.local_reads += 1
                else:
                    remote[home] = remote.get(home, 0.0) + nbytes
                    self.remote_reads += 1
        if not remote:
            if local > 0:
                self.bytes_read += local
                return node.disk.read.transfer(local)
            return self._noop
        # Fan-out: each remote home contributes three parallel streams
        # (home disk read, home NIC egress, reader NIC ingress).  All
        # streams arrive into one counting barrier — no per-stream events,
        # no AllOf — and the reader's NIC admits its per-home streams as
        # one batch (one bandwidth re-partition instead of one per home).
        join = JoinEvent(self.sim, (1 if local > 0 else 0) + 3 * len(remote))
        if local > 0:
            self.bytes_read += local
            node.disk.read.transfer_into(local, join)
        sizes: List[float] = []
        for home, nbytes in remote.items():
            self.bytes_read += nbytes
            home.disk.read.transfer_into(nbytes, join)
            home.nic_out.transfer_into(nbytes, join)
            sizes.append(nbytes)
        if len(sizes) == 1:
            node.nic_in.transfer_into(sizes[0], join)
        else:
            node.nic_in.transfer_many(sizes, join)
        return join

    def write(self, node, files: Sequence[DataFile], owner: str = "") -> Event:
        """Write ``files`` from ``node``; fires when buffered (write-back).

        Files sharing a route are buffered as one cache entry: the flusher
        serves them as a single stream, which under processor sharing
        takes exactly as long as serving them back to back — same bytes,
        same one-stream presence on every link of the route.
        """
        routes: dict = {}
        sole = self._sole
        precise = self.precise_cache
        touch = self._last_touch
        clock = self.write_clock
        total = 0.0
        for f in files:
            size = f.size
            if size == 0:
                continue
            total += size
            if precise:
                clock += size
                touch[(owner, f.name)] = clock
            if sole is not None:
                continue  # single node: one route, summed below
            home = self.home_of(f)
            if home is node:
                links = (node.disk.write,)
            else:
                links = (node.nic_out, home.nic_in, home.disk.write)
            routes[links] = routes.get(links, 0.0) + size
        self.active_bytes += total
        self.bytes_written += total
        if precise:
            self.write_clock = clock
        if sole is not None and total > 0.0:
            routes[(node.disk.write,)] = total
        if not routes:
            return self._noop
        if len(routes) == 1:
            links, nbytes = next(iter(routes.items()))
            return node.write_cache.write(nbytes, links)
        join = JoinEvent(self.sim, len(routes))
        write_into = node.write_cache.write_into
        for links, nbytes in routes.items():
            write_into(nbytes, links, join)
        return join

    def drained(self) -> Event:
        """Fires when every node's write-back cache is empty."""
        return AllOf(self.sim, [n.write_cache.drained() for n in self.nodes])
