"""A node's RAID-0 instance-store array as DES resources.

Workflow I/O on a busy worker node interleaves many concurrent streams, so
the *read* channel uses the Table II random-read capacity; writes are
batched by the page cache's write-back flusher and hit the device as large
sequential bursts, so the *write* channel uses the sequential-write
capacity.  Reads and writes use independent channels — SSD arrays serve
mixed workloads at roughly the sum of the two (a simplification noted in
DESIGN.md §4).
"""

from __future__ import annotations

from repro.cloud.instances import DiskProfile
from repro.sim import FairShareLink, Simulator

__all__ = ["DiskArray"]


class DiskArray:
    """RAID-0 array: one PS read link plus one PS write link."""

    __slots__ = ("read", "write")

    def __init__(self, sim: Simulator, profile: DiskProfile, name: str = "disk"):
        self.read = FairShareLink(sim, profile.rand_read, name=f"{name}.read")
        self.write = FairShareLink(sim, profile.seq_write, name=f"{name}.write")

    @property
    def read_bytes_total(self) -> float:
        return self.read.bytes_total

    @property
    def write_bytes_total(self) -> float:
        return self.write.bytes_total
