"""Per-file checksums and corruption/loss detection for the shared FS.

Juve et al.'s EC2 studies put the shared-storage layer at the centre of
workflow failures in public clouds; this module gives the simulated
:class:`~repro.storage.base.SharedFileSystem` a data-integrity plane:

* every staged input and written file gets a **digest** — a pure function
  of ``(owner, name, size)``, so a faithful regeneration reproduces the
  original digest bit-for-bit;
* fault models (:class:`~repro.faults.models.FileCorruptionModel`,
  :class:`~repro.faults.models.FileLossModel`) mutate the *stored*
  digest at write/stage time (a corrupted file stores a marker digest, a
  lost file stores nothing);
* workers **verify** a job's inputs before running it; mismatches are
  reported to the master, which re-executes the minimal ancestor set to
  regenerate the data (see :meth:`repro.dewe.state.WorkflowState.on_corrupt`)
  instead of dead-lettering the consumer.

Like the file system's cache state, integrity state is keyed
``(owner, file name)`` — relabelled ensemble members share
:class:`~repro.workflow.dag.DataFile` objects but own distinct physical
files.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import repro.analysis.sanitizer as _sanitizer
from repro.faults.models import FaultTrace
from repro.workflow.dag import DataFile

__all__ = ["FileIntegrity", "file_digest"]

_Key = Tuple[str, str]


def file_digest(owner: str, name: str, size: float) -> str:
    """The digest of a *correctly produced* file.

    A pure function of the file's identity and size: the simulation has
    no real bytes, but any faithful (re)generation of the same logical
    file must yield the same digest — which is exactly the checksum
    property the recovery invariant needs.
    """
    blob = f"{owner}|{name}|{size:.6f}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class FileIntegrity:
    """Checksum registry for one run of one engine.

    ``models`` are fault injectors with a ``strikes(owner, name,
    write_index)`` predicate and ``kind`` / ``outcome`` attributes
    (``"corrupt"`` stores a marker digest, ``"lost"`` erases the stored
    digest).  A model only ever strikes a given file's *first* write, so
    a regeneration pass always lands clean.
    """

    def __init__(
        self,
        trace: Optional[FaultTrace] = None,
        models: Sequence[object] = (),
    ):
        self.trace = trace
        self.models = tuple(models)
        #: Digest every (owner, file) is *supposed* to have.
        self.expected: Dict[_Key, str] = {}
        #: Digest actually on disk; ``None`` = file lost.
        self.stored: Dict[_Key, Optional[str]] = {}
        self._write_index: Dict[_Key, int] = {}
        self.stats: Dict[str, int] = {
            "verified": 0,
            "corrupted": 0,
            "lost": 0,
            "detected": 0,
            "regenerated": 0,
            "restaged": 0,
        }

    # -- producing ---------------------------------------------------------
    def _apply_models(self, key: _Key, index: int, time: float) -> Optional[str]:
        owner, name = key
        for model in self.models:
            if model.strikes(owner, name, index):
                if self.trace is not None:
                    self.trace.record(
                        time, model.kind, None, f"{owner}/{name}"
                    )
                return model.outcome
        return None

    def record_write(self, owner: str, f: DataFile, time: float) -> None:
        """A job (re)wrote ``f``; roll the integrity dice."""
        key = (owner, f.name)
        index = self._write_index.get(key, 0) + 1
        self._write_index[key] = index
        digest = file_digest(owner, f.name, f.size)
        was_bad = key in self.expected and self.stored.get(key) != digest
        self.expected[key] = digest
        outcome = self._apply_models(key, index, time)
        if outcome == "corrupt":
            self.stored[key] = "corrupt:" + digest
            self.stats["corrupted"] += 1
            return
        if outcome == "lost":
            self.stored[key] = None
            self.stats["lost"] += 1
            return
        self.stored[key] = digest
        if was_bad:
            # A regeneration repaired the file: the recovery invariant
            # says the rewrite must byte-match the original.
            self.stats["regenerated"] += 1
            san = _sanitizer._ACTIVE
            if san is not None:
                san.check_regeneration(
                    owner, f.name, self.expected[key], digest, time=time
                )

    def record_stage(self, owner: str, f: DataFile) -> None:
        """A raw input was staged into the namespace before the run."""
        self.record_write(owner, f, 0.0)

    def restage(self, owner: str, f: DataFile, time: float) -> None:
        """Re-copy a raw input from the submit host (always clean —
        the original lives outside the cluster)."""
        key = (owner, f.name)
        self._write_index[key] = self._write_index.get(key, 0) + 1
        digest = file_digest(owner, f.name, f.size)
        self.expected[key] = digest
        self.stored[key] = digest
        self.stats["restaged"] += 1
        if self.trace is not None:
            self.trace.record(time, "input-restage", None, f"{owner}/{f.name}")

    # -- verifying ---------------------------------------------------------
    def verify(
        self, owner: str, files: Sequence[DataFile], time: float
    ) -> List[str]:
        """Checksum ``files`` before a job consumes them; returns the
        names that failed (corrupt or missing), in file order."""
        bad: List[str] = []
        for f in files:
            key = (owner, f.name)
            expected = self.expected.get(key)
            if expected is None:
                continue  # not tracked (zero-byte placeholder etc.)
            self.stats["verified"] += 1
            stored = self.stored.get(key)
            if stored != expected:
                bad.append(f.name)
                self.stats["detected"] += 1
                if self.trace is not None:
                    what = "loss-detected" if stored is None else "corruption-detected"
                    self.trace.record(time, what, None, f"{owner}/{f.name}")
        return bad

    def is_clean(self, owner: str, name: str) -> bool:
        key = (owner, name)
        return self.stored.get(key) == self.expected.get(key)
