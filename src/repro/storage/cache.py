"""Page-cache models: write-back buffering and read-miss ratio.

**Write-back** (paper §IV.A): "The operating system caches the disk writes
and flushes them to the disk in batches, resulting in the intermittent
disk writes at full capacity."  Jobs therefore complete as soon as their
output bytes are absorbed by the cache; a background flusher drains dirty
bytes through the disk/NIC links at device speed.  Because of this, stage
1 of Montage takes the same time on all three instance types despite their
very different write throughput — unless the dirty set outgrows the cache,
in which case writers throttle (exactly the kernel's dirty-page limit).

**Read-miss** model: the shared file system tracks the *active* data set
(bytes of inputs plus intermediates written so far).  A node's chance of
finding a byte in its page cache is ``cache_bytes / active_bytes``; the
remainder goes to the device.  With one 6.0-degree workflow (~39 GB
working set) a 244 GB r3/i2 node serves stage 3 mostly from memory, while
ten workflows (~390 GB, §IV.A) overwhelm every node and stage 3 becomes
disk-bound in exactly the i2 < r3 < c3 order of Fig 4c.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

import repro.analysis.sanitizer as _sanitizer
from repro.sim import Event, FairShareLink, JoinEvent, Simulator

__all__ = ["WriteBackCache", "read_miss_ratio"]

#: Reads never hit 100% in cache: metadata, readahead misses, first-touch
#: of cold files.  Calibrated so single-workflow runs stay compute-bound.
MIN_MISS_RATIO = 0.05


def read_miss_ratio(cache_bytes: float, active_bytes: float) -> float:
    """Fraction of read bytes that must come from the device."""
    if cache_bytes < 0 or active_bytes < 0:
        raise ValueError("cache_bytes and active_bytes must be >= 0")
    if active_bytes <= 0:
        return MIN_MISS_RATIO
    miss = 1.0 - cache_bytes / active_bytes
    return min(1.0, max(MIN_MISS_RATIO, miss))


class WriteBackCache:
    """Per-node dirty-page buffer with a background flusher process.

    ``write(nbytes, links)`` returns an event that fires once the bytes
    are buffered (immediately while below the dirty limit).  The flusher
    drains entries FIFO, pushing chunks through every link of the entry's
    route in parallel (local disk write, or NIC + remote disk for files
    homed on another node).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: float,
        chunk_bytes: float = 64e6,
        flush_interval: float = 5.0,
        name: str = "wbcache",
    ):
        if capacity_bytes <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity_bytes}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_bytes}")
        if flush_interval < 0:
            raise ValueError(f"flush interval must be >= 0, got {flush_interval}")
        self.sim = sim
        self.capacity = float(capacity_bytes)
        self.chunk = float(chunk_bytes)
        #: Pause between flush batches, mirroring the kernel's periodic
        #: write-back (dirty_writeback_centisecs).  This is what produces
        #: the paper's "intermittent disk writes at full capacity" (§IV.A):
        #: dirty pages accumulate during the pause and then drain in one
        #: burst at device speed.
        self.flush_interval = float(flush_interval)
        self.name = name
        self.dirty = 0.0
        self.bytes_written = 0.0
        self.bytes_flushed = 0.0
        self._queue: Deque[Tuple[float, Tuple[FairShareLink, ...]]] = deque()
        self._stalled: Deque[Tuple[Event, float, Tuple[FairShareLink, ...]]] = deque()
        self._flusher_started = False
        self._work: Event | None = None
        self._drained: List[Event] = []

    def write(self, nbytes: float, links: Tuple[FairShareLink, ...]) -> Event:
        """Buffer ``nbytes`` destined for ``links``; event fires on buffer."""
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        event = Event(self.sim)
        if nbytes == 0:
            return event.succeed()
        self.bytes_written += nbytes
        if self._stalled or self.dirty + nbytes > self.capacity:
            # Dirty limit reached: the writer throttles until the flusher
            # frees space (kernel dirty_ratio behaviour).
            self._stalled.append((event, nbytes, links))
        else:
            self.dirty += nbytes
            self._queue.append((nbytes, links))
            event.succeed()
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_cache(self)
        self._ensure_flusher()
        return event

    def write_into(self, nbytes: float, links: Tuple[FairShareLink, ...],
                   event: Event) -> None:
        """Buffer ``nbytes`` arriving into ``event`` when buffered.

        ``event`` is normally a :class:`~repro.sim.engine.JoinEvent`
        counting one arrival per route of a multi-route write, so a
        fan-out write allocates one event total instead of one per route
        plus an ``AllOf``.
        """
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        if nbytes == 0:
            event._complete()
            return
        self.bytes_written += nbytes
        if self._stalled or self.dirty + nbytes > self.capacity:
            self._stalled.append((event, nbytes, links))
        else:
            self.dirty += nbytes
            self._queue.append((nbytes, links))
            event._complete()
        san = _sanitizer._ACTIVE
        if san is not None:
            san.check_cache(self)
        self._ensure_flusher()

    def drained(self) -> Event:
        """Event that fires when every buffered byte has hit the device."""
        event = Event(self.sim)
        if self.dirty == 0 and not self._stalled:
            return event.succeed()
        self._drained.append(event)
        return event

    # -- internals ---------------------------------------------------------
    def _ensure_flusher(self) -> None:
        # One persistent flusher process per cache: it parks on a signal
        # event between busy periods instead of being re-spawned per
        # burst (a generator + Process + bootstrap event each time).
        if not self._flusher_started:
            self._flusher_started = True
            self.sim.process(self._flush_loop())
        else:
            work = self._work
            if work is not None and not work.triggered:
                work.succeed()

    def _admit_stalled(self) -> None:
        while self._stalled:
            event, nbytes, links = self._stalled[0]
            if self.dirty + nbytes > self.capacity and self.dirty > 0:
                break
            self._stalled.popleft()
            self.dirty += nbytes
            self._queue.append((nbytes, links))
            event._complete()  # succeed() for write(), arrive() for write_into()

    def _flush_loop(self):
        sim = self.sim
        while True:
            while not (self._queue or self._stalled):
                # Idle: park until the next write signals new work.
                event = self._work = Event(sim)
                yield event
                self._work = None
            yield from self._flush_burst()

    def _flush_burst(self):
        sim = self.sim
        first_batch = True
        while self._queue or self._stalled:
            if not first_batch and self.flush_interval > 0:
                # Let dirty pages accumulate, then drain in one burst.
                yield sim.timeout(self.flush_interval)
            first_batch = False
            self._admit_stalled()
            while self._queue:
                nbytes, links = self._queue.popleft()
                # Coalesce queued entries bound for the same route, up to
                # one chunk: the links see one stream with the same total
                # bytes either way (PS-exact), and dirty pages were
                # already released at burst granularity.
                queue = self._queue
                while (
                    queue
                    and queue[0][1] == links
                    and nbytes + queue[0][0] <= self.chunk
                ):
                    nbytes += queue.popleft()[0]
                remaining = nbytes
                while remaining > 0:
                    burst = min(self.chunk, remaining)
                    if len(links) == 1:
                        yield links[0].transfer(burst)
                    else:
                        join = JoinEvent(sim, len(links))
                        for link in links:
                            link.transfer_into(burst, join)
                        yield join
                    remaining -= burst
                    self.dirty -= burst
                    self.bytes_flushed += burst
                    san = _sanitizer._ACTIVE
                    if san is not None:
                        san.check_cache(self)
                    self._admit_stalled()
        if self.dirty <= 1e-6 and not self._stalled:
            san = _sanitizer._ACTIVE
            if san is not None:
                san.check_cache_drained(self)
            drained, self._drained = self._drained, []
            for event in drained:
                event.succeed()
