"""Cluster-scale execution engines over the discrete-event simulator.

Three engines share one result schema so the evaluation harness can
compare them directly (paper §V):

* :class:`~repro.engines.pull.PullEngine` — DEWE v2's pulling model: the
  master publishes eligible jobs to a queue, stateless per-core worker
  slots compete for them first-come-first-served;
* :class:`~repro.engines.scheduling.SchedulingEngine` — the Pegasus +
  DAGMan + Condor baseline: a central matchmaker with periodic
  negotiation cycles, per-job submission overhead and log/staging I/O
  amplification;
* :class:`~repro.engines.dewe_v1.DeweV1Engine` — the push-based
  predecessor used in the motivational Fig 2: immediate round-robin
  assignment with per-job data staging, one workflow at a time.
"""

from repro.engines.base import EngineResult, JobRecord, RunConfig
from repro.engines.dewe_v1 import DeweV1Engine
from repro.engines.pull import PullEngine
from repro.engines.scheduling import SchedulingEngine

__all__ = [
    "DeweV1Engine",
    "EngineResult",
    "JobRecord",
    "PullEngine",
    "RunConfig",
    "SchedulingEngine",
]
