"""Scheduling-based execution — the Pegasus + DAGMan + Condor baseline.

The paper's comparison system "emphasizes scheduling where the master node
maintains the state of all participating worker nodes, assigns jobs to
worker nodes ... as well as stages necessary data files to the worker
nodes" (§II).  The model has exactly the overhead sources the paper
attributes to that architecture:

* a **central dispatcher** that submits matched jobs one at a time
  (``submit_overhead`` seconds each — the schedd/DAGMan submission path;
  DEWE v2's broker has no such serialization);
* a per-job **dispatch latency** (negotiation-cycle wait and matchmaking);
* a per-node **slot cap** below the vCPU count (the paper observes at most
  20 concurrent threads under Pegasus vs 25 under DEWE v2 on a 32-vCPU
  node, Fig 6a);
* per-job **wrapper CPU** (condor_starter fork/exec, Pegasus kickstart);
* explicit **data staging**: inputs are copied to the worker regardless of
  page-cache state (``read_miss = 1.0``) and outputs are written with an
  amplification factor plus per-job log bytes — the "more disk I/O
  activities" of Fig 6c/7c.

Every knob is a constructor argument with the Fig 6-calibrated default.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cloud.cluster import ClusterSpec
from repro.dewe.state import WorkflowState
from repro.engines.base import EngineBase, EngineResult, JobRecord, RunConfig, execute_job
from repro.sim import FifoStore
from repro.workflow.ensemble import Ensemble

__all__ = ["CentralDispatchEngine", "SchedulingEngine"]


class CentralDispatchEngine(EngineBase):
    """Shared core: a master that assigns jobs to known worker slots.

    Subclasses set the overhead profile.  Jobs are matched FIFO to the
    least-recently-freed slot (Condor's negotiator round-robins over
    idle slots the same way).
    """

    name = "central"

    def __init__(
        self,
        spec: ClusterSpec,
        config: Optional[RunConfig] = None,
        max_slots_per_node: Optional[int] = None,
        submit_overhead: float = 0.0,
        dispatch_latency: float = 0.0,
        wrapper_cpu: float = 0.0,
        read_miss: Optional[float] = None,
        output_copy_factor: float = 0.0,
        log_bytes_per_job: float = 0.0,
        sequential_workflows: bool = False,
        type_aware: bool = False,
        long_job_threshold: float = 30.0,
    ):
        super().__init__(spec, config)
        self.max_slots_per_node = max_slots_per_node
        self.submit_overhead = submit_overhead
        self.dispatch_latency = dispatch_latency
        self.wrapper_cpu = wrapper_cpu
        self.read_miss = read_miss
        self.output_copy_factor = output_copy_factor
        self.log_bytes_per_job = log_bytes_per_job
        self.sequential_workflows = sequential_workflows
        #: Grid-era matchmaking (paper §II): "schedule critical jobs to
        #: worker nodes with more processing power".  When True, jobs
        #: longer than ``long_job_threshold`` reference-seconds are
        #: upgraded to a fastest-core slot if one is free.  Only relevant
        #: on heterogeneous clusters — the situation whose disappearance
        #: in public clouds is DEWE v2's whole premise.
        self.type_aware = type_aware
        self.long_job_threshold = long_job_threshold

    def run(self, ensemble: Ensemble) -> EngineResult:
        sim, cluster, thread_logs = self._setup(ensemble)
        cfg = self.config
        fs = cluster.fs
        states: Dict[str, WorkflowState] = {}
        spans: Dict[str, Tuple[float, float]] = {}
        records: List[JobRecord] = []
        done = sim.event()
        remaining = [len(ensemble)]
        jobs_executed = [0]
        extra_writes = [0.0]
        thread_counts = [0] * len(cluster.nodes)

        ready = FifoStore(sim)       # (state, job_id) awaiting a slot
        slots = FifoStore(sim)       # node indices with a free slot
        # One persistent runner generator per slot, fed through a
        # per-node store — not one Process per job (the allocation cost
        # the pull engine's worker slots already avoid).
        node_feeds: List[FifoStore] = [FifoStore(sim) for _ in cluster.nodes]

        wf_complete_events: Dict[str, object] = {}

        def run_job(node_index: int, state: WorkflowState, job_id: str):
            node = cluster.nodes[node_index]
            job = state.workflow.job(job_id)
            attempt = state.current_attempt(job_id)
            dispatched = sim.now
            if self.dispatch_latency > 0:
                # Negotiation-cycle / matchmaking wait before start.
                yield sim.timeout(self.dispatch_latency)
            state.on_running(job_id, attempt, sim.now)
            start = sim.now
            thread_counts[node_index] += 1
            thread_logs[node_index].record(sim.now, thread_counts[node_index])
            extra_bytes = (
                job.output_bytes * self.output_copy_factor + self.log_bytes_per_job
            )
            extra_writes[0] += extra_bytes
            phases = yield from execute_job(
                sim,
                node,
                fs,
                job,
                speed=node.itype.cpu_speed,
                read_miss_override=self.read_miss,
                extra_cpu=self.wrapper_cpu,
                extra_write_bytes=extra_bytes,
                owner=state.name,
            )
            thread_counts[node_index] -= 1
            thread_logs[node_index].record(sim.now, thread_counts[node_index])
            jobs_executed[0] += 1
            if cfg.record_jobs:
                read_t, compute_t, write_t = phases
                records.append(
                    JobRecord(
                        workflow=state.name,
                        job_id=job_id,
                        task_type=job.task_type,
                        node=node_index,
                        start=start,
                        end=sim.now,
                        read_time=read_t,
                        compute_time=compute_t,
                        write_time=write_t,
                        attempt=attempt,
                        overhead_time=start - dispatched,
                    )
                )
            slots.put(node_index)
            for child_id in state.on_completed(job_id, attempt):
                ready.put((state, child_id))
            if state.is_complete:
                spans[state.name] = (spans[state.name][0], sim.now)
                event = wf_complete_events.get(state.name)
                if event is not None:
                    event.succeed()
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed()

        def slot_runner(node_index: int):
            feed = node_feeds[node_index]
            while True:
                pending = feed.get()
                if pending.triggered:
                    state, job_id = pending.value
                else:
                    state, job_id = yield pending
                yield from run_job(node_index, state, job_id)

        max_speed = max(node.itype.cpu_speed for node in cluster.nodes)

        def dispatcher():
            while True:
                state, job_id = yield ready.get()
                node_index = yield slots.get()
                if (
                    self.type_aware
                    and state.workflow.job(job_id).runtime >= self.long_job_threshold
                    and cluster.nodes[node_index].itype.cpu_speed < max_speed
                ):
                    # Matchmaking: trade the slot for a fastest-core one
                    # if any is idle right now (no waiting).
                    better = slots.take(
                        lambda i: cluster.nodes[i].itype.cpu_speed == max_speed
                    )
                    if better is not None:
                        slots.put(node_index)
                        node_index = better
                if self.submit_overhead > 0:
                    # The submission path handles one job at a time.
                    yield sim.timeout(self.submit_overhead)
                node_feeds[node_index].put((state, job_id))

        def submitter():
            for submit_time, wf in ensemble:
                if submit_time > sim.now:
                    yield sim.timeout(submit_time - sim.now)
                state = WorkflowState(wf, cfg.default_timeout, validate=False)
                states[wf.name] = state
                spans[wf.name] = (sim.now, float("nan"))
                if self.sequential_workflows:
                    wf_complete_events[wf.name] = sim.event()
                for job_id in state.initial_ready():
                    ready.put((state, job_id))
                if self.sequential_workflows:
                    # DEWE v1 runs one workflow at a time (paper §I).
                    yield wf_complete_events[wf.name]

        for i, node in enumerate(cluster.nodes):
            cap = node.cores.capacity
            if self.max_slots_per_node is not None:
                cap = min(cap, self.max_slots_per_node)
            for _ in range(cap):
                slots.put(i)
                sim.process(slot_runner(i))

        sim.process(submitter())
        sim.process(dispatcher())
        sim.run_until(done)
        if cfg.drain_caches:
            sim.run_until(fs.drained())

        makespan = max(end for _start, end in spans.values())
        return EngineResult(
            engine=self.name,
            spec=self.spec,
            n_workflows=len(ensemble),
            makespan=makespan,
            workflow_spans=dict(spans),
            records=records,
            cluster=cluster,
            jobs_executed=jobs_executed[0],
            extra_write_bytes=extra_writes[0],
            thread_logs=thread_logs,
        )


class SchedulingEngine(CentralDispatchEngine):
    """The Pegasus + DAGMan + Condor baseline with Fig 6 calibration."""

    name = "pegasus"

    def __init__(self, spec: ClusterSpec, config: Optional[RunConfig] = None, **overrides):
        defaults = dict(
            # Fig 6a: at most 20 concurrent threads on a 32-vCPU node.
            max_slots_per_node=20,
            # Schedd/DAGMan submission path: ~45 job starts per second.
            submit_overhead=0.022,
            # Mean matchmaking/negotiation wait per job (holds the slot).
            dispatch_latency=0.5,
            # condor_starter + kickstart wrapper work per job.
            wrapper_cpu=0.55,
            # Explicit stage-in ignores the page cache.
            read_miss=1.0,
            # Outputs are written to the worker's sandbox and then staged
            # back to shared storage; plus per-job logs (Fig 6c/7c).
            output_copy_factor=1.5,
            log_bytes_per_job=5e6,
        )
        defaults.update(overrides)
        super().__init__(spec, config, **defaults)
