"""DEWE v1 — the push-based predecessor (paper ref [8], used in Fig 2).

DEWE v1 assigns jobs to workers directly (push) and stages data files
between worker nodes per job, which is why the Fig 2 timeline shows
per-slot communication gaps; and it "is only capable of running a single
workflow at a time" (§I), so ensembles execute serially.

Modelled as a central dispatcher with no submission serialization and a
full per-node concurrency cap, but with explicit per-job staging
(``read_miss = 1.0`` — every input crosses the disk/network) and a small
per-job staging latency.
"""

from __future__ import annotations

from typing import Optional

from repro.cloud.cluster import ClusterSpec
from repro.engines.base import RunConfig
from repro.engines.scheduling import CentralDispatchEngine

__all__ = ["DeweV1Engine"]


class DeweV1Engine(CentralDispatchEngine):
    """Push-based, single-workflow-at-a-time engine."""

    name = "dewe-v1"

    def __init__(self, spec: ClusterSpec, config: Optional[RunConfig] = None, **overrides):
        defaults = dict(
            max_slots_per_node=None,   # uses all vCPUs
            submit_overhead=0.0,
            dispatch_latency=0.2,      # push-assignment round trip
            wrapper_cpu=0.0,
            read_miss=1.0,             # per-job data staging, no cache reuse
            output_copy_factor=0.0,
            log_bytes_per_job=0.0,
            sequential_workflows=True,
        )
        defaults.update(overrides)
        super().__init__(spec, config, **defaults)
