"""Shared machinery for the simulation engines.

Defines the run configuration, the per-job record, the result object the
benchmarks consume, and the canonical three-phase job execution process
(read inputs -> compute -> write outputs) used by every engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.cluster import ClusterSpec, SimCluster
from repro.cloud.node import SimNode
from repro.cloud.pricing import BillingModel
from repro.sim import SegmentLog, Simulator
from repro.storage.base import SharedFileSystem
from repro.workflow.dag import Job
from repro.workflow.ensemble import Ensemble

__all__ = ["RunConfig", "JobRecord", "EngineResult", "execute_job", "EngineBase"]


@dataclass(frozen=True)
class RunConfig:
    """Engine-independent run options.

    Attributes
    ----------
    default_timeout:
        Master-daemon job timeout (paper §III.B).
    timeout_check_interval:
        How often the master scans for overdue jobs.
    record_jobs:
        Keep a :class:`JobRecord` per executed job.  Needed for the
        timeline figures; turn off for the 1.7M-job full-scale runs to
        save memory.
    drain_caches:
        If True, the run ends when write-back caches are flushed, not at
        the last job ack (the paper measures to the last ack; flushing
        continues in the background).
    """

    default_timeout: float = 600.0
    timeout_check_interval: float = 5.0
    record_jobs: bool = True
    drain_caches: bool = False


@dataclass(slots=True)
class JobRecord:
    """What one executed job attempt did, for timelines and reports."""

    workflow: str
    job_id: str
    task_type: str
    node: int
    start: float
    end: float
    read_time: float
    compute_time: float
    write_time: float
    attempt: int = 1
    #: Coordination latency before the job started doing useful work
    #: (scheduling-cycle wait, dispatch overhead...).
    overhead_time: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class EngineResult:
    """Outcome of one simulated ensemble run."""

    engine: str
    spec: ClusterSpec
    n_workflows: int
    makespan: float
    workflow_spans: Dict[str, Tuple[float, float]]
    records: List[JobRecord]
    cluster: SimCluster
    resubmissions: int = 0
    jobs_executed: int = 0
    extra_write_bytes: float = 0.0  # engine overhead (logs, staging copies)
    #: Per-node concurrent-job-thread logs (Fig 6a).
    thread_logs: List[SegmentLog] = field(default_factory=list)
    #: Per-node worker-daemon lease intervals ``{node: [(start, end), ...]}``.
    #: For a static run every node is leased for the whole makespan; an
    #: autoscaled run (paper §V.A.3's dynamic provisioning) has shorter
    #: leases that :meth:`elastic_cost` bills individually.
    rental_spans: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Leases ended by a *provider* spot termination (subset of
    #: :attr:`rental_spans`); billed with the partial-hour-free spot rule.
    interrupted_spans: Dict[int, List[Tuple[float, float]]] = field(
        default_factory=dict
    )
    #: Injected fault / recovery events
    #: (:class:`~repro.faults.models.FaultEvent`), in injection order.
    fault_events: List = field(default_factory=list)
    #: Dead-lettered jobs (:class:`~repro.faults.retry.DeadLetterEntry`)
    #: across the ensemble — poison jobs and their stranded descendants.
    dead_letters: List = field(default_factory=list)
    #: Final per-workflow job status counts (pull engine only): each
    #: value maps :class:`~repro.dewe.state.JobStatus` values to counts.
    job_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Broker chaos tallies (dropped/duplicated/delayed), when a
    #: :class:`~repro.mq.chaosbroker.ChaosSimBroker` served the run.
    mq_chaos_stats: Dict[str, int] = field(default_factory=dict)
    #: Data-integrity tallies (verified/corrupted/lost/detected/
    #: regenerated/restaged) when integrity models ran
    #: (:class:`~repro.storage.integrity.FileIntegrity`).
    integrity_stats: Dict[str, int] = field(default_factory=dict)
    #: Jobs re-run (or inputs re-staged) by the data-aware recovery to
    #: regenerate lost/corrupt files, summed over the ensemble.
    data_recoveries: int = 0
    #: The run's write-ahead journal
    #: (:class:`~repro.recovery.journal.Journal`) when one was attached.
    journal: Optional[object] = None
    #: Liveness-plane tallies (heartbeat misses, lease fencings, stale
    #: acks, shed submissions, failovers, partitions, dead-letter depth)
    #: when the pull engine ran with leases, admission control, failover
    #: or a partition model (see :mod:`repro.liveness`).
    liveness_stats: Dict[str, int] = field(default_factory=dict)

    # -- aggregate metrics (paper Fig 7) ------------------------------------
    def total_cpu_seconds(self) -> float:
        """vCPU-seconds of actual compute over the run (Fig 7b)."""
        return sum(
            node.cores.log.integrate(self.makespan) for node in self.cluster.nodes
        )

    def total_disk_write_bytes(self) -> float:
        """Logical bytes written, including engine overhead (Fig 7c)."""
        return self.cluster.fs.bytes_written + self.extra_write_bytes

    def total_disk_read_bytes(self) -> float:
        return self.cluster.fs.bytes_read

    def cost(self, model: BillingModel = BillingModel.PER_HOUR) -> float:
        """Bill for the whole cluster over the whole run (static rental)."""
        return self.spec.cost(self.makespan, model)

    def elastic_cost(self, model: BillingModel = BillingModel.PER_HOUR) -> float:
        """Bill each node's actual lease intervals (dynamic provisioning).

        Leases ended by a provider spot termination use the
        partial-hour-free spot rule (:func:`~repro.cloud.pricing.spot_billed_hours`);
        everything else rounds up as usual.  Falls back to :meth:`cost`
        when no rental spans were recorded (engines other than the pull
        engine do not track leases).
        """
        if not self.rental_spans:
            return self.cost(model)
        from repro.cloud.pricing import cluster_cost, spot_billed_hours

        itype = self.spec.itype
        total = 0.0
        for node, spans in self.rental_spans.items():
            interrupted = set(self.interrupted_spans.get(node, ()))
            for span in spans:
                seconds = max(0.0, span[1] - span[0])
                if span in interrupted:
                    total += itype.price_per_hour * spot_billed_hours(seconds, model)
                else:
                    total += cluster_cost(itype, 1, seconds, model)
        return total

    def workflow_makespans(self) -> Dict[str, float]:
        return {name: end - start for name, (start, end) in self.workflow_spans.items()}

    def mean_workflow_makespan(self) -> float:
        spans = self.workflow_makespans()
        return sum(spans.values()) / len(spans) if spans else 0.0


def execute_job(
    sim: Simulator,
    node: SimNode,
    fs: SharedFileSystem,
    job: Job,
    speed: float = 1.0,
    read_miss_override: Optional[float] = None,
    extra_cpu: float = 0.0,
    extra_write_bytes: float = 0.0,
    owner: str = "",
):
    """Canonical job execution on a node; a generator for ``sim.process``.

    Phases: read inputs from the shared FS, compute on CPU cores, write
    outputs (absorbed by the write-back cache).  Returns
    ``(read_time, compute_time, write_time)``.

    ``speed`` scales compute (CPU performance factor).  ``extra_cpu`` and
    ``extra_write_bytes`` model engine overhead (Condor job wrappers,
    per-job logs).  ``read_miss_override`` forces a miss ratio (the
    scheduling engine's explicit staging bypasses the page cache).
    """
    t0 = sim.now
    # -- read phase --------------------------------------------------------
    # Events that are already triggered (cache hits, free cores, buffered
    # writes) are not yielded: the result is available now, and skipping
    # the yield saves a suspend/resume round-trip per phase.
    if job.inputs:
        if read_miss_override is None:
            ev = fs.read(node, job.inputs, owner)
            if not ev.triggered:
                yield ev
        else:
            yield from _read_with_miss(sim, node, fs, job, read_miss_override)
    t1 = sim.now
    # -- compute phase -------------------------------------------------------
    cpu_seconds = job.runtime / speed + extra_cpu
    if cpu_seconds > 0:
        grant = node.cores.acquire()
        if not grant.triggered:
            yield grant
        extra_cores = 0
        if job.threads > 1:
            # Opportunistically grab idle cores for multi-threaded jobs
            # (paper §III.D: OpenMP jobs keep their parallelism).
            while extra_cores < job.threads - 1 and node.cores.available > 0:
                node.cores.acquire()
                extra_cores += 1
        try:
            yield sim.timeout(cpu_seconds / (1 + extra_cores))
        finally:
            for _ in range(1 + extra_cores):
                node.cores.release()
    t2 = sim.now
    # -- write phase ---------------------------------------------------------
    if job.outputs or extra_write_bytes > 0:
        ev = fs.write(node, job.outputs, owner)
        if not ev.triggered:
            yield ev
        if extra_write_bytes > 0:
            # Overhead bytes go to the local disk via the write cache.
            ev = node.write_cache.write(extra_write_bytes, (node.disk.write,))
            if not ev.triggered:
                yield ev
    t3 = sim.now
    return (t1 - t0, t2 - t1, t3 - t2)


def _read_with_miss(sim, node, fs, job, miss: float):
    """Read inputs at an explicit miss ratio (bypasses the cache model)."""
    from repro.sim import JoinEvent

    local = 0.0
    remote: dict = {}
    for f in job.inputs:
        nbytes = f.size * miss
        home = fs.home_of(f)
        if home is node:
            local += nbytes
        else:
            remote[home] = remote.get(home, 0.0) + nbytes
    if not remote:
        if local > 0:
            fs.bytes_read += local
            yield node.disk.read.transfer(local)
        return
    join = JoinEvent(sim, (1 if local > 0 else 0) + 3 * len(remote))
    if local > 0:
        fs.bytes_read += local
        node.disk.read.transfer_into(local, join)
    sizes = []
    for home, nbytes in remote.items():
        fs.bytes_read += nbytes
        home.disk.read.transfer_into(nbytes, join)
        home.nic_out.transfer_into(nbytes, join)
        sizes.append(nbytes)
    if len(sizes) == 1:
        node.nic_in.transfer_into(sizes[0], join)
    else:
        node.nic_in.transfer_many(sizes, join)
    yield join


class EngineBase:
    """Common construction and bookkeeping for concrete engines."""

    name = "base"

    def __init__(self, spec: ClusterSpec, config: Optional[RunConfig] = None):
        self.spec = spec
        self.config = config or RunConfig()

    def _setup(self, ensemble: Ensemble):
        sim = Simulator()
        cluster = SimCluster(sim, self.spec)
        cluster.fs.stage_inputs(ensemble.workflows)
        # Per-node concurrent-thread logs (Fig 6a).
        thread_logs = [SegmentLog(0.0, 0.0) for _ in cluster.nodes]
        return sim, cluster, thread_logs

    def run(self, ensemble: Ensemble) -> EngineResult:  # pragma: no cover
        raise NotImplementedError
