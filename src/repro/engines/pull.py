"""The pulling execution engine — DEWE v2's coordination model in the DES.

Faithful to paper §III: the master daemon knows nothing about workers; it
publishes eligible jobs to the job-dispatching topic and reacts to acks.
Each node runs one worker-slot process per vCPU (the worker daemon stops
pulling at the concurrency cap, so vCPU slot processes are equivalent to
its pull loop + bounded thread pool).  Slots across all nodes wait on the
same topic, so jobs go to whichever slot asked first — first come, first
served, with zero scheduling decisions.

Fault injection (paper §V.A.3 and the chaos engine beyond it):

* a :class:`~repro.faults.injection.FaultSchedule` scripts worker-daemon
  kills and restarts; killed slots acknowledge nothing, so interrupted
  jobs are recovered by the master's timeout resubmission;
* seeded stochastic models from :mod:`repro.faults.models` drive spot
  terminations (with drain-on-notice), transient/poison job failures and
  degraded straggler nodes through a :class:`~repro.faults.models.ChaosAPI`;
* a :class:`~repro.mq.chaosbroker.MessageChaos` band makes the broker
  drop, duplicate or delay messages;
* a :class:`~repro.faults.retry.RetryPolicy` governs recovery: backoff
  before re-dispatch, attempt budgets, and dead-lettering of poison jobs
  so the rest of the ensemble still settles.

Every injected fault is recorded on a
:class:`~repro.faults.models.FaultTrace` and exported with the result,
so a seeded run's fault history is byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import repro.analysis.sanitizer as _sanitizer
from repro.cloud.cluster import ClusterSpec
from repro.dewe.state import JobStatus, WorkflowState
from repro.engines.base import EngineBase, EngineResult, JobRecord, RunConfig, execute_job
from repro.faults.models import ChaosAPI, FaultTrace, TransientFaultModel
from repro.faults.retry import DeadLetterEntry, RetryPolicy
from repro.mq.chaosbroker import ChaosSimBroker, MessageChaos
from repro.mq.simbroker import SimBroker
from repro.recovery.journal import Journal, MasterCrash
from repro.sim import AnyOf, Interrupt, Process
from repro.storage.integrity import FileIntegrity
from repro.workflow.ensemble import Ensemble

__all__ = ["PullEngine"]

_DISPATCH = "job-dispatching"
_ACK = "job-acknowledgment"
_RUNNING = 0
_COMPLETED = 1
_FAILED = 2
_CORRUPT = 3    # worker found the job's input files corrupt/missing


@dataclass
class ElasticAPI:
    """What an autoscaler controller can see and do during a run.

    The controller is a generator process: it yields DES events (usually
    ``api.sim.timeout(check_interval)``) and reacts to queue state —
    exactly the information a real controller could read off the broker's
    management interface.
    """

    sim: "object"
    n_nodes: int
    _queue_depth: "object"
    _active: "object"
    _start: "object"
    _stop: "object"
    _done: "object"

    def queue_depth(self) -> int:
        """Jobs waiting in the dispatching topic right now."""
        return self._queue_depth()

    def active_nodes(self) -> list:
        """Node indices with a live worker daemon."""
        return self._active()

    def start_worker(self, node_index: int) -> None:
        self._start(node_index)

    def stop_worker(self, node_index: int) -> None:
        """Graceful scale-in: the node finishes in-flight jobs, then leaves."""
        self._stop(node_index)

    @property
    def finished(self) -> bool:
        return self._done.triggered


class PullEngine(EngineBase):
    """DEWE v2 over the cluster simulator."""

    name = "dewe-v2"

    def __init__(
        self,
        spec: ClusterSpec,
        config: Optional[RunConfig] = None,
        broker_latency: float = 0.002,
        fault_schedule=None,
        autoscaler=None,
        initially_down: tuple = (),
        retry: Optional[RetryPolicy] = None,
        transient: Optional[TransientFaultModel] = None,
        chaos_models: Sequence = (),
        message_chaos: Optional[MessageChaos] = None,
        fault_trace: Optional[FaultTrace] = None,
        journal: Optional[Journal] = None,
        integrity_models: Sequence = (),
    ):
        """``autoscaler`` is an optional controller — a generator function
        taking an :class:`ElasticAPI` — that may start and (gracefully)
        stop per-node worker daemons while the ensemble runs, the dynamic
        resource provisioning the paper sketches in §V.A.3.
        ``initially_down`` lists nodes whose daemon the autoscaler will
        bring up later (they are provisioned but not leased at t=0).

        Chaos knobs: ``retry`` is the re-dispatch policy (default:
        unlimited immediate retries, the paper's behaviour);
        ``transient`` injects per-attempt job failures; ``chaos_models``
        are installable models (spot terminations, stragglers) driven
        through a :class:`~repro.faults.models.ChaosAPI`;
        ``message_chaos`` wraps the broker in a drop/duplicate/delay
        band; ``fault_trace`` collects every injected fault (a fresh
        trace is created when any chaos is configured and none given).

        Recovery knobs: ``journal`` is a write-ahead
        :class:`~repro.recovery.journal.Journal` recording every master
        state transition (and, with ``crash_after`` set, injecting a
        master crash); ``integrity_models`` are data-plane fault
        injectors (:class:`~repro.faults.models.FileCorruptionModel`,
        :class:`~repro.faults.models.FileLossModel`) — when present,
        workers checksum their inputs before running a job and the
        master regenerates damaged files by re-executing the minimal
        ancestor set (data-aware recovery).
        """
        super().__init__(spec, config)
        self.broker_latency = broker_latency
        self.fault_schedule = fault_schedule
        self.autoscaler = autoscaler
        self.initially_down = tuple(initially_down)
        self.retry = retry or RetryPolicy()
        self.transient = transient
        self.chaos_models = tuple(chaos_models)
        self.message_chaos = message_chaos
        self.fault_trace = fault_trace
        self.journal = journal
        self.integrity_models = tuple(integrity_models)

    def run(self, ensemble: Ensemble) -> EngineResult:
        sim, cluster, thread_logs = self._setup(ensemble)
        cfg = self.config
        retry_policy = self.retry
        transient = self.transient
        trace = self.fault_trace
        if trace is None:
            trace = FaultTrace()
        if self.message_chaos is not None:
            broker = ChaosSimBroker(
                sim, self.message_chaos, latency=self.broker_latency, trace=trace
            )
        else:
            broker = SimBroker(sim, self.broker_latency)
        fs = cluster.fs
        states: Dict[str, WorkflowState] = {}
        spans: Dict[str, Tuple[float, float]] = {}
        records: List[JobRecord] = []
        done = sim.event()
        remaining = [len(ensemble)]
        jobs_executed = [0]
        finished: set = set()
        dead_letters: List[DeadLetterEntry] = []
        dead_cursor: Dict[str, int] = {}
        thread_counts = [0] * len(cluster.nodes)
        node_slots: List[List[Process]] = [[] for _ in cluster.nodes]

        # -- data-integrity plane ---------------------------------------------
        integrity: Optional[FileIntegrity] = None
        if self.integrity_models:
            integrity = FileIntegrity(trace=trace, models=self.integrity_models)
            for wf in ensemble.workflows:
                for f in wf.files().values():
                    if f.kind == "input":
                        integrity.record_stage(wf.name, f)
        def producer_index(state: WorkflowState) -> Dict[str, str]:
            # file name -> producer job id; interned on the skeleton,
            # shared by all relabelled ensemble members.
            return state.workflow.skeleton().producer_of

        # -- write-ahead journal ----------------------------------------------
        journal = self.journal
        crash_event = sim.event()
        if journal is None:
            def jlog(kind: str, workflow: str = "", job_id: str = "",
                     attempt: int = 0, detail: str = "") -> None:
                return
        else:
            run_token = object()
            journal.owner = run_token

            def jlog(kind: str, workflow: str = "", job_id: str = "",
                     attempt: int = 0, detail: str = "") -> None:
                # Stale writers (a crashed run's generators, finalized by
                # GC after the resume took over) must not touch the log.
                if journal.owner is not run_token:
                    return
                journal.append(sim.now, kind, workflow, job_id, attempt, detail)

            def _snapshots() -> Dict[str, Dict]:
                return {name: states[name].snapshot() for name in sorted(states)}

            def _on_crash() -> None:
                if not crash_event.triggered:
                    crash_event.succeed()

            journal.snapshot_provider = _snapshots
            journal.on_crash = _on_crash

        def dispatch(state: WorkflowState, job_id: str) -> None:
            san = _sanitizer._ACTIVE
            if san is not None:
                san.check_dispatch(
                    state.name, job_id, state.status[job_id].value, time=sim.now
                )
            jlog("dispatch", state.name, job_id, state.attempt.get(job_id, 0))
            state.mark_dispatched(job_id, sim.now)
            broker.publish(_DISPATCH, (state.name, job_id, state.attempt[job_id]))

        def redispatch(state: WorkflowState, job_id: str) -> None:
            """Re-dispatch after the retry policy's backoff."""
            delay = retry_policy.backoff(
                state.attempt[job_id] - 1, key=f"{state.name}/{job_id}"
            )
            if delay <= 0:
                dispatch(state, job_id)
                return
            expected = state.attempt[job_id]

            def fire() -> None:
                # Only if this delivery is still the current one — a
                # completion or a newer resubmission supersedes it.
                if (
                    state.status[job_id] is JobStatus.QUEUED
                    and state.attempt[job_id] == expected
                ):
                    dispatch(state, job_id)

            sim.schedule_call(delay, fire)

        def collect_dead(state: WorkflowState) -> None:
            seen = dead_cursor.get(state.name, 0)
            if len(state.dead_letters) > seen:
                dead_cursor[state.name] = len(state.dead_letters)
                for entry in state.dead_letters[seen:]:
                    dead_letters.append(entry)
                    jlog(
                        "dead-letter", entry.workflow, entry.job_id,
                        entry.attempts, entry.reason,
                    )
                    trace.record(
                        sim.now,
                        "dead-letter",
                        detail=f"{entry.workflow}/{entry.job_id} "
                        f"({entry.reason}, {entry.attempts} attempts)",
                    )

        def maybe_finish(state: WorkflowState) -> None:
            if state.name in finished or not state.is_settled:
                return
            finished.add(state.name)
            spans[state.name] = (spans[state.name][0], sim.now)
            remaining[0] -= 1
            if remaining[0] == 0 and not done.triggered:
                done.succeed()

        # -- master daemon ---------------------------------------------------
        def submitter():
            for submit_time, wf in ensemble:
                if submit_time > sim.now:
                    yield sim.timeout(submit_time - sim.now)
                jlog("submit", wf.name, detail=f"jobs={len(wf.jobs)}")
                state = WorkflowState(
                    wf, cfg.default_timeout, validate=False, retry=retry_policy
                )
                states[wf.name] = state
                spans[wf.name] = (sim.now, float("nan"))
                for job_id in state.initial_ready():
                    dispatch(state, job_id)
                maybe_finish(state)  # degenerate empty-DAG guard

        def on_corrupt_ack(
            state: WorkflowState, job_id: str, attempt: int, bad_names
        ) -> None:
            """Data-aware recovery: map damaged files to their producer
            jobs and re-execute the minimal ancestor set; producerless
            raw inputs are re-staged from the submit host."""
            index = producer_index(state)
            producers: List[str] = []
            raw: List[str] = []
            seen: set = set()
            for file_name in bad_names:
                producer_id = index.get(file_name)
                if producer_id is None:
                    raw.append(file_name)
                elif producer_id not in seen:
                    seen.add(producer_id)
                    producers.append(producer_id)
            to_dispatch = state.on_corrupt(job_id, attempt, producers, sim.now)
            if to_dispatch is None:
                return  # stale/duplicate detection report
            if raw and integrity is not None:
                by_name = {f.name: f for f in state.workflow.job(job_id).inputs}
                for file_name in raw:
                    integrity.restage(state.name, by_name[file_name], sim.now)
            collect_dead(state)
            for regen_id in to_dispatch:
                dispatch(state, regen_id)
            maybe_finish(state)

        def handle_ack(msg) -> None:
            kind, name, job_id, attempt = msg[:4]
            state = states[name]
            if kind == _RUNNING:
                jlog("ack-running", name, job_id, attempt)
                state.on_running(job_id, attempt, sim.now)
                return
            if kind == _FAILED:
                jlog("ack-failed", name, job_id, attempt)
                republish = state.on_failed(job_id, attempt, sim.now)
                collect_dead(state)
                if republish is not None:
                    redispatch(state, republish)
                else:
                    maybe_finish(state)
            elif kind == _CORRUPT:
                jlog(
                    "ack-corrupt", name, job_id, attempt,
                    ",".join(msg[4]),
                )
                on_corrupt_ack(state, job_id, attempt, msg[4])
            else:
                jlog("ack-complete", name, job_id, attempt)
                for child_id in state.on_completed(job_id, attempt):
                    dispatch(state, child_id)
                maybe_finish(state)

        def ack_loop():
            while True:
                msg = yield broker.consume(_ACK)
                # Drain the whole burst before suspending: same-instant
                # acks (batched broker deliveries) cost one resume total
                # instead of one suspend/resume round-trip per message.
                while True:
                    handle_ack(msg)
                    if done.triggered:
                        return
                    msg = broker.consume_nowait(_ACK)
                    if msg is None:
                        break

        def timeout_loop():
            while not done.triggered:
                yield sim.timeout(cfg.timeout_check_interval)
                for state in states.values():
                    if state.name in finished:
                        continue
                    for job_id in state.expired(sim.now):
                        jlog(
                            "timeout-requeue", state.name, job_id,
                            state.attempt[job_id],
                        )
                        redispatch(state, job_id)
                    collect_dead(state)
                    maybe_finish(state)

        # -- worker daemons ----------------------------------------------------
        # Rental accounting for elastic provisioning: a node's lease runs
        # from worker start until its last slot exits.
        n_nodes = len(cluster.nodes)
        leases: List[List[List[float]]] = [[] for _ in range(n_nodes)]
        slot_alive = [0] * n_nodes
        draining: set = set()
        idle_waits: List[set] = [set() for _ in range(n_nodes)]
        cpu_factor = [1.0] * n_nodes
        spot_interrupted: Dict[int, List[int]] = {}

        def _slot_exit(node_index: int) -> None:
            slot_alive[node_index] -= 1
            if slot_alive[node_index] == 0 and leases[node_index]:
                leases[node_index][-1][1] = sim.now
                jlog("lease-expiry", detail=f"node={node_index}")

        def worker_slot(node_index: int):
            node = cluster.nodes[node_index]
            log = thread_logs[node_index]
            try:
                while node_index not in draining:
                    pending = broker.consume(_DISPATCH)
                    if pending.triggered:
                        # A job was already queued: take it without a
                        # suspend/resume round-trip.  (Queued jobs imply
                        # no other slot is waiting, so no one is bypassed.)
                        msg = pending.value
                    else:
                        idle_waits[node_index].add(pending)
                        try:
                            msg = yield pending
                        except Interrupt:
                            broker.cancel(_DISPATCH, pending)
                            return
                        finally:
                            idle_waits[node_index].discard(pending)
                    if msg is None:
                        return  # consume cancelled (graceful scale-in)
                    name, job_id, attempt = msg
                    job = states[name].workflow.job(job_id)
                    broker.publish(_ACK, (_RUNNING, name, job_id, attempt))
                    if integrity is not None:
                        bad = integrity.verify(name, job.inputs, sim.now)
                        if bad:
                            # Don't run on damaged data: report the bad
                            # files so the master can regenerate them.
                            broker.publish(
                                _ACK,
                                (_CORRUPT, name, job_id, attempt, tuple(bad)),
                            )
                            continue
                    start = sim.now
                    thread_counts[node_index] += 1
                    log.record(sim.now, thread_counts[node_index])
                    try:
                        phases = yield from execute_job(
                            sim,
                            node,
                            fs,
                            job,
                            speed=node.itype.cpu_speed * cpu_factor[node_index],
                            owner=name,
                        )
                    except Interrupt:
                        # Worker daemon killed mid-job: no completion ack;
                        # the master's timeout will resubmit (paper §V.A.3).
                        thread_counts[node_index] -= 1
                        log.record(sim.now, thread_counts[node_index])
                        return
                    thread_counts[node_index] -= 1
                    log.record(sim.now, thread_counts[node_index])
                    jobs_executed[0] += 1
                    if integrity is not None:
                        for f in job.outputs:
                            integrity.record_write(name, f, sim.now)
                    if cfg.record_jobs:
                        read_t, compute_t, write_t = phases
                        records.append(
                            JobRecord(
                                workflow=name,
                                job_id=job_id,
                                task_type=job.task_type,
                                node=node_index,
                                start=start,
                                end=sim.now,
                                read_time=read_t,
                                compute_time=compute_t,
                                write_time=write_t,
                                attempt=attempt,
                            )
                        )
                    if transient is not None and transient.should_fail(
                        name, job_id, attempt
                    ):
                        trace.record(
                            sim.now,
                            "transient-failure",
                            node_index,
                            f"{name}/{job_id}#{attempt}",
                        )
                        broker.publish(_ACK, (_FAILED, name, job_id, attempt))
                    else:
                        broker.publish(_ACK, (_COMPLETED, name, job_id, attempt))
            finally:
                _slot_exit(node_index)

        def start_worker(node_index: int) -> None:
            if slot_alive[node_index] > 0:
                return  # daemon already running on this node
            draining.discard(node_index)
            jlog("lease-grant", detail=f"node={node_index}")
            leases[node_index].append([sim.now, None])
            slots = node_slots[node_index]
            slots.clear()
            capacity = cluster.nodes[node_index].cores.capacity
            slot_alive[node_index] = capacity
            for _ in range(capacity):
                slots.append(sim.process(worker_slot(node_index)))

        def kill_worker(node_index: int) -> None:
            """Abrupt death: in-flight jobs are lost (fault injection)."""
            for proc in node_slots[node_index]:
                proc.interrupt("worker daemon killed")
            node_slots[node_index].clear()

        def stop_worker(node_index: int) -> None:
            """Graceful scale-in: idle slots leave now, busy slots finish
            their current job first — nothing is lost, no timeout needed.
            Slot processes stay registered so a later kill (spot notice
            followed by the termination) still interrupts stragglers."""
            draining.add(node_index)
            for pending in list(idle_waits[node_index]):
                broker.cancel(_DISPATCH, pending)

        # -- chaos model hooks -------------------------------------------------
        disk_base = [
            (node.disk.read.capacity, node.disk.write.capacity)
            for node in cluster.nodes
        ]

        def set_disk_factor(node_index: int, factor: float) -> None:
            node = cluster.nodes[node_index]
            node.disk.read.set_capacity(disk_base[node_index][0] * factor)
            node.disk.write.set_capacity(disk_base[node_index][1] * factor)

        def set_cpu_factor(node_index: int, factor: float) -> None:
            if factor <= 0:
                raise ValueError(f"cpu factor must be positive, got {factor}")
            cpu_factor[node_index] = factor

        def mark_spot_terminated(node_index: int) -> None:
            # The kill has already closed the node's current lease; flag
            # it for partial-hour-free spot billing.  A later replacement
            # starts a *new* lease, billed normally.
            if leases[node_index]:
                jlog("billing-spot", detail=f"node={node_index}")
                spot_interrupted.setdefault(node_index, []).append(
                    len(leases[node_index]) - 1
                )

        def traced_start(node_index: int) -> None:
            trace.record(sim.now, "restart", node_index)
            start_worker(node_index)

        def traced_kill(node_index: int) -> None:
            trace.record(sim.now, "kill", node_index)
            kill_worker(node_index)

        sim.process(submitter())
        sim.process(ack_loop())
        sim.process(timeout_loop())
        initially_down = set(self.initially_down)
        if self.fault_schedule is not None:
            initially_down |= set(self.fault_schedule.initially_down)
            self.fault_schedule.install(sim, traced_start, traced_kill)
        if self.chaos_models:
            api = ChaosAPI(
                sim=sim,
                n_nodes=n_nodes,
                start_worker=start_worker,
                stop_worker=stop_worker,
                kill_worker=kill_worker,
                set_disk_factor=set_disk_factor,
                set_cpu_factor=set_cpu_factor,
                mark_spot_terminated=mark_spot_terminated,
                trace=trace,
            )
            for model in self.chaos_models:
                model.install(api)
        for i in range(n_nodes):
            if i not in initially_down:
                start_worker(i)
        if self.autoscaler is not None:
            api = ElasticAPI(
                sim=sim,
                n_nodes=n_nodes,
                _queue_depth=lambda: broker.depth(_DISPATCH),
                _active=lambda: [i for i in range(n_nodes) if slot_alive[i] > 0],
                _start=start_worker,
                _stop=stop_worker,
                _done=done,
            )
            sim.process(self.autoscaler(api))

        until = done if journal is None else AnyOf(sim, [done, crash_event])
        try:
            sim.run_until(until)
        except MasterCrash:
            # Raised out of a scheduled callback (e.g. a backoff
            # redispatch) after the journal's crash budget was hit; the
            # crash_event path below reports it uniformly.
            pass
        finally:
            # The run is over: revoke write access so this run's worker
            # generators — finalized by GC at some arbitrary later point
            # — cannot append trailing records to a journal that a
            # resumed run (or nobody) now owns.
            if journal is not None:
                journal.owner = None
        if journal is not None and journal.crashed:
            raise MasterCrash(
                f"master crashed at t={sim.now:.6f} after {journal.seq} "
                f"journal records; resume via resume_from(journal)"
            )
        if cfg.drain_caches:
            sim.run_until(fs.drained())

        makespan = max(end for _start, end in spans.values())
        rental_spans = {
            i: [(s, e if e is not None else makespan) for s, e in leases[i]]
            for i in range(n_nodes)
            if leases[i]
        }
        interrupted_spans = {
            i: [rental_spans[i][k] for k in indices]
            for i, indices in spot_interrupted.items()
            if i in rental_spans
        }
        san = _sanitizer._ACTIVE
        if san is not None:
            for i, node_spans in rental_spans.items():
                san.check_leases(cluster.nodes[i].name, node_spans, makespan)
        return EngineResult(
            engine=self.name,
            spec=self.spec,
            n_workflows=len(ensemble),
            makespan=makespan,
            workflow_spans=dict(spans),
            records=records,
            cluster=cluster,
            resubmissions=sum(s.resubmissions for s in states.values()),
            jobs_executed=jobs_executed[0],
            thread_logs=thread_logs,
            rental_spans=rental_spans,
            interrupted_spans=interrupted_spans,
            fault_events=list(trace),
            dead_letters=dead_letters,
            job_counts={name: state.counts() for name, state in states.items()},
            mq_chaos_stats=(
                broker.stats() if isinstance(broker, ChaosSimBroker) else {}
            ),
            integrity_stats=dict(integrity.stats) if integrity is not None else {},
            data_recoveries=sum(s.data_recoveries for s in states.values()),
            journal=journal,
        )

    def resume_from(self, journal: Journal, ensemble: Ensemble) -> EngineResult:
        """Resume a crashed run from its write-ahead journal.

        The engine is deterministic, so resume is *validated replay*:
        the journal is re-armed (:meth:`~repro.recovery.journal.Journal.resume`)
        and the ensemble re-runs from t=0 with identical seeds; every
        record appended inside the journaled prefix is validated
        byte-for-byte against the crashed run's records (sanitizer check
        ``journal-replay``), then the journal switches to live appends
        and the run completes.  The caller must pass the same ensemble
        (or an identically seeded rebuild).

        Raises :class:`~repro.recovery.journal.ReplayDivergence` if the
        resumed run diverges from the journaled prefix.
        """
        if journal.crashed:
            journal.resume()
        self.journal = journal
        # Trace and broker chaos state are per-run: a fresh trace is
        # created inside run() when none is pinned on the engine.
        self.fault_trace = None
        return self.run(ensemble)
