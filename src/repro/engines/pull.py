"""The pulling execution engine — DEWE v2's coordination model in the DES.

Faithful to paper §III: the master daemon knows nothing about workers; it
publishes eligible jobs to the job-dispatching topic and reacts to acks.
Each node runs one worker-slot process per vCPU (the worker daemon stops
pulling at the concurrency cap, so vCPU slot processes are equivalent to
its pull loop + bounded thread pool).  Slots across all nodes wait on the
same topic, so jobs go to whichever slot asked first — first come, first
served, with zero scheduling decisions.

Fault injection (paper §V.A.3): a :class:`~repro.faults.injection.FaultSchedule`
kills and restarts per-node worker daemons mid-run; killed slots
acknowledge nothing, so interrupted jobs are recovered by the master's
timeout resubmission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.cluster import ClusterSpec
from repro.dewe.state import WorkflowState
from repro.engines.base import EngineBase, EngineResult, JobRecord, RunConfig, execute_job
from repro.mq.simbroker import SimBroker
from repro.sim import Interrupt, Process
from repro.workflow.ensemble import Ensemble

__all__ = ["PullEngine"]

_DISPATCH = "job-dispatching"
_ACK = "job-acknowledgment"
_RUNNING = 0
_COMPLETED = 1


@dataclass
class ElasticAPI:
    """What an autoscaler controller can see and do during a run.

    The controller is a generator process: it yields DES events (usually
    ``api.sim.timeout(check_interval)``) and reacts to queue state —
    exactly the information a real controller could read off the broker's
    management interface.
    """

    sim: "object"
    n_nodes: int
    _queue_depth: "object"
    _active: "object"
    _start: "object"
    _stop: "object"
    _done: "object"

    def queue_depth(self) -> int:
        """Jobs waiting in the dispatching topic right now."""
        return self._queue_depth()

    def active_nodes(self) -> list:
        """Node indices with a live worker daemon."""
        return self._active()

    def start_worker(self, node_index: int) -> None:
        self._start(node_index)

    def stop_worker(self, node_index: int) -> None:
        """Graceful scale-in: the node finishes in-flight jobs, then leaves."""
        self._stop(node_index)

    @property
    def finished(self) -> bool:
        return self._done.triggered


class PullEngine(EngineBase):
    """DEWE v2 over the cluster simulator."""

    name = "dewe-v2"

    def __init__(
        self,
        spec: ClusterSpec,
        config: Optional[RunConfig] = None,
        broker_latency: float = 0.002,
        fault_schedule=None,
        autoscaler=None,
        initially_down: tuple = (),
    ):
        """``autoscaler`` is an optional controller — a generator function
        taking an :class:`ElasticAPI` — that may start and (gracefully)
        stop per-node worker daemons while the ensemble runs, the dynamic
        resource provisioning the paper sketches in §V.A.3.
        ``initially_down`` lists nodes whose daemon the autoscaler will
        bring up later (they are provisioned but not leased at t=0)."""
        super().__init__(spec, config)
        self.broker_latency = broker_latency
        self.fault_schedule = fault_schedule
        self.autoscaler = autoscaler
        self.initially_down = tuple(initially_down)

    def run(self, ensemble: Ensemble) -> EngineResult:
        sim, cluster, thread_logs = self._setup(ensemble)
        cfg = self.config
        broker = SimBroker(sim, latency=self.broker_latency)
        fs = cluster.fs
        states: Dict[str, WorkflowState] = {}
        spans: Dict[str, Tuple[float, float]] = {}
        records: List[JobRecord] = []
        done = sim.event()
        remaining = [len(ensemble)]
        jobs_executed = [0]
        thread_counts = [0] * len(cluster.nodes)
        node_slots: List[List[Process]] = [[] for _ in cluster.nodes]

        def dispatch(state: WorkflowState, job_id: str) -> None:
            broker.publish(_DISPATCH, (state.name, job_id, state.attempt[job_id]))

        # -- master daemon ---------------------------------------------------
        def submitter():
            for submit_time, wf in ensemble:
                if submit_time > sim.now:
                    yield sim.timeout(submit_time - sim.now)
                state = WorkflowState(wf, cfg.default_timeout, validate=False)
                states[wf.name] = state
                spans[wf.name] = (sim.now, float("nan"))
                for job_id in state.initial_ready():
                    dispatch(state, job_id)

        def ack_loop():
            while True:
                kind, name, job_id, attempt = yield broker.consume(_ACK)
                state = states[name]
                if kind == _RUNNING:
                    state.on_running(job_id, attempt, sim.now)
                    continue
                for child_id in state.on_completed(job_id, attempt):
                    dispatch(state, child_id)
                if state.is_complete:
                    spans[name] = (spans[name][0], sim.now)
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        done.succeed()
                        return

        def timeout_loop():
            while not done.triggered:
                yield sim.timeout(cfg.timeout_check_interval)
                for state in states.values():
                    for job_id in state.expired(sim.now):
                        dispatch(state, job_id)

        # -- worker daemons ----------------------------------------------------
        # Rental accounting for elastic provisioning: a node's lease runs
        # from worker start until its last slot exits.
        n_nodes = len(cluster.nodes)
        leases: List[List[List[float]]] = [[] for _ in range(n_nodes)]
        slot_alive = [0] * n_nodes
        draining: set = set()
        idle_waits: List[set] = [set() for _ in range(n_nodes)]

        def _slot_exit(node_index: int) -> None:
            slot_alive[node_index] -= 1
            if slot_alive[node_index] == 0 and leases[node_index]:
                leases[node_index][-1][1] = sim.now

        def worker_slot(node_index: int):
            node = cluster.nodes[node_index]
            log = thread_logs[node_index]
            try:
                while node_index not in draining:
                    pending = broker.consume(_DISPATCH)
                    idle_waits[node_index].add(pending)
                    try:
                        msg = yield pending
                    except Interrupt:
                        broker.cancel(_DISPATCH, pending)
                        return
                    finally:
                        idle_waits[node_index].discard(pending)
                    if msg is None:
                        return  # consume cancelled (graceful scale-in)
                    name, job_id, attempt = msg
                    job = states[name].workflow.job(job_id)
                    broker.publish(_ACK, (_RUNNING, name, job_id, attempt))
                    start = sim.now
                    thread_counts[node_index] += 1
                    log.record(sim.now, thread_counts[node_index])
                    try:
                        phases = yield from execute_job(
                            sim, node, fs, job, speed=node.itype.cpu_speed, owner=name
                        )
                    except Interrupt:
                        # Worker daemon killed mid-job: no completion ack;
                        # the master's timeout will resubmit (paper §V.A.3).
                        thread_counts[node_index] -= 1
                        log.record(sim.now, thread_counts[node_index])
                        return
                    thread_counts[node_index] -= 1
                    log.record(sim.now, thread_counts[node_index])
                    jobs_executed[0] += 1
                    if cfg.record_jobs:
                        read_t, compute_t, write_t = phases
                        records.append(
                            JobRecord(
                                workflow=name,
                                job_id=job_id,
                                task_type=job.task_type,
                                node=node_index,
                                start=start,
                                end=sim.now,
                                read_time=read_t,
                                compute_time=compute_t,
                                write_time=write_t,
                                attempt=attempt,
                            )
                        )
                    broker.publish(_ACK, (_COMPLETED, name, job_id, attempt))
            finally:
                _slot_exit(node_index)

        def start_worker(node_index: int) -> None:
            if slot_alive[node_index] > 0:
                return  # daemon already running on this node
            draining.discard(node_index)
            leases[node_index].append([sim.now, None])
            slots = node_slots[node_index]
            slots.clear()
            capacity = cluster.nodes[node_index].cores.capacity
            slot_alive[node_index] = capacity
            for _ in range(capacity):
                slots.append(sim.process(worker_slot(node_index)))

        def kill_worker(node_index: int) -> None:
            """Abrupt death: in-flight jobs are lost (fault injection)."""
            for proc in node_slots[node_index]:
                proc.interrupt("worker daemon killed")
            node_slots[node_index].clear()

        def stop_worker(node_index: int) -> None:
            """Graceful scale-in: idle slots leave now, busy slots finish
            their current job first — nothing is lost, no timeout needed."""
            draining.add(node_index)
            for pending in list(idle_waits[node_index]):
                broker.cancel(_DISPATCH, pending)
            node_slots[node_index].clear()

        sim.process(submitter())
        sim.process(ack_loop())
        sim.process(timeout_loop())
        initially_down = set(self.initially_down)
        if self.fault_schedule is not None:
            initially_down |= set(self.fault_schedule.initially_down)
            self.fault_schedule.install(sim, start_worker, kill_worker)
        for i in range(n_nodes):
            if i not in initially_down:
                start_worker(i)
        if self.autoscaler is not None:
            api = ElasticAPI(
                sim=sim,
                n_nodes=n_nodes,
                _queue_depth=lambda: broker.depth(_DISPATCH),
                _active=lambda: [i for i in range(n_nodes) if slot_alive[i] > 0],
                _start=start_worker,
                _stop=stop_worker,
                _done=done,
            )
            sim.process(self.autoscaler(api))

        sim.run_until(done)
        if cfg.drain_caches:
            sim.run_until(fs.drained())

        makespan = max(end for _start, end in spans.values())
        rental_spans = {
            i: [(s, e if e is not None else makespan) for s, e in leases[i]]
            for i in range(n_nodes)
            if leases[i]
        }
        return EngineResult(
            engine=self.name,
            spec=self.spec,
            n_workflows=len(ensemble),
            makespan=makespan,
            workflow_spans=dict(spans),
            records=records,
            cluster=cluster,
            resubmissions=sum(s.resubmissions for s in states.values()),
            jobs_executed=jobs_executed[0],
            thread_logs=thread_logs,
            rental_spans=rental_spans,
        )
