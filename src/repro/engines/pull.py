"""The pulling execution engine — DEWE v2's coordination model in the DES.

Faithful to paper §III: the master daemon knows nothing about workers; it
publishes eligible jobs to the job-dispatching topic and reacts to acks.
Each node runs one worker-slot process per vCPU (the worker daemon stops
pulling at the concurrency cap, so vCPU slot processes are equivalent to
its pull loop + bounded thread pool).  Slots across all nodes wait on the
same topic, so jobs go to whichever slot asked first — first come, first
served, with zero scheduling decisions.

Fault injection (paper §V.A.3 and the chaos engine beyond it):

* a :class:`~repro.faults.injection.FaultSchedule` scripts worker-daemon
  kills and restarts; killed slots acknowledge nothing, so interrupted
  jobs are recovered by the master's timeout resubmission;
* seeded stochastic models from :mod:`repro.faults.models` drive spot
  terminations (with drain-on-notice), transient/poison job failures and
  degraded straggler nodes through a :class:`~repro.faults.models.ChaosAPI`;
* a :class:`~repro.mq.chaosbroker.MessageChaos` band makes the broker
  drop, duplicate or delay messages;
* a :class:`~repro.faults.retry.RetryPolicy` governs recovery: backoff
  before re-dispatch, attempt budgets, and dead-lettering of poison jobs
  so the rest of the ensemble still settles.

Every injected fault is recorded on a
:class:`~repro.faults.models.FaultTrace` and exported with the result,
so a seeded run's fault history is byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import repro.analysis.sanitizer as _sanitizer
from repro.cloud.cluster import ClusterSpec
from repro.dewe.state import JobStatus, WorkflowState
from repro.engines.base import EngineBase, EngineResult, JobRecord, RunConfig, execute_job
from repro.faults.models import ChaosAPI, FaultTrace, TransientFaultModel
from repro.faults.retry import DeadLetterEntry, RetryPolicy
from repro.liveness import (
    AdmissionControl,
    LeaseConfig,
    LeaseTable,
    MasterFailoverModel,
    ServiceAdmissionPolicy,
    new_liveness_stats,
)
from repro.mq.chaosbroker import ChaosSimBroker, MessageChaos
from repro.mq.priority import RepriorityPolicy, base_band, rank_for_sla
from repro.mq.simbroker import SimBroker
from repro.recovery.journal import Journal, MasterCrash
from repro.sim import AnyOf, Interrupt, Process
from repro.storage.integrity import FileIntegrity
from repro.workflow.ensemble import Ensemble

__all__ = ["PullEngine"]

_DISPATCH = "job-dispatching"
_ACK = "job-acknowledgment"
_HEARTBEAT = "worker-heartbeat"
_RUNNING = 0
_COMPLETED = 1
_FAILED = 2
_CORRUPT = 3    # worker found the job's input files corrupt/missing


@dataclass
class ElasticAPI:
    """What an autoscaler controller can see and do during a run.

    The controller is a generator process: it yields DES events (usually
    ``api.sim.timeout(check_interval)``) and reacts to queue state —
    exactly the information a real controller could read off the broker's
    management interface.
    """

    sim: "object"
    n_nodes: int
    _queue_depth: "object"
    _active: "object"
    _start: "object"
    _stop: "object"
    _done: "object"

    def queue_depth(self) -> int:
        """Jobs waiting in the dispatching topic right now."""
        return self._queue_depth()

    def active_nodes(self) -> list:
        """Node indices with a live worker daemon."""
        return self._active()

    def start_worker(self, node_index: int) -> None:
        self._start(node_index)

    def stop_worker(self, node_index: int) -> None:
        """Graceful scale-in: the node finishes in-flight jobs, then leaves."""
        self._stop(node_index)

    @property
    def finished(self) -> bool:
        return self._done.triggered


class PullEngine(EngineBase):
    """DEWE v2 over the cluster simulator."""

    name = "dewe-v2"

    def __init__(
        self,
        spec: ClusterSpec,
        config: Optional[RunConfig] = None,
        broker_latency: float = 0.002,
        fault_schedule=None,
        autoscaler=None,
        initially_down: tuple = (),
        retry: Optional[RetryPolicy] = None,
        transient: Optional[TransientFaultModel] = None,
        chaos_models: Sequence = (),
        message_chaos: Optional[MessageChaos] = None,
        fault_trace: Optional[FaultTrace] = None,
        journal: Optional[Journal] = None,
        integrity_models: Sequence = (),
        liveness: Optional[LeaseConfig] = None,
        admission: Optional[AdmissionControl] = None,
        failover: Optional[MasterFailoverModel] = None,
        service: Optional[ServiceAdmissionPolicy] = None,
        repriority: Optional[RepriorityPolicy] = None,
    ):
        """``autoscaler`` is an optional controller — a generator function
        taking an :class:`ElasticAPI` — that may start and (gracefully)
        stop per-node worker daemons while the ensemble runs, the dynamic
        resource provisioning the paper sketches in §V.A.3.
        ``initially_down`` lists nodes whose daemon the autoscaler will
        bring up later (they are provisioned but not leased at t=0).

        Chaos knobs: ``retry`` is the re-dispatch policy (default:
        unlimited immediate retries, the paper's behaviour);
        ``transient`` injects per-attempt job failures; ``chaos_models``
        are installable models (spot terminations, stragglers) driven
        through a :class:`~repro.faults.models.ChaosAPI`;
        ``message_chaos`` wraps the broker in a drop/duplicate/delay
        band; ``fault_trace`` collects every injected fault (a fresh
        trace is created when any chaos is configured and none given).

        Recovery knobs: ``journal`` is a write-ahead
        :class:`~repro.recovery.journal.Journal` recording every master
        state transition (and, with ``crash_after`` set, injecting a
        master crash); ``integrity_models`` are data-plane fault
        injectors (:class:`~repro.faults.models.FileCorruptionModel`,
        :class:`~repro.faults.models.FileLossModel`) — when present,
        workers checksum their inputs before running a job and the
        master regenerates damaged files by re-executing the minimal
        ancestor set (data-aware recovery).

        Liveness knobs (docs/FAULTS.md): ``liveness`` is a
        :class:`~repro.liveness.LeaseConfig` enabling the heartbeat/lease
        protocol — workers renew time-bounded leases and the master
        fences a silent worker's lease epoch, requeueing its in-flight
        jobs through the retry policy while stale-epoch acks are
        rejected for exactly-once settlement.  ``admission`` is an
        :class:`~repro.liveness.AdmissionControl` gating new workflow
        submissions on the dispatch backlog (reject-new before
        degrade-running).  ``failover`` is a
        :class:`~repro.liveness.MasterFailoverModel`: the primary master
        dies mid-run and a warm standby — tailing the write-ahead
        journal — takes over under a fresh fencing epoch (requires
        ``journal``).

        Service knob: ``service`` is a
        :class:`~repro.liveness.ServiceAdmissionPolicy` turning the
        submitter into the *open-loop* multi-tenant front door: instead
        of blocking at the admission gate, each arriving submission runs
        the quota -> fair-share -> brownout -> backlog ladder and is
        either admitted (with its SLA class's deadline slack) or shed
        with a deterministic retry-after hint.  Mutually exclusive with
        ``admission`` (the policy embeds its own gate).  The policy
        object outlives master incarnations, so quota and fair-share
        state survive a failover.

        Priority knob: ``repriority`` is a
        :class:`~repro.mq.priority.RepriorityPolicy` turning the
        dispatching topic into a live priority queue.  Each dispatch is
        published at its SLA band (gold structurally above best-effort,
        :func:`~repro.mq.priority.base_band`) plus a bounded heuristic
        score from critical-path remaining, deadline slack and queue
        age; every completion re-scores the member's still-queued jobs
        broker-side (the OSPREY ``asynch_repriority`` pattern), and
        ``interval > 0`` adds a periodic master sweep so aging can lift
        starving work.  Without this knob all publishes stay at
        priority 0.0, which is byte-identical to FIFO order.
        """
        super().__init__(spec, config)
        if failover is not None and journal is None:
            raise ValueError("master failover requires a write-ahead journal")
        if service is not None and admission is not None:
            raise ValueError(
                "pass either admission= (closed-loop gate) or service= "
                "(open-loop policy, embeds its own gate), not both"
            )
        self.broker_latency = broker_latency
        self.fault_schedule = fault_schedule
        self.autoscaler = autoscaler
        self.initially_down = tuple(initially_down)
        self.retry = retry or RetryPolicy()
        self.transient = transient
        self.chaos_models = tuple(chaos_models)
        self.message_chaos = message_chaos
        self.fault_trace = fault_trace
        self.journal = journal
        self.integrity_models = tuple(integrity_models)
        self.liveness = liveness
        self.admission = admission
        self.failover = failover
        self.service = service
        self.repriority = repriority

    def run(self, ensemble: Ensemble) -> EngineResult:
        sim, cluster, thread_logs = self._setup(ensemble)
        cfg = self.config
        retry_policy = self.retry
        transient = self.transient
        trace = self.fault_trace
        if trace is None:
            trace = FaultTrace()
        if self.message_chaos is not None:
            broker = ChaosSimBroker(
                sim, self.message_chaos, latency=self.broker_latency, trace=trace
            )
        else:
            broker = SimBroker(sim, self.broker_latency)
        fs = cluster.fs
        states: Dict[str, WorkflowState] = {}
        spans: Dict[str, Tuple[float, float]] = {}
        records: List[JobRecord] = []
        done = sim.event()
        members = list(ensemble)
        remaining = [len(members)]
        jobs_executed = [0]
        finished: set = set()
        dead_letters: List[DeadLetterEntry] = []
        dead_cursor: Dict[str, int] = {}
        thread_counts = [0] * len(cluster.nodes)
        node_slots: List[List[Process]] = [[] for _ in cluster.nodes]

        # -- liveness / partition / backpressure plane -------------------------
        n_nodes = len(cluster.nodes)
        liveness_cfg = self.liveness
        admission = self.admission
        failover = self.failover
        service = self.service
        repriority = self.repriority
        live_stats = new_liveness_stats()
        if service is not None:
            # The policy accumulates its counters straight into the
            # run-level stats dict (stable new_liveness_stats schema);
            # effective per-workflow timeouts are remembered so a
            # standby can rebuild states with their admitted deadline
            # slack intact.
            service.stats = live_stats
        wf_timeouts: Dict[str, float] = {}
        lease: Optional[LeaseTable] = (
            LeaseTable(liveness_cfg, stats=live_stats)
            if liveness_cfg is not None
            else None
        )
        #: Worker-side view of the node's current lease epoch; stamped on
        #: every outgoing ack so the master can reject stale deliveries.
        worker_epoch = [0] * n_nodes
        #: (workflow, job_id) -> (node, attempt) for in-flight deliveries
        #: the master accepted as RUNNING; drained when a lease is fenced.
        assignments: Dict[Tuple[str, str], Tuple[int, int]] = {}
        #: Per-node partition state: ``None`` (connected) or the active
        #: :data:`~repro.faults.models.PARTITION_MODES` entry.
        partition_mode: List[Optional[str]] = [None] * n_nodes
        #: Worker->master messages held in flight by an uplink partition,
        #: republished in order when it heals (heartbeats are dropped
        #: instead — a stale beat carries no information).
        pending_up: List[List[Tuple[str, tuple]]] = [[] for _ in range(n_nodes)]
        #: Master->worker control callbacks deferred by a downlink partition.
        pending_down: List[list] = [[] for _ in range(n_nodes)]
        heal_events: List = [sim.event() for _ in range(n_nodes)]
        hb_procs: List[Optional[Process]] = [None] * n_nodes
        master_procs: List[Process] = []

        def _up_blocked(node_index: int) -> bool:
            return partition_mode[node_index] in ("full", "to-master")

        def _pull_blocked(node_index: int) -> bool:
            return partition_mode[node_index] in ("full", "from-master")

        def send_up(
            node_index: int, topic: str, payload: tuple, drop: bool = False
        ) -> None:
            """Worker->master publish, honouring an uplink partition."""
            if _up_blocked(node_index):
                if not drop:
                    pending_up[node_index].append((topic, payload))
                return
            broker.publish(topic, payload)

        def send_ack(node_index: int, payload: tuple) -> None:
            if lease is not None:
                payload = payload + (node_index, worker_epoch[node_index])
            send_up(node_index, _ACK, payload)

        def _set_epoch(node_index: int, epoch: int) -> None:
            worker_epoch[node_index] = epoch

        def route_down(node_index: int, fn, *fn_args) -> None:
            """Master->worker control delivery, honouring a downlink
            partition (deferred callbacks fire in order at heal)."""
            if _pull_blocked(node_index):
                pending_down[node_index].append((fn, fn_args))
            else:
                sim.schedule_call(self.broker_latency, lambda: fn(*fn_args))

        # -- data-integrity plane ---------------------------------------------
        integrity: Optional[FileIntegrity] = None
        if self.integrity_models:
            integrity = FileIntegrity(trace=trace, models=self.integrity_models)
            for wf in ensemble.workflows:
                for f in wf.files().values():
                    if f.kind == "input":
                        integrity.record_stage(wf.name, f)
        def producer_index(state: WorkflowState) -> Dict[str, str]:
            # file name -> producer job id; interned on the skeleton,
            # shared by all relabelled ensemble members.
            return state.workflow.skeleton().producer_of

        # -- write-ahead journal ----------------------------------------------
        journal = self.journal
        crash_event = sim.event()
        if journal is None:
            def jlog(kind: str, workflow: str = "", job_id: str = "",
                     attempt: int = 0, detail: str = "") -> None:
                return
        else:
            run_token = object()
            journal.owner = run_token

            def make_jlog():
                # Each master incarnation logs under the journal epoch it
                # was born with; after a failover fences the journal, a
                # revived primary's stragglers append nothing (the stale
                # epoch is silently refused — no split-brain records).
                my_epoch = journal.epoch

                def jlog(kind: str, workflow: str = "", job_id: str = "",
                         attempt: int = 0, detail: str = "") -> None:
                    # Stale writers (a crashed run's generators, finalized
                    # by GC after the resume took over) must not touch the
                    # log.
                    if journal.owner is not run_token:
                        return
                    journal.append(
                        sim.now, kind, workflow, job_id, attempt, detail,
                        epoch=my_epoch,
                    )

                return jlog

            jlog = make_jlog()

            def _snapshots() -> Dict[str, Dict]:
                return {name: states[name].snapshot() for name in sorted(states)}

            def _on_crash() -> None:
                if not crash_event.triggered:
                    crash_event.succeed()

            journal.snapshot_provider = _snapshots
            journal.on_crash = _on_crash

        def dispatch(state: WorkflowState, job_id: str) -> None:
            san = _sanitizer._ACTIVE
            if san is not None:
                san.check_dispatch(
                    state.name, job_id, state.status[job_id].value, time=sim.now
                )
            jlog("dispatch", state.name, job_id, state.attempt.get(job_id, 0))
            state.mark_dispatched(
                job_id, sim.now, force=liveness_cfg is not None
            )
            message = (state.name, job_id, state.attempt[job_id])
            priority = (
                state.job_priority(job_id, sim.now, repriority, wf_base(state))
                if repriority is not None else 0.0
            )
            if service is not None:
                # Class-aware backstop: a bounded dispatch topic at
                # capacity evicts the most sheddable queued job in favor
                # of a less sheddable one (gold displaces best-effort).
                broker.publish(
                    _DISPATCH, message,
                    klass=service.rank_of(state.name),
                    tag=(state.tenant, state.sla),
                    priority=priority,
                )
            else:
                broker.publish(_DISPATCH, message, priority=priority)

        def wf_base(state: WorkflowState) -> float:
            """The member's SLA priority band (0.0 for untagged work)."""
            if service is not None:
                return base_band(service.rank_of(state.name))
            return base_band(rank_for_sla(state.sla))

        def rerank(state: WorkflowState) -> None:
            """Re-score the member's still-queued dispatches broker-side.

            Called as completions land (and from the aging sweep): each
            queued job's critical-path/slack/age score is recomputed at
            the current simulated time and pushed into the priority
            topic as a retag — consumed-but-unsettled deliveries are
            naturally untouched (they are no longer in the topic)."""
            now = sim.now
            base = wf_base(state)
            for job_id in state.queued_jobs():
                prio = state.job_priority(job_id, now, repriority, base)
                broker.reprioritize(
                    _DISPATCH,
                    lambda m, n=state.name, j=job_id: m[0] == n and m[1] == j,
                    prio,
                )

        def redispatch(state: WorkflowState, job_id: str) -> None:
            """Re-dispatch after the retry policy's backoff."""
            delay = retry_policy.backoff(
                state.attempt[job_id] - 1, key=f"{state.name}/{job_id}"
            )
            if delay <= 0:
                dispatch(state, job_id)
                return
            expected = state.attempt[job_id]

            def fire() -> None:
                # Only if this delivery is still the current one — a
                # completion or a newer resubmission supersedes it.
                if (
                    state.status[job_id] is JobStatus.QUEUED
                    and state.attempt[job_id] == expected
                ):
                    dispatch(state, job_id)

            sim.schedule_call(delay, fire)

        def collect_dead(state: WorkflowState) -> None:
            seen = dead_cursor.get(state.name, 0)
            if len(state.dead_letters) > seen:
                dead_cursor[state.name] = len(state.dead_letters)
                for entry in state.dead_letters[seen:]:
                    dead_letters.append(entry)
                    jlog(
                        "dead-letter", entry.workflow, entry.job_id,
                        entry.attempts, entry.reason,
                    )
                    trace.record(
                        sim.now,
                        "dead-letter",
                        detail=f"{entry.workflow}/{entry.job_id} "
                        f"({entry.reason}, {entry.attempts} attempts)",
                    )

        def maybe_finish(state: WorkflowState) -> None:
            if state.name in finished or not state.is_settled:
                return
            finished.add(state.name)
            spans[state.name] = (spans[state.name][0], sim.now)
            if service is not None:
                service.settle(state.name)  # release the fair-share charge
            remaining[0] -= 1
            if remaining[0] == 0 and not done.triggered:
                done.succeed()

        # -- master daemon ---------------------------------------------------
        def admit(wf, timeout_factor: float = 1.0,
                  tenant: str = "", sla: str = "") -> None:
            """Create and launch one admitted workflow's state machine."""
            timeout = cfg.default_timeout * timeout_factor
            wf_timeouts[wf.name] = timeout
            state = WorkflowState(
                wf, timeout, validate=False, retry=retry_policy,
                tenant=tenant, sla=sla,
            )
            state.arrival = sim.now
            state.deadline_factor = timeout_factor
            # Only the repriority aging term reads queue ages; skip the
            # per-dispatch bookkeeping on plain runs.
            state.track_queue_age = repriority is not None
            states[wf.name] = state
            spans.setdefault(wf.name, (sim.now, float("nan")))
            for job_id in state.initial_ready():
                dispatch(state, job_id)
            maybe_finish(state)  # degenerate empty-DAG guard

        def service_shed(name: str) -> None:
            """Account one open-loop shed: the workflow will never run,
            so it leaves the remaining count (else ``done`` never
            fires) — its retry is the *client's* problem, signalled by
            the deterministic retry-after hint in the shed record."""
            record = service.sheds[-1]
            trace.record(
                sim.now,
                "service-shed",
                detail=f"{name} tenant={record.tenant} sla={record.sla} "
                f"reason={record.reason} retry_after={record.retry_after:g}",
            )
            jlog(
                "service-shed", name,
                detail=f"tenant={record.tenant} sla={record.sla} "
                f"reason={record.reason} retry_after={record.retry_after:g}",
            )
            remaining[0] -= 1
            if remaining[0] == 0 and not done.triggered:
                done.succeed()

        def submitter(skip_admitted: bool = False):
            try:
                for submit_time, wf in members:
                    if skip_admitted and (
                        wf.name in states
                        or (service is not None and wf.name in service.shed_names)
                    ):
                        continue  # the failed-over primary decided it
                    if submit_time > sim.now:
                        yield sim.timeout(submit_time - sim.now)
                    if service is not None:
                        # Open-loop front door: each arrival runs the
                        # quota -> fair-share -> brownout -> backlog
                        # ladder exactly once — admitted or shed, never
                        # blocked (offered load is not ours to pause).
                        decision = service.decide(
                            wf.name, len(wf.jobs),
                            broker.depth(_DISPATCH), sim.now,
                        )
                        if not decision.admit:
                            service_shed(wf.name)
                            continue
                        tenant, sla = service.tag_of(wf.name)
                        jlog(
                            "submit", wf.name,
                            detail=f"jobs={len(wf.jobs)} tenant={tenant} "
                            f"sla={sla} factor={decision.timeout_factor:g}",
                        )
                        admit(
                            wf, decision.timeout_factor,
                            tenant=tenant, sla=sla,
                        )
                        continue
                    # Admission control: reject-new before degrade-running
                    # — a submission arriving while the dispatch backlog
                    # is saturated is shed with a retry-after hint, never
                    # queued on top of the running work.
                    while admission is not None and not admission.admits(
                        broker.depth(_DISPATCH)
                    ):
                        hint = admission.retry_hint(broker.depth(_DISPATCH))
                        live_stats["shed_submissions"] += 1
                        trace.record(
                            sim.now,
                            "admission-shed",
                            detail=f"{wf.name} retry_after={hint:g}",
                        )
                        jlog(
                            "admission-shed", wf.name,
                            detail=f"retry_after={hint:g}",
                        )
                        yield sim.timeout(hint)
                    jlog("submit", wf.name, detail=f"jobs={len(wf.jobs)}")
                    admit(wf)
            except Interrupt:
                return  # primary master failed mid-submission

        def on_corrupt_ack(
            state: WorkflowState, job_id: str, attempt: int, bad_names
        ) -> None:
            """Data-aware recovery: map damaged files to their producer
            jobs and re-execute the minimal ancestor set; producerless
            raw inputs are re-staged from the submit host."""
            index = producer_index(state)
            producers: List[str] = []
            raw: List[str] = []
            seen: set = set()
            for file_name in bad_names:
                producer_id = index.get(file_name)
                if producer_id is None:
                    raw.append(file_name)
                elif producer_id not in seen:
                    seen.add(producer_id)
                    producers.append(producer_id)
            to_dispatch = state.on_corrupt(job_id, attempt, producers, sim.now)
            if to_dispatch is None:
                return  # stale/duplicate detection report
            if raw and integrity is not None:
                by_name = {f.name: f for f in state.workflow.job(job_id).inputs}
                for file_name in raw:
                    integrity.restage(state.name, by_name[file_name], sim.now)
            collect_dead(state)
            for regen_id in to_dispatch:
                dispatch(state, regen_id)
            maybe_finish(state)

        def handle_ack(msg) -> None:
            kind, name, job_id, attempt = msg[:4]
            if lease is not None:
                # With the liveness protocol on, every ack carries the
                # sender's (node, lease epoch); acks from a fenced or
                # superseded lease are rejected before they can settle a
                # delivery the master already redispatched.
                ack_node, ack_epoch = msg[-2], msg[-1]
                if not lease.valid(ack_node, ack_epoch):
                    live_stats["stale_epoch_acks"] += 1
                    trace.record(
                        sim.now,
                        "stale-epoch-ack",
                        ack_node,
                        f"{name}/{job_id}#{attempt} epoch={ack_epoch}",
                    )
                    return
            state = states[name]
            if kind == _RUNNING:
                jlog("ack-running", name, job_id, attempt)
                accepted = state.on_running(job_id, attempt, sim.now)
                if lease is not None and accepted:
                    assignments[(name, job_id)] = (msg[-2], attempt)
                return
            if lease is not None:
                assignments.pop((name, job_id), None)
            if kind == _FAILED:
                jlog("ack-failed", name, job_id, attempt)
                republish = state.on_failed(job_id, attempt, sim.now)
                collect_dead(state)
                if republish is not None:
                    redispatch(state, republish)
                else:
                    maybe_finish(state)
            elif kind == _CORRUPT:
                jlog(
                    "ack-corrupt", name, job_id, attempt,
                    ",".join(msg[4]),
                )
                on_corrupt_ack(state, job_id, attempt, msg[4])
            else:
                if lease is not None:
                    san = _sanitizer._ACTIVE
                    if san is not None:
                        # Structural tripwire: the epoch check above must
                        # have rejected any settlement from a fenced lease.
                        san.check_lease_fencing(
                            name, job_id,
                            cluster.nodes[msg[-2]].name,
                            stale=not lease.valid(msg[-2], msg[-1]),
                            time=sim.now,
                        )
                jlog("ack-complete", name, job_id, attempt)
                for child_id in state.on_completed(job_id, attempt):
                    dispatch(state, child_id)
                if repriority is not None and name not in finished:
                    rerank(state)
                maybe_finish(state)

        def ack_loop():
            while True:
                pending = broker.consume(_ACK)
                try:
                    msg = yield pending
                except Interrupt:
                    # Primary master failed: release the pending consume
                    # so the standby's ack loop sees every message.
                    broker.cancel(_ACK, pending)
                    return
                if msg is None:
                    return  # consume cancelled
                # Drain the whole burst before suspending: same-instant
                # acks (batched broker deliveries) cost one resume total
                # instead of one suspend/resume round-trip per message.
                while True:
                    handle_ack(msg)
                    if done.triggered:
                        return
                    msg = broker.consume_nowait(_ACK)
                    if msg is None:
                        break

        def timeout_loop():
            while not done.triggered:
                try:
                    yield sim.timeout(cfg.timeout_check_interval)
                except Interrupt:
                    return  # primary master failed
                for state in states.values():
                    if state.name in finished:
                        continue
                    for job_id in state.expired(sim.now):
                        jlog(
                            "timeout-requeue", state.name, job_id,
                            state.attempt[job_id],
                        )
                        redispatch(state, job_id)
                    collect_dead(state)
                    maybe_finish(state)

        def repriority_sweep_loop():
            """Periodic re-score of every queued job (starvation
            avoidance): this is where the aging term takes effect — a
            job that keeps losing ties accrues age until it outranks
            fresher work of its band."""
            interval = repriority.interval
            while not done.triggered:
                try:
                    yield sim.timeout(interval)
                except Interrupt:
                    return  # primary master failed
                for name in sorted(states):
                    if name not in finished:
                        rerank(states[name])

        # -- liveness protocol (master side) -----------------------------------
        def on_beat(msg) -> None:
            """Apply one heartbeat: renew the lease, or re-grant it when
            the beat is stale (fenced worker back from a partition, or a
            standby master that inherited no lease state)."""
            node_index, epoch = msg
            now = sim.now
            if lease.beat(node_index, epoch, now):
                return
            if slot_alive[node_index] <= 0:
                return  # a drained/dead node's parting beat
            new_epoch = lease.grant(node_index, now)
            trace.record(
                sim.now, "lease-epoch", node_index, f"epoch={new_epoch}"
            )
            jlog("lease-epoch", detail=f"node={node_index} epoch={new_epoch}")
            route_down(node_index, _set_epoch, node_index, new_epoch)

        def heartbeat_loop():
            while True:
                pending = broker.consume(_HEARTBEAT)
                try:
                    msg = yield pending
                except Interrupt:
                    broker.cancel(_HEARTBEAT, pending)
                    return
                if msg is None:
                    return
                while msg is not None:
                    on_beat(msg)
                    if done.triggered:
                        return
                    msg = broker.consume_nowait(_HEARTBEAT)

        def lease_sweep_loop():
            interval = liveness_cfg.heartbeat_interval
            while not done.triggered:
                try:
                    yield sim.timeout(interval)
                except Interrupt:
                    return  # primary master failed
                for node_index in lease.expire(sim.now):
                    fence_node(node_index)

        def fence_node(node_index: int) -> None:
            """Declare a worker dead: fence its lease epoch and requeue
            its in-flight deliveries through the retry policy.  Any late
            ack from the fenced lease is now stale (exactly-once
            settlement is carried by the epoch + attempt checks)."""
            fenced = lease.fence(node_index, sim.now)
            trace.record(
                sim.now,
                "lease-fence",
                node_index,
                f"epoch={fenced} after "
                f"{liveness_cfg.miss_threshold} missed beats",
            )
            jlog("lease-fence", detail=f"node={node_index} epoch={fenced}")
            held = sorted(
                key for key, value in assignments.items()
                if value[0] == node_index
            )
            for key in held:
                wf_name, job_id = key
                _node, attempt = assignments.pop(key)
                state = states[wf_name]
                republish = state.on_lease_expired(job_id, attempt, sim.now)
                if republish is not None:
                    jlog(
                        "lease-requeue", wf_name, job_id,
                        state.attempt[job_id],
                    )
                    redispatch(state, republish)
                else:
                    collect_dead(state)
                    maybe_finish(state)

        # -- worker daemons ----------------------------------------------------
        # Rental accounting for elastic provisioning: a node's lease runs
        # from worker start until its last slot exits.
        leases: List[List[List[float]]] = [[] for _ in range(n_nodes)]
        slot_alive = [0] * n_nodes
        draining: set = set()
        idle_waits: List[set] = [set() for _ in range(n_nodes)]
        cpu_factor = [1.0] * n_nodes
        spot_interrupted: Dict[int, List[int]] = {}

        def _slot_exit(node_index: int) -> None:
            slot_alive[node_index] -= 1
            if slot_alive[node_index] == 0 and leases[node_index]:
                leases[node_index][-1][1] = sim.now
                jlog("lease-expiry", detail=f"node={node_index}")

        def worker_slot(node_index: int):
            node = cluster.nodes[node_index]
            log = thread_logs[node_index]
            try:
                while node_index not in draining:
                    if _pull_blocked(node_index):
                        # Partitioned from the master: no pulling until
                        # the partition heals (in-flight jobs continue).
                        try:
                            yield heal_events[node_index]
                        except Interrupt:
                            return
                        continue
                    pending = broker.consume(_DISPATCH)
                    if pending.triggered:
                        # A job was already queued: take it without a
                        # suspend/resume round-trip.  (Queued jobs imply
                        # no other slot is waiting, so no one is bypassed.)
                        msg = pending.value
                    else:
                        idle_waits[node_index].add(pending)
                        try:
                            msg = yield pending
                        except Interrupt:
                            broker.cancel(_DISPATCH, pending)
                            return
                        finally:
                            idle_waits[node_index].discard(pending)
                    if msg is None:
                        if _pull_blocked(node_index):
                            # Partition onset cancelled the idle pull;
                            # loop back into the heal wait.
                            continue
                        return  # consume cancelled (graceful scale-in)
                    name, job_id, attempt = msg
                    job = states[name].workflow.job(job_id)
                    send_ack(node_index, (_RUNNING, name, job_id, attempt))
                    if integrity is not None:
                        bad = integrity.verify(name, job.inputs, sim.now)
                        if bad:
                            # Don't run on damaged data: report the bad
                            # files so the master can regenerate them.
                            send_ack(
                                node_index,
                                (_CORRUPT, name, job_id, attempt, tuple(bad)),
                            )
                            continue
                    start = sim.now
                    thread_counts[node_index] += 1
                    log.record(sim.now, thread_counts[node_index])
                    try:
                        phases = yield from execute_job(
                            sim,
                            node,
                            fs,
                            job,
                            speed=node.itype.cpu_speed * cpu_factor[node_index],
                            owner=name,
                        )
                    except Interrupt:
                        # Worker daemon killed mid-job: no completion ack;
                        # the master's timeout will resubmit (paper §V.A.3).
                        thread_counts[node_index] -= 1
                        log.record(sim.now, thread_counts[node_index])
                        return
                    thread_counts[node_index] -= 1
                    log.record(sim.now, thread_counts[node_index])
                    jobs_executed[0] += 1
                    if integrity is not None:
                        for f in job.outputs:
                            integrity.record_write(name, f, sim.now)
                    if cfg.record_jobs:
                        read_t, compute_t, write_t = phases
                        records.append(
                            JobRecord(
                                workflow=name,
                                job_id=job_id,
                                task_type=job.task_type,
                                node=node_index,
                                start=start,
                                end=sim.now,
                                read_time=read_t,
                                compute_time=compute_t,
                                write_time=write_t,
                                attempt=attempt,
                            )
                        )
                    if transient is not None and transient.should_fail(
                        name, job_id, attempt
                    ):
                        trace.record(
                            sim.now,
                            "transient-failure",
                            node_index,
                            f"{name}/{job_id}#{attempt}",
                        )
                        send_ack(node_index, (_FAILED, name, job_id, attempt))
                    else:
                        send_ack(
                            node_index, (_COMPLETED, name, job_id, attempt)
                        )
            finally:
                _slot_exit(node_index)

        def heartbeat_agent(node_index: int):
            """Worker-side liveness: renew the node's lease every
            heartbeat interval.  Beats are *dropped* (not buffered) by an
            uplink partition — a stale beat carries no information — so
            a partitioned worker looks exactly like a dead one until the
            partition heals."""
            interval = liveness_cfg.heartbeat_interval
            try:
                while slot_alive[node_index] > 0:
                    send_up(
                        node_index,
                        _HEARTBEAT,
                        (node_index, worker_epoch[node_index]),
                        drop=True,
                    )
                    yield sim.timeout(interval)
            except Interrupt:
                return  # worker daemon killed

        def start_worker(node_index: int) -> None:
            if slot_alive[node_index] > 0:
                return  # daemon already running on this node
            draining.discard(node_index)
            jlog("lease-grant", detail=f"node={node_index}")
            leases[node_index].append([sim.now, None])
            slots = node_slots[node_index]
            slots.clear()
            capacity = cluster.nodes[node_index].cores.capacity
            slot_alive[node_index] = capacity
            if lease is not None:
                # Lease grant is part of the provisioning handshake, so
                # the node's very first ack already carries a live epoch.
                epoch = lease.grant(node_index, sim.now)
                worker_epoch[node_index] = epoch
                trace.record(
                    sim.now, "lease-epoch", node_index, f"epoch={epoch}"
                )
                jlog("lease-epoch", detail=f"node={node_index} epoch={epoch}")
                hb_procs[node_index] = sim.process(heartbeat_agent(node_index))
            for _ in range(capacity):
                slots.append(sim.process(worker_slot(node_index)))

        def kill_worker(node_index: int) -> None:
            """Abrupt death: in-flight jobs are lost (fault injection)."""
            for proc in node_slots[node_index]:
                proc.interrupt("worker daemon killed")
            node_slots[node_index].clear()
            hb = hb_procs[node_index]
            if hb is not None:
                hb.interrupt("worker daemon killed")
                hb_procs[node_index] = None
            # A dead process sends nothing: messages it had in flight
            # behind a partition die with it.
            pending_up[node_index].clear()

        def stop_worker(node_index: int) -> None:
            """Graceful scale-in: idle slots leave now, busy slots finish
            their current job first — nothing is lost, no timeout needed.
            Slot processes stay registered so a later kill (spot notice
            followed by the termination) still interrupts stragglers."""
            draining.add(node_index)
            for pending in list(idle_waits[node_index]):
                broker.cancel(_DISPATCH, pending)

        # -- chaos model hooks -------------------------------------------------
        disk_base = [
            (node.disk.read.capacity, node.disk.write.capacity)
            for node in cluster.nodes
        ]

        def set_disk_factor(node_index: int, factor: float) -> None:
            node = cluster.nodes[node_index]
            node.disk.read.set_capacity(disk_base[node_index][0] * factor)
            node.disk.write.set_capacity(disk_base[node_index][1] * factor)

        def set_cpu_factor(node_index: int, factor: float) -> None:
            if factor <= 0:
                raise ValueError(f"cpu factor must be positive, got {factor}")
            cpu_factor[node_index] = factor

        def mark_spot_terminated(node_index: int) -> None:
            # The kill has already closed the node's current lease; flag
            # it for partial-hour-free spot billing.  A later replacement
            # starts a *new* lease, billed normally.
            if leases[node_index]:
                jlog("billing-spot", detail=f"node={node_index}")
                spot_interrupted.setdefault(node_index, []).append(
                    len(leases[node_index]) - 1
                )

        def traced_start(node_index: int) -> None:
            trace.record(sim.now, "restart", node_index)
            start_worker(node_index)

        def traced_kill(node_index: int) -> None:
            trace.record(sim.now, "kill", node_index)
            kill_worker(node_index)

        # -- network partitions ------------------------------------------------
        def begin_partition(node_index: int, mode: str) -> None:
            live_stats["partitions"] += 1
            partition_mode[node_index] = mode
            heal_events[node_index] = sim.event()
            if _pull_blocked(node_index):
                # Idle slots waiting on the dispatch topic can no longer
                # hear the master: cancel their pulls (they park on the
                # heal event; queued jobs go to connected workers).
                for pending in list(idle_waits[node_index]):
                    broker.cancel(_DISPATCH, pending)

        def end_partition(node_index: int) -> None:
            partition_mode[node_index] = None
            # Uplink messages held in flight arrive now, in send order.
            flush = pending_up[node_index]
            pending_up[node_index] = []
            for topic, payload in flush:
                broker.publish(topic, payload)
            deferred = pending_down[node_index]
            pending_down[node_index] = []
            for fn, fn_args in deferred:
                fn(*fn_args)
            ev = heal_events[node_index]
            if not ev.triggered:
                ev.succeed()

        # -- master failover ---------------------------------------------------
        def start_master(takeover: bool = False) -> None:
            master_procs[:] = [
                sim.process(submitter(skip_admitted=takeover)),
                sim.process(ack_loop()),
                sim.process(timeout_loop()),
            ]
            if lease is not None:
                master_procs.append(sim.process(heartbeat_loop()))
                master_procs.append(sim.process(lease_sweep_loop()))
            if repriority is not None and repriority.interval > 0:
                master_procs.append(sim.process(repriority_sweep_loop()))

        def _primary_die() -> None:
            if done.triggered:
                return
            trace.record(sim.now, "master-fail", detail="primary stops")
            # Interrupting a finished process is a no-op, so the whole
            # roster can be torn down blindly.
            for proc in master_procs:
                proc.interrupt("primary master failed")
            master_procs.clear()

        def _standby_takeover() -> None:
            if done.triggered:
                return
            nonlocal jlog, lease
            live_stats["failovers"] += 1
            # Fence the journal first: from here on the standby's epoch
            # is the only one the log accepts, so a revived primary (or
            # its straggling callbacks) cannot split-brain the record.
            new_epoch = journal.fence()
            jlog = make_jlog()
            trace.record(sim.now, "failover", detail=f"epoch={new_epoch}")
            jlog("failover", detail=f"epoch={new_epoch}")
            # The standby tails the journal: its view of the run is the
            # last durable checkpoint.  Restore what it has...
            snaps = (
                journal.checkpoint.snapshots
                if journal.checkpoint is not None
                else {}
            )
            wf_by_name = {wf.name: wf for _t, wf in members}
            states.clear()
            for name in sorted(snaps):
                if name in wf_by_name:
                    restored = WorkflowState.restore(
                        wf_by_name[name], snaps[name],
                        wf_timeouts.get(name, cfg.default_timeout),
                        retry_policy,
                    )
                    restored.track_queue_age = repriority is not None
                    states[name] = restored
            # ...and re-admit workflows submitted after that checkpoint
            # (at-least-once execution; settlement stays exactly-once
            # because the state machine absorbs duplicate acks).  In
            # service mode the primary's *decisions* are authoritative:
            # shed workflows stay shed, admitted ones are re-created
            # with their admitted deadline slack — the policy object
            # survived the failover, so quota and fair-share charges
            # carry over unchanged.
            readmitted: set = set()
            for submit_time, wf in members:
                if submit_time <= sim.now and wf.name not in states:
                    if service is not None and wf.name in service.shed_names:
                        continue
                    tenant, sla = (
                        service.tag_of(wf.name)
                        if service is not None else ("", "")
                    )
                    jlog("submit", wf.name, detail=f"jobs={len(wf.jobs)}")
                    readmit = WorkflowState(
                        wf, wf_timeouts.get(wf.name, cfg.default_timeout),
                        validate=False, retry=retry_policy,
                        tenant=tenant, sla=sla,
                    )
                    readmit.track_queue_age = repriority is not None
                    states[wf.name] = readmit
                    spans.setdefault(wf.name, (sim.now, float("nan")))
                    readmitted.add(wf.name)
            # Rebuild the dead-letter ledger and settlement bookkeeping
            # from the restored states.
            dead_letters[:] = []
            dead_cursor.clear()
            finished.clear()
            for name in sorted(states):
                state = states[name]
                dead_cursor[name] = len(state.dead_letters)
                dead_letters.extend(state.dead_letters)
                if state.is_settled:
                    finished.add(name)
            remaining[0] = len(members) - len(finished)
            if service is not None:
                # Shed workflows already left the remaining count when
                # the primary shed them; they are neither in states nor
                # in finished, so subtract them here too.
                remaining[0] -= len(service.shed_names)
            # In-flight deliveries from the primary era are unaccounted:
            # requeue them (late acks go stale via the attempt number —
            # and, with leases on, via the fresh epoch fence below).
            assignments.clear()
            for name in sorted(states):
                state = states[name]
                if name in readmitted:
                    for job_id in state.initial_ready():
                        dispatch(state, job_id)
                    maybe_finish(state)
                elif not state.is_settled:
                    for job_id in state.requeue_in_flight(sim.now):
                        jlog("requeue", name, job_id, state.attempt[job_id])
                        redispatch(state, job_id)
                    collect_dead(state)
                    maybe_finish(state)
            if lease is not None:
                # The standby inherits no lease state; epochs stay
                # globally monotonic so every primary-era ack is stale.
                # Workers re-register on their next heartbeat.
                lease = LeaseTable(
                    liveness_cfg,
                    epoch_floor=lease.max_epoch,
                    stats=live_stats,
                )
            start_master(takeover=True)
            if remaining[0] == 0 and not done.triggered:
                done.succeed()

        start_master()
        initially_down = set(self.initially_down)
        if self.fault_schedule is not None:
            initially_down |= set(self.fault_schedule.initially_down)
            self.fault_schedule.install(sim, traced_start, traced_kill)
        if self.chaos_models:
            api = ChaosAPI(
                sim=sim,
                n_nodes=n_nodes,
                start_worker=start_worker,
                stop_worker=stop_worker,
                kill_worker=kill_worker,
                set_disk_factor=set_disk_factor,
                set_cpu_factor=set_cpu_factor,
                mark_spot_terminated=mark_spot_terminated,
                trace=trace,
                begin_partition=begin_partition,
                end_partition=end_partition,
            )
            for model in self.chaos_models:
                model.install(api)
        if failover is not None:
            sim.schedule_call(failover.at, _primary_die)
            sim.schedule_call(
                failover.at + failover.detection, _standby_takeover
            )
        for i in range(n_nodes):
            if i not in initially_down:
                start_worker(i)
        if self.autoscaler is not None:
            api = ElasticAPI(
                sim=sim,
                n_nodes=n_nodes,
                _queue_depth=lambda: broker.depth(_DISPATCH),
                _active=lambda: [i for i in range(n_nodes) if slot_alive[i] > 0],
                _start=start_worker,
                _stop=stop_worker,
                _done=done,
            )
            sim.process(self.autoscaler(api))

        until = done if journal is None else AnyOf(sim, [done, crash_event])
        try:
            sim.run_until(until)
        except MasterCrash:
            # Raised out of a scheduled callback (e.g. a backoff
            # redispatch) after the journal's crash budget was hit; the
            # crash_event path below reports it uniformly.
            pass
        finally:
            # The run is over: revoke write access so this run's worker
            # generators — finalized by GC at some arbitrary later point
            # — cannot append trailing records to a journal that a
            # resumed run (or nobody) now owns.
            if journal is not None:
                journal.owner = None
        if journal is not None and journal.crashed:
            raise MasterCrash(
                f"master crashed at t={sim.now:.6f} after {journal.seq} "
                f"journal records; resume via resume_from(journal)"
            )
        if cfg.drain_caches:
            sim.run_until(fs.drained())

        # Under an open-loop service every member may have been shed, in
        # which case nothing ever ran and the makespan is simply "now".
        makespan = max(
            (end for _start, end in spans.values()), default=sim.now
        )
        rental_spans = {
            i: [(s, e if e is not None else makespan) for s, e in leases[i]]
            for i in range(n_nodes)
            if leases[i]
        }
        interrupted_spans = {
            i: [rental_spans[i][k] for k in indices]
            for i, indices in spot_interrupted.items()
            if i in rental_spans
        }
        san = _sanitizer._ACTIVE
        if san is not None:
            for i, node_spans in rental_spans.items():
                san.check_leases(cluster.nodes[i].name, node_spans, makespan)
            if live_stats["failovers"]:
                # A standby takeover must not have re-opened a rental the
                # primary already closed (no double-billed lease interval).
                for i, node_spans in rental_spans.items():
                    san.check_failover_billing(
                        cluster.nodes[i].name, node_spans, makespan
                    )
        liveness_stats: Dict[str, int] = {}
        if (
            liveness_cfg is not None
            or admission is not None
            or service is not None
            or failover is not None
            or repriority is not None
            or live_stats["partitions"]
        ):
            liveness_stats = dict(live_stats)
            liveness_stats["dead_letter_depth"] = len(dead_letters)
            # Shed-record ledger overflow (bounded deque): non-zero means
            # the oldest shed evidence was dropped, not that sheds were.
            liveness_stats["shed_record_drops"] = broker.dropped_records
        return EngineResult(
            engine=self.name,
            spec=self.spec,
            n_workflows=len(ensemble),
            makespan=makespan,
            workflow_spans=dict(spans),
            records=records,
            cluster=cluster,
            resubmissions=sum(s.resubmissions for s in states.values()),
            jobs_executed=jobs_executed[0],
            thread_logs=thread_logs,
            rental_spans=rental_spans,
            interrupted_spans=interrupted_spans,
            fault_events=list(trace),
            dead_letters=dead_letters,
            job_counts={name: state.counts() for name, state in states.items()},
            mq_chaos_stats=(
                broker.stats() if isinstance(broker, ChaosSimBroker) else {}
            ),
            integrity_stats=dict(integrity.stats) if integrity is not None else {},
            data_recoveries=sum(s.data_recoveries for s in states.values()),
            journal=journal,
            liveness_stats=liveness_stats,
        )

    def resume_from(self, journal: Journal, ensemble: Ensemble) -> EngineResult:
        """Resume a crashed run from its write-ahead journal.

        The engine is deterministic, so resume is *validated replay*:
        the journal is re-armed (:meth:`~repro.recovery.journal.Journal.resume`)
        and the ensemble re-runs from t=0 with identical seeds; every
        record appended inside the journaled prefix is validated
        byte-for-byte against the crashed run's records (sanitizer check
        ``journal-replay``), then the journal switches to live appends
        and the run completes.  The caller must pass the same ensemble
        (or an identically seeded rebuild).

        Raises :class:`~repro.recovery.journal.ReplayDivergence` if the
        resumed run diverges from the journaled prefix.
        """
        if journal.crashed:
            journal.resume()
        self.journal = journal
        # Trace and broker chaos state are per-run: a fresh trace is
        # created inside run() when none is pinned on the engine.
        self.fault_trace = None
        return self.run(ensemble)
