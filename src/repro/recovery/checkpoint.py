"""Checkpoint/restore and crash injection for the threaded master.

The DES engines recover by deterministic replay
(:mod:`repro.recovery.journal`); the real threaded
:class:`~repro.dewe.master.MasterDaemon` cannot replay wall-clock time,
so it recovers the way production schedulers do: restore the last
periodic :class:`MasterCheckpoint` and re-dispatch whatever was in
flight, leaning on the at-least-once idempotency of
:class:`~repro.dewe.state.WorkflowState` to absorb acks from pre-crash
workers.  Completed jobs stay completed — a 1.7M-job ensemble resumes
from where it was, not from scratch.

:class:`MasterCrashModel` is the fault injector: it runs a periodic
checkpointer thread against a live master, then kills the master
abruptly (everything since the last checkpoint is lost, exactly like a
process crash) and restarts a replacement from that checkpoint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.concurrency import shims as _shims
from repro.workflow.dag import Workflow

__all__ = ["MasterCheckpoint", "MasterCrashModel"]


@dataclass(frozen=True)
class MasterCheckpoint:
    """One consistent snapshot of a master daemon's scheduler state.

    ``states`` maps workflow name to ``(workflow, snapshot)`` — the DAG
    itself plus the JSON-able :meth:`~repro.dewe.state.WorkflowState.snapshot`;
    ``elapsed`` is each workflow's age (seconds since submission) at the
    checkpoint, so the restored master's makespans stay meaningful.
    """

    states: Dict[str, Tuple[Workflow, Dict[str, Any]]] = field(
        default_factory=dict
    )
    elapsed: Dict[str, float] = field(default_factory=dict)
    makespans: Dict[str, float] = field(default_factory=dict)
    rejected: Dict[str, str] = field(default_factory=dict)

    @property
    def n_workflows(self) -> int:
        return len(self.states)

    def completed_jobs(self) -> Dict[str, List[str]]:
        """Per workflow, the jobs already completed at the checkpoint —
        the work a restart must *not* redo."""
        return {
            name: sorted(
                job_id
                for job_id, status in snapshot["status"].items()
                if status == "completed"
            )
            for name, (_wf, snapshot) in self.states.items()
        }


class MasterCrashModel:
    """Kill-and-restart fault for the threaded master.

    Usage::

        model = MasterCrashModel(checkpoint_interval=0.05)
        master = MasterDaemon(broker).start()
        model.attach(master)          # periodic checkpointer thread
        ...
        checkpoint = model.crash()    # abrupt kill; last checkpoint only
        master = model.restart(broker)  # replacement daemon, started

    The crash is honest: :meth:`crash` does **not** snapshot the dying
    master — everything after the last periodic checkpoint is lost and
    must be recovered by redelivery.
    """

    def __init__(self, checkpoint_interval: float = 0.05):
        if checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        self.checkpoint_interval = checkpoint_interval
        #: Every checkpoint taken, oldest first.
        self.checkpoints: List[MasterCheckpoint] = []
        self.crashes = 0
        self._master = None
        self._ticker: Optional[threading.Thread] = None
        # Traced under REPRO_RACEDETECT: the checkpointer is the reader
        # side of the master's scheduler state, so its accesses need a
        # logical thread id for the happens-before replay.
        self._halt = _shims.make_event("checkpointer.halt")

    def attach(self, master) -> "MasterCrashModel":
        """Start checkpointing ``master`` every ``checkpoint_interval``
        seconds on a background thread."""
        if self._ticker is not None:
            raise RuntimeError("crash model already attached")
        self._master = master
        self._halt.clear()
        self._ticker = _shims.new_thread(self._tick, "master-checkpointer")
        self._ticker.start()
        return self

    def _tick(self) -> None:
        while not self._halt.wait(self.checkpoint_interval):
            master = self._master
            if master is None:
                return
            self.checkpoints.append(master.checkpoint())

    def detach(self) -> None:
        self._halt.set()
        if self._ticker is not None:
            self._ticker.join()
            self._ticker = None

    @property
    def last_checkpoint(self) -> MasterCheckpoint:
        """The latest durable checkpoint (empty if none was taken yet)."""
        return self.checkpoints[-1] if self.checkpoints else MasterCheckpoint()

    def crash(self) -> MasterCheckpoint:
        """Kill the attached master abruptly.

        Returns the last *periodic* checkpoint — the dying master is not
        consulted, so state changed since that checkpoint is genuinely
        lost (and recovered later by redelivery + idempotency).
        """
        if self._master is None:
            raise RuntimeError("no master attached")
        self.detach()
        master, self._master = self._master, None
        master.stop()
        self.crashes += 1
        return self.last_checkpoint

    def restart(
        self,
        broker,
        checkpoint: Optional[MasterCheckpoint] = None,
        config=None,
        retry=None,
    ):
        """Start a replacement master from ``checkpoint`` (default: the
        last one taken), re-attach the checkpointer, and return it."""
        from repro.dewe.master import MasterDaemon

        master = MasterDaemon.from_checkpoint(
            broker,
            checkpoint if checkpoint is not None else self.last_checkpoint,
            config=config,
            retry=retry,
        ).start()
        self.attach(master)
        return master
