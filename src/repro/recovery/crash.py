"""Crash/resume driver for the simulated engines.

Small loop that runs an engine until its journal's injected crash fires,
then resumes with a fresh engine (validated replay, see
:mod:`repro.recovery.journal`) until the ensemble completes.
"""

from __future__ import annotations

from typing import Callable

from repro.recovery.journal import Journal, JournalError, MasterCrash

__all__ = ["resume_until_complete"]


def resume_until_complete(
    make_engine: Callable[[Journal], object],
    make_ensemble: Callable[[], object],
    journal: Journal,
    max_resumes: int = 8,
):
    """Run to completion across injected master crashes.

    ``make_engine(journal)`` must build a *fresh* engine wired to the
    journal (engines accumulate per-run state, so each attempt gets its
    own); ``make_ensemble()`` must rebuild an identical ensemble (the
    determinism contract of validated replay).  Returns the final
    :class:`~repro.engines.base.EngineResult`; the number of crashes
    survived is ``journal.resumes``.
    """
    for _ in range(max_resumes + 1):
        engine = make_engine(journal)
        try:
            return engine.run(make_ensemble())
        except MasterCrash:
            journal.resume()
    raise JournalError(
        f"ensemble did not complete within {max_resumes} resumes"
    )
