"""Crash-consistent master: write-ahead journal, checkpoint/resume.

See :mod:`repro.recovery.journal` for the recovery model and
``docs/FAULTS.md`` ("Master and data-plane recovery") for the prose
version.
"""

from repro.recovery.checkpoint import MasterCheckpoint, MasterCrashModel
from repro.recovery.crash import resume_until_complete
from repro.recovery.journal import (
    Checkpoint,
    Journal,
    JournalError,
    JournalRecord,
    MasterCrash,
    ReplayDivergence,
    state_digest,
)

__all__ = [
    "Checkpoint",
    "Journal",
    "JournalError",
    "JournalRecord",
    "MasterCheckpoint",
    "MasterCrash",
    "MasterCrashModel",
    "ReplayDivergence",
    "resume_until_complete",
    "state_digest",
]
