"""Write-ahead journal for the master's scheduler state.

The paper's fault-tolerance evaluation (§V.A.3) only ever kills *workers*;
the master daemon remains a single point of failure.  This module gives
the master crash consistency the way databases do: every scheduler state
transition — submit, dispatch, ack, retry, dead-letter, lease grant and
expiry, spot-billing marks — is appended to a :class:`Journal` *before*
its side effects are applied, and periodic :class:`Checkpoint` records
compact the log so it never grows with ensemble size.

Recovery model
--------------

The simulation engines are deterministic state machines: given the same
ensemble, cluster and fault seeds, every transition happens at the same
simulated time in the same order.  Resume is therefore *validated
replay*: a crashed run's journal is re-armed with :meth:`Journal.resume`
and the engine re-runs from t=0; every record the resumed run appends
inside the journaled prefix is compared byte-for-byte against the stored
record (and the master-state digest is compared at the checkpoint), so
any divergence — nondeterminism, a corrupted journal, a schema drift —
is caught immediately (sanitizer check ``journal-replay``).  Past the
stored prefix the journal switches to live mode and the run continues to
completion.  The guarantee certified by the chaos harness: a run crashed
at *any* journal offset and resumed produces an
:class:`~repro.engines.base.EngineResult` byte-identical to the
uninterrupted run.

The threaded master (:mod:`repro.dewe.master`) cannot replay wall-clock
time; it uses the snapshot half of this machinery instead
(:mod:`repro.recovery.checkpoint`): restore from the last periodic
checkpoint and re-dispatch in-flight jobs, relying on the at-least-once
idempotency of :class:`~repro.dewe.state.WorkflowState`.

Crash injection
---------------

``Journal(crash_after=N)`` models the master process dying with exactly
``N`` records durably on disk: the append that would write record
``N + 1`` raises :class:`MasterCrash` instead, and every later append
fails too (a dead master writes nothing).  Engines surface the crash by
aborting the run with the same exception; callers resume via
:func:`resume_until_complete` in :mod:`repro.recovery.crash`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import repro.analysis.sanitizer as _sanitizer

__all__ = [
    "JournalRecord",
    "Checkpoint",
    "Journal",
    "JournalError",
    "MasterCrash",
    "ReplayDivergence",
    "state_digest",
]


class JournalError(RuntimeError):
    """Malformed journal operation (append after crash, bad resume...)."""


class MasterCrash(RuntimeError):
    """The (injected) master crash: raised by the append that would have
    exceeded the journal's ``crash_after`` budget, and by every append
    after it — a dead master writes nothing."""


class ReplayDivergence(JournalError):
    """A resumed run appended a record that differs from the journaled
    one at the same offset — the determinism contract is broken."""


@dataclass(frozen=True)
class JournalRecord:
    """One scheduler state transition, appended before it is applied.

    ``kind`` is the transition name (``submit``, ``dispatch``,
    ``ack-running``, ``ack-complete``, ``ack-failed``, ``ack-corrupt``,
    ``timeout-requeue``, ``dead-letter``, ``lease-grant``,
    ``lease-expiry``, ``billing-spot``, and — in multi-tenant service
    runs — ``service-shed``, whose ``workflow`` names the shed
    submission and whose ``detail`` carries its tenant/SLA/reason and
    retry-after hint, so a replayed post-mortem can reconstruct who
    lost what, why, and what backoff the client was told);
    ``time`` is the master's clock (simulated seconds in the DES).
    :meth:`line` is the canonical byte representation used by the
    replay comparison.
    """

    seq: int
    time: float
    kind: str
    workflow: str = ""
    job_id: str = ""
    attempt: int = 0
    detail: str = ""

    def line(self) -> str:
        return (
            f"{self.seq:08d} t={self.time:.9f} {self.kind} "
            f"{self.workflow}/{self.job_id}#{self.attempt} {self.detail}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "workflow": self.workflow,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JournalRecord":
        return cls(**data)


def state_digest(snapshots: Dict[str, Any]) -> str:
    """Stable digest of a master-state snapshot (canonical JSON, sha256)."""
    blob = json.dumps(snapshots, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """A compaction point: the master state at journal offset ``seq``.

    Records with ``seq' <= seq`` are dropped from the journal once the
    checkpoint is durable; resume restores from ``snapshots`` (or, in
    the deterministic replay path, merely *validates* ``digest`` when
    the resumed run reaches the same offset).
    """

    seq: int
    time: float
    digest: str
    snapshots: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "digest": self.digest,
            "snapshots": self.snapshots,
        }


class Journal:
    """Append-only scheduler journal with checkpoint compaction.

    Parameters
    ----------
    checkpoint_every:
        Take a checkpoint (and compact the log) every that many records;
        0 disables checkpointing.  Requires a ``snapshot_provider``.
    crash_after:
        Fault injection: the append that would create record
        ``crash_after + 1`` raises :class:`MasterCrash` instead.
        ``None`` disables crashing.
    """

    def __init__(
        self,
        checkpoint_every: int = 0,
        crash_after: Optional[int] = None,
    ):
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if crash_after is not None and crash_after < 0:
            raise ValueError(f"crash_after must be >= 0, got {crash_after}")
        self.checkpoint_every = checkpoint_every
        self.crash_after = crash_after
        #: Records since the last checkpoint (the durable tail).
        self.records: List[JournalRecord] = []
        #: The latest compaction point, if any.
        self.checkpoint: Optional[Checkpoint] = None
        #: ``(seq, time)`` of every checkpoint ever taken, for exports.
        self.checkpoint_history: List[Tuple[int, float]] = []
        self.seq = 0
        self.crashed = False
        #: How many times this journal has been resumed after a crash.
        self.resumes = 0
        #: Callable returning the master-state snapshot for checkpoints
        #: and replay digest validation; installed by the engine.
        self.snapshot_provider: Optional[Callable[[], Dict[str, Any]]] = None
        #: Called once when the crash budget is hit (before the raise);
        #: engines use it to schedule their own orderly abort.
        self.on_crash: Optional[Callable[[], None]] = None
        #: Token of the run currently writing to this journal.  Engines
        #: set a fresh token per run and check it before appending, so a
        #: crashed run's abandoned coroutines (finalized by GC at an
        #: arbitrary later point) cannot pollute the resumed run's log.
        self.owner: Optional[object] = None
        #: Fencing epoch: the owner-token guard extended across master
        #: *incarnations within one run*.  A standby taking over bumps
        #: the epoch with :meth:`fence`; appends stamped with an older
        #: epoch are silently refused (a fenced primary's writes go
        #: nowhere), counted in ``fenced_appends``.
        self.epoch = 0
        self.fenced_appends = 0
        # -- replay state (armed by resume()) -----------------------------
        self._expected: List[JournalRecord] = []
        self._expected_checkpoint: Optional[Checkpoint] = None
        self._replay_end = 0

    # -- inspection --------------------------------------------------------
    @property
    def replaying(self) -> bool:
        """True while a resumed run is still inside the journaled prefix."""
        return self.seq < self._replay_end

    @property
    def n_records(self) -> int:
        """Records currently held (the tail since the last checkpoint)."""
        return len(self.records)

    def lines(self) -> List[str]:
        return [record.line() for record in self.records]

    def text(self) -> str:
        return "\n".join(self.lines())

    # -- appending ---------------------------------------------------------
    def append(
        self,
        time: float,
        kind: str,
        workflow: str = "",
        job_id: str = "",
        attempt: int = 0,
        detail: str = "",
        epoch: Optional[int] = None,
    ) -> Optional[JournalRecord]:
        """Durably record one transition; write-ahead of its side effects.

        ``epoch`` is the writer's fencing epoch: when given and older
        than the journal's current epoch the append is refused (returns
        ``None``) — this is what prevents a revived old primary from
        split-braining the log after a standby took over.
        """
        if epoch is not None and epoch != self.epoch:
            self.fenced_appends += 1
            return None
        if self.crashed:
            raise MasterCrash(
                f"master is down (crashed after {self.seq} journal records)"
            )
        if (
            self.crash_after is not None
            and self.seq >= self.crash_after
            and not self.replaying
        ):
            self.crashed = True
            if self.on_crash is not None:
                self.on_crash()
            raise MasterCrash(
                f"injected master crash at journal offset {self.seq}"
            )
        self.seq += 1
        record = JournalRecord(
            self.seq, time, kind, workflow, job_id, attempt, detail
        )
        if self.seq <= self._replay_end:
            self._validate_replay(record)
        else:
            self.records.append(record)
            if (
                self.checkpoint_every
                and self.snapshot_provider is not None
                and self.seq % self.checkpoint_every == 0
            ):
                self.take_checkpoint(time)
        return record

    def fence(self) -> int:
        """Advance the fencing epoch (standby takeover).

        Every writer still holding the previous epoch — the possibly
        -only-partitioned old primary — is fenced: its subsequent
        appends are refused.  Returns the new epoch, the takeover's
        monotonic fencing token.
        """
        self.epoch += 1
        return self.epoch

    def take_checkpoint(self, time: float) -> Checkpoint:
        """Snapshot the master state and compact the journal."""
        if self.snapshot_provider is None:
            raise JournalError("cannot checkpoint without a snapshot_provider")
        snapshots = self.snapshot_provider()
        checkpoint = Checkpoint(
            seq=self.seq,
            time=time,
            digest=state_digest(snapshots),
            snapshots=snapshots,
        )
        self.checkpoint = checkpoint
        self.checkpoint_history.append((self.seq, time))
        self.records.clear()
        return checkpoint

    # -- crash / resume ----------------------------------------------------
    def resume(self) -> "Journal":
        """Re-arm a crashed journal for a validated-replay resume.

        The surviving records (checkpoint + tail) become the *expected*
        prefix; the journal resets to empty and the next run's appends
        are validated against the prefix record-by-record, switching to
        live appends once past it.  Returns ``self``.
        """
        if not self.crashed:
            raise JournalError("resume() on a journal that did not crash")
        self._expected = list(self.records)
        self._expected_checkpoint = self.checkpoint
        self._replay_end = self.seq
        self.records = []
        self.checkpoint = None
        self.checkpoint_history = []
        self.seq = 0
        self.crashed = False
        self.crash_after = None
        self.epoch = 0  # a fresh run re-fences from scratch (replay determinism)
        self.resumes += 1
        return self

    def _validate_replay(self, record: JournalRecord) -> None:
        """Compare a replayed record with the journaled one at its offset."""
        checkpoint = self._expected_checkpoint
        if checkpoint is not None and record.seq <= checkpoint.seq:
            # Compacted region: no record survives to compare against.
            self.records.append(record)
            if record.seq == checkpoint.seq:
                self._validate_checkpoint(checkpoint)
            return
        base = checkpoint.seq if checkpoint is not None else 0
        expected = self._expected[record.seq - base - 1]
        if expected.line() != record.line():
            san = _sanitizer._ACTIVE
            if san is not None:
                san.check_replay(record.seq, expected.line(), record.line())
            raise ReplayDivergence(
                f"journal replay diverged at seq {record.seq}: "
                f"expected {expected.line()!r}, got {record.line()!r}"
            )
        self.records.append(record)
        if record.seq == self._replay_end:
            # Prefix fully replayed: restore any live checkpoints taken
            # beyond this point to the normal cadence.
            self._expected = []

    def _validate_checkpoint(self, checkpoint: Checkpoint) -> None:
        """At the compaction offset, the replayed master state must match
        the checkpointed one bit-for-bit (state digest)."""
        if self.snapshot_provider is not None:
            digest = state_digest(self.snapshot_provider())
            if digest != checkpoint.digest:
                san = _sanitizer._ACTIVE
                if san is not None:
                    san.check_replay_digest(
                        checkpoint.seq, checkpoint.digest, digest
                    )
                raise ReplayDivergence(
                    f"checkpoint digest mismatch at seq {checkpoint.seq}: "
                    f"expected {checkpoint.digest}, got {digest}"
                )
        # Emulate the original compaction so the rebuilt journal ends in
        # the same (checkpoint + tail) shape as the uninterrupted one.
        self.checkpoint = checkpoint
        self.checkpoint_history.append((checkpoint.seq, checkpoint.time))
        self.records.clear()

    # -- persistence -------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the surviving journal (checkpoint line first, then the
        tail records) as JSON lines."""
        out = []
        if self.checkpoint is not None:
            out.append(json.dumps({"checkpoint": self.checkpoint.to_dict()}))
        out.extend(json.dumps(r.to_dict()) for r in self.records)
        Path(path).write_text("\n".join(out) + ("\n" if out else ""))

    def __len__(self) -> int:
        return self.seq
