"""Cloud billing models.

The paper's cost analysis is built around EC2's 2015 charge-by-hour model:
"users pay for EC2 instances by the hour, and any partial hour usage will
be charged as a full hour" (§V.B).  That quantisation is why the clusters
are designed to finish the 200-workflow ensemble within 55 minutes, and
why Fig 11c's price-per-workflow falls as the workload grows.  The
charge-by-minute model (Google Compute Engine) that the paper mentions for
dynamic provisioning is included for the ablation study.
"""

from __future__ import annotations

import math
from enum import Enum

import repro.analysis.sanitizer as _sanitizer
from repro.cloud.instances import InstanceType

__all__ = [
    "BillingModel",
    "billed_hours",
    "spot_billed_hours",
    "cluster_cost",
    "price_per_workflow",
]


class BillingModel(Enum):
    """Billing granularity for rented instances."""

    PER_HOUR = "per-hour"      # AWS EC2 (2015): partial hours round up
    PER_MINUTE = "per-minute"  # GCE-style: partial minutes round up
    PER_SECOND = "per-second"  # idealised continuous billing


def billed_hours(seconds: float, model: BillingModel = BillingModel.PER_HOUR) -> float:
    """Billable hours for a rental of ``seconds`` under ``model``."""
    if seconds < 0:
        raise ValueError(f"rental duration must be >= 0, got {seconds}")
    if seconds == 0:
        hours = 0.0
    elif model is BillingModel.PER_HOUR:
        hours = float(math.ceil(seconds / 3600.0))
    elif model is BillingModel.PER_MINUTE:
        hours = math.ceil(seconds / 60.0) / 60.0
    else:
        hours = seconds / 3600.0
    san = _sanitizer._ACTIVE
    if san is not None:
        san.check_billing(model, seconds, hours)
    return hours


def spot_billed_hours(
    seconds: float, model: BillingModel = BillingModel.PER_HOUR
) -> float:
    """Billable hours when the *provider* reclaims the instance mid-lease.

    EC2's 2015 spot rule is the mirror image of :func:`billed_hours`: "if
    your Spot instance is interrupted by Amazon EC2, you will not be
    charged for a partial hour of usage" — the final partial billing
    quantum is free, so hours round *down*.  Leases the user terminates
    keep the ordinary round-up rule.
    """
    if seconds < 0:
        raise ValueError(f"rental duration must be >= 0, got {seconds}")
    if model is BillingModel.PER_HOUR:
        hours = float(math.floor(seconds / 3600.0))
    elif model is BillingModel.PER_MINUTE:
        hours = math.floor(seconds / 60.0) / 60.0
    else:
        hours = seconds / 3600.0
    san = _sanitizer._ACTIVE
    if san is not None:
        san.check_spot_billing(model, seconds, hours)
    return hours


def cluster_cost(
    instance_type: InstanceType,
    n_nodes: int,
    seconds: float,
    model: BillingModel = BillingModel.PER_HOUR,
) -> float:
    """USD cost of renting ``n_nodes`` instances for ``seconds``."""
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
    return n_nodes * instance_type.price_per_hour * billed_hours(seconds, model)


def price_per_workflow(
    instance_type: InstanceType,
    n_nodes: int,
    seconds: float,
    n_workflows: int,
    model: BillingModel = BillingModel.PER_HOUR,
) -> float:
    """Average USD cost of one workflow in an ensemble run (Fig 11c)."""
    if n_workflows < 1:
        raise ValueError(f"n_workflows must be >= 1, got {n_workflows}")
    return cluster_cost(instance_type, n_nodes, seconds, model) / n_workflows
