"""Cluster specification and assembly.

:class:`ClusterSpec` is the *plan*: instance type, node count, shared-FS
flavour — what the provisioning planner emits (Table III).
:class:`SimCluster` is the *instantiation*: the DES nodes plus the shared
file system, ready for an execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import InstanceType, get_instance_type
from repro.cloud.node import SimNode
from repro.cloud.pricing import BillingModel, cluster_cost
from repro.sim import Simulator
from repro.storage.base import SharedFileSystem
from repro.storage.moosefs import make_moosefs
from repro.storage.nfs import make_central_nfs, make_nton_nfs

__all__ = ["ClusterSpec", "SimCluster", "FS_KINDS"]

FS_KINDS = ("local", "nfs-central", "nfs-nton", "moosefs")


@dataclass(frozen=True)
class ClusterSpec:
    """A provisioning decision: what to rent and how to wire storage.

    The paper's clusters are always homogeneous — "a homogeneous
    environment can be achieved by launching all the worker nodes with
    the same instance type in the same placement group" (§III.A) — and
    that homogeneity is what makes pulling safe.  ``node_types`` allows
    deliberately *heterogeneous* clusters for the ablation that tests
    this design assumption (grid-style mixed hardware).
    """

    instance_type: str
    n_nodes: int
    filesystem: str = "moosefs"
    name: str = ""
    #: Optional per-node instance types (length == n_nodes); empty means
    #: homogeneous (every node is ``instance_type``).
    node_types: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        get_instance_type(self.instance_type)  # raises for unknown types
        if self.node_types:
            if len(self.node_types) != self.n_nodes:
                raise ValueError(
                    f"node_types has {len(self.node_types)} entries for "
                    f"{self.n_nodes} nodes"
                )
            for t in self.node_types:
                get_instance_type(t)
        if self.filesystem not in FS_KINDS:
            raise ValueError(
                f"unknown filesystem {self.filesystem!r}; choose from {FS_KINDS}"
            )
        if not self.name:
            label = "mixed" if self.node_types else self.instance_type
            object.__setattr__(self, "name", f"{label} x{self.n_nodes}")

    @property
    def is_homogeneous(self) -> bool:
        return not self.node_types or len(set(self.node_types)) == 1

    @property
    def itype(self) -> InstanceType:
        return get_instance_type(self.instance_type)

    def node_itypes(self) -> Tuple[InstanceType, ...]:
        """Per-node instance types (homogeneous clusters repeat one)."""
        if self.node_types:
            return tuple(get_instance_type(t) for t in self.node_types)
        return (self.itype,) * self.n_nodes

    @property
    def total_vcpus(self) -> int:
        return sum(t.vcpus for t in self.node_itypes())

    @property
    def total_memory_gb(self) -> float:
        return sum(t.memory_gb for t in self.node_itypes())

    @property
    def total_storage_gb(self) -> float:
        return sum(t.storage_gb for t in self.node_itypes())

    @property
    def price_per_hour(self) -> float:
        return sum(t.price_per_hour for t in self.node_itypes())

    def cost(self, seconds: float, model: BillingModel = BillingModel.PER_HOUR) -> float:
        return sum(cluster_cost(t, 1, seconds, model) for t in self.node_itypes())


class SimCluster:
    """DES instantiation of a :class:`ClusterSpec`."""

    def __init__(self, sim: Simulator, spec: ClusterSpec):
        self.sim = sim
        self.spec = spec
        self.nodes = [
            SimNode(sim, i, itype) for i, itype in enumerate(spec.node_itypes())
        ]
        if spec.filesystem == "local":
            if spec.n_nodes != 1:
                raise ValueError("'local' filesystem requires a single node")
            self.fs = SharedFileSystem(sim, self.nodes, name="local")
        elif spec.filesystem == "nfs-central":
            self.fs = make_central_nfs(sim, self.nodes)
        elif spec.filesystem == "nfs-nton":
            self.fs = make_nton_nfs(sim, self.nodes)
        else:
            self.fs = make_moosefs(sim, self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(node.cores.capacity for node in self.nodes)

    def __repr__(self) -> str:
        return f"SimCluster({self.spec.name}, fs={self.fs.name})"
