"""Simulated public-cloud provider.

Replaces the paper's Amazon EC2 testbed (see DESIGN.md §1).  The instance
catalogue transcribes the paper's Table I (specs, prices) and Table II
(RAID-0 disk I/O capacity); :class:`~repro.cloud.ec2.SimulatedEC2`
provides the launch/terminate lifecycle; :mod:`~repro.cloud.pricing`
implements the charge-by-hour model (and the charge-by-minute model the
paper mentions for Google Compute Engine); :class:`~repro.cloud.node.SimNode`
assembles a node's DES resources from its instance type.
"""

from repro.cloud.cluster import ClusterSpec, SimCluster
from repro.cloud.ec2 import Instance, SimulatedEC2
from repro.cloud.instances import (
    INSTANCE_TYPES,
    DiskProfile,
    InstanceType,
    get_instance_type,
)
from repro.cloud.node import SimNode
from repro.cloud.pricing import BillingModel, cluster_cost, price_per_workflow

__all__ = [
    "BillingModel",
    "ClusterSpec",
    "DiskProfile",
    "INSTANCE_TYPES",
    "Instance",
    "InstanceType",
    "SimCluster",
    "SimNode",
    "SimulatedEC2",
    "cluster_cost",
    "get_instance_type",
    "price_per_workflow",
]
