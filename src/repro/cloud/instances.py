"""EC2 instance-type catalogue (paper Tables I and II).

Table I gives the specs and on-demand prices of the instance types used in
the paper's evaluation; Table II gives the measured disk I/O capacity of
their instance-store SSD volumes combined in RAID 0.  Both tables are
transcribed verbatim; m3.2xlarge (used in the motivational experiment of
Fig 2) is added with representative 2015-era figures.

All byte quantities use decimal units (1 MB = 1e6 B) to match the paper's
MB/s axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["DiskProfile", "InstanceType", "INSTANCE_TYPES", "get_instance_type"]

MB = 1e6
GB = 1e9


@dataclass(frozen=True)
class DiskProfile:
    """RAID-0 instance-store throughput in bytes/second (paper Table II)."""

    seq_read: float
    seq_write: float
    rand_read: float
    rand_write: float

    def __post_init__(self) -> None:
        for field in ("seq_read", "seq_write", "rand_read", "rand_write"):
            if getattr(self, field) <= 0:
                raise ValueError(f"disk {field} must be positive")


@dataclass(frozen=True)
class InstanceType:
    """One EC2 instance type (paper Table I + Table II).

    ``storage`` is ``(volume_count, volume_gb)`` of SSD instance-store
    volumes, always combined into a RAID-0 array by the provisioning
    scripts (paper §IV.A).
    """

    name: str
    vcpus: int
    memory_gb: float
    storage: Tuple[int, int]
    network_gbps: float
    price_per_hour: float
    disk: DiskProfile
    #: Per-core speed relative to the 8xlarge types' Ivy Bridge cores.
    #: The paper notes c3/r3/i2 "have similar CPU and memory performance"
    #: (§IV.A); m3.2xlarge's older Sandy Bridge cores are slower, which is
    #: why Fig 2's blocking stage occupies a larger makespan fraction.
    cpu_speed: float = 1.0

    @property
    def storage_gb(self) -> int:
        return self.storage[0] * self.storage[1]

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * GB

    @property
    def network_bytes_per_s(self) -> float:
        return self.network_gbps * 1e9 / 8.0


INSTANCE_TYPES: Dict[str, InstanceType] = {
    t.name: t
    for t in (
        # -- Table I / Table II rows -------------------------------------
        InstanceType(
            name="c3.8xlarge",
            vcpus=32,
            memory_gb=60.0,
            storage=(2, 320),
            network_gbps=10.0,
            price_per_hour=1.68,
            disk=DiskProfile(
                seq_read=250 * MB,
                seq_write=800 * MB,
                rand_read=400 * MB,
                rand_write=600 * MB,
            ),
        ),
        InstanceType(
            name="r3.8xlarge",
            vcpus=32,
            memory_gb=244.0,
            storage=(2, 320),
            network_gbps=10.0,
            price_per_hour=2.80,
            disk=DiskProfile(
                seq_read=350 * MB,
                seq_write=1000 * MB,
                rand_read=700 * MB,
                rand_write=800 * MB,
            ),
        ),
        InstanceType(
            name="i2.8xlarge",
            vcpus=32,
            memory_gb=244.0,
            storage=(8, 800),
            network_gbps=10.0,
            price_per_hour=6.82,
            disk=DiskProfile(
                seq_read=2200 * MB,
                seq_write=3800 * MB,
                rand_read=1800 * MB,
                rand_write=3600 * MB,
            ),
        ),
        # -- Fig 2's motivational instance (2015 us-east-1 figures) ------
        InstanceType(
            name="m3.2xlarge",
            vcpus=8,
            memory_gb=30.0,
            storage=(2, 80),
            network_gbps=1.0,
            price_per_hour=0.532,
            disk=DiskProfile(
                seq_read=300 * MB,
                seq_write=350 * MB,
                rand_read=200 * MB,
                rand_write=250 * MB,
            ),
            cpu_speed=0.55,
        ),
    )
}


def get_instance_type(name: str) -> InstanceType:
    """Look up an instance type by name; raises KeyError with suggestions."""
    try:
        return INSTANCE_TYPES[name]
    except KeyError:
        known = ", ".join(sorted(INSTANCE_TYPES))
        raise KeyError(f"unknown instance type {name!r}; known types: {known}") from None
