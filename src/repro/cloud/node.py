"""A simulated worker node assembled from its instance type.

Resources per node (all logged for the monitoring layer):

* ``cores`` — one :class:`~repro.sim.CorePool` slot per vCPU, matching the
  worker daemon's concurrency limit (paper §III.D);
* ``disk`` — the RAID-0 array's read/write channels (Table II);
* ``nic_in`` / ``nic_out`` — the 10 Gbps (Table I) network interface, full
  duplex;
* ``write_cache`` — write-back page cache (paper §IV.A);
* ``page_cache_bytes`` — memory available for caching reads.
"""

from __future__ import annotations

from repro.cloud.instances import InstanceType
from repro.sim import CorePool, FairShareLink, Simulator
from repro.storage.cache import WriteBackCache
from repro.storage.disk import DiskArray

__all__ = ["SimNode"]

#: Fraction of node memory the OS can devote to the page cache; the rest
#: is processes, buffers and the file systems' own memory.
PAGE_CACHE_FRACTION = 0.75

#: Fraction of the page cache that may hold dirty (unflushed) pages before
#: writers throttle — mirrors the kernel's vm.dirty_ratio (default 20%,
#: but EC2 images of the era shipped with generous write buffering).
DIRTY_FRACTION = 0.40


class SimNode:
    """One cluster node: cores, disk channels, NIC, page cache."""

    __slots__ = (
        "sim",
        "index",
        "name",
        "itype",
        "cores",
        "disk",
        "nic_in",
        "nic_out",
        "write_cache",
        "page_cache_bytes",
    )

    def __init__(self, sim: Simulator, index: int, itype: InstanceType):
        self.sim = sim
        self.index = index
        self.itype = itype
        self.name = f"{itype.name}-{index:03d}"
        self.cores = CorePool(sim, itype.vcpus, name=f"{self.name}.cores")
        self.disk = DiskArray(sim, itype.disk, name=self.name)
        nic = itype.network_bytes_per_s
        self.nic_in = FairShareLink(sim, nic, name=f"{self.name}.nic_in")
        self.nic_out = FairShareLink(sim, nic, name=f"{self.name}.nic_out")
        self.page_cache_bytes = PAGE_CACHE_FRACTION * itype.memory_bytes
        self.write_cache = WriteBackCache(
            sim,
            capacity_bytes=DIRTY_FRACTION * self.page_cache_bytes,
            name=f"{self.name}.wb",
        )

    def __repr__(self) -> str:
        return f"SimNode({self.name})"
