"""Simulated EC2 lifecycle: launch, describe, terminate.

A thin control-plane model used by the CLI and the examples: instances
have ids, states and launch times; placement groups guarantee the
homogeneous, tightly coupled environment DEWE v2's design assumes (paper
§III.A: "a homogeneous environment can be achieved by launching all the
worker nodes with the same instance type in the same placement group").
Billing accrues per instance from launch to termination.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.instances import InstanceType, get_instance_type
from repro.cloud.pricing import BillingModel, cluster_cost

__all__ = ["Instance", "SimulatedEC2"]


@dataclass
class Instance:
    """One launched instance."""

    id: str
    itype: InstanceType
    placement_group: Optional[str]
    launch_time: float
    state: str = "running"
    termination_time: Optional[float] = None

    def runtime(self, now: float) -> float:
        end = self.termination_time if self.termination_time is not None else now
        return max(0.0, end - self.launch_time)


class SimulatedEC2:
    """In-memory EC2 control plane.

    ``clock`` is supplied by the caller (wall seconds or simulation time);
    the provider itself is time-agnostic.
    """

    def __init__(self, region: str = "us-east-1"):
        self.region = region
        self._ids = itertools.count(1)
        self.instances: Dict[str, Instance] = {}
        self.placement_groups: Dict[str, List[str]] = {}

    def create_placement_group(self, name: str) -> None:
        if name in self.placement_groups:
            raise ValueError(f"placement group {name!r} already exists")
        self.placement_groups[name] = []

    def launch(
        self,
        instance_type: str,
        count: int = 1,
        placement_group: Optional[str] = None,
        now: float = 0.0,
    ) -> List[Instance]:
        """Launch ``count`` instances of ``instance_type``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        itype = get_instance_type(instance_type)
        if placement_group is not None and placement_group not in self.placement_groups:
            raise KeyError(f"unknown placement group {placement_group!r}")
        launched = []
        for _ in range(count):
            instance = Instance(
                id=f"i-{next(self._ids):08x}",
                itype=itype,
                placement_group=placement_group,
                launch_time=now,
            )
            self.instances[instance.id] = instance
            if placement_group is not None:
                self.placement_groups[placement_group].append(instance.id)
            launched.append(instance)
        return launched

    def terminate(self, instance_id: str, now: float = 0.0) -> Instance:
        instance = self.instances.get(instance_id)
        if instance is None:
            raise KeyError(f"unknown instance {instance_id!r}")
        if instance.state == "terminated":
            raise ValueError(f"instance {instance_id} already terminated")
        instance.state = "terminated"
        instance.termination_time = now
        return instance

    def describe(self, placement_group: Optional[str] = None) -> List[Instance]:
        if placement_group is None:
            return list(self.instances.values())
        ids = self.placement_groups.get(placement_group, [])
        return [self.instances[i] for i in ids]

    def running(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.state == "running"]

    def accrued_cost(
        self, now: float, model: BillingModel = BillingModel.PER_HOUR
    ) -> float:
        """Total bill so far across all instances ever launched."""
        total = 0.0
        for instance in self.instances.values():
            total += cluster_cost(instance.itype, 1, instance.runtime(now), model)
        return total
