"""repro — DEWE v2 reproduction.

A full reimplementation of *Executing Large Scale Scientific Workflow
Ensembles in Public Clouds* (Jiang, Lee, Zomaya — ICPP 2015): the DEWE v2
pulling-based workflow execution system, its Pegasus-style scheduling
baseline, the profiling-based resource provisioning strategy, and the
simulated EC2/storage substrate that stands in for the paper's testbed.

Quickstart::

    from repro import montage_workflow, Ensemble, ClusterSpec, PullEngine

    wf = montage_workflow(degree=1.0)
    result = PullEngine(ClusterSpec("c3.8xlarge", 1, filesystem="local")).run(
        Ensemble([wf])
    )
    print(result.makespan)

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the paper-reproduction index.
"""

from repro.cloud import (
    INSTANCE_TYPES,
    BillingModel,
    ClusterSpec,
    InstanceType,
    SimulatedEC2,
    get_instance_type,
    price_per_workflow,
)
from repro.dewe import (
    DeweConfig,
    MasterDaemon,
    WorkerDaemon,
    submit_workflow,
)
from repro.engines import (
    DeweV1Engine,
    EngineResult,
    PullEngine,
    RunConfig,
    SchedulingEngine,
)
from repro.faults import (
    ChaosScenario,
    DeadLetterEntry,
    DeadLetterQueue,
    Degradation,
    FaultAction,
    FaultSchedule,
    FaultTrace,
    RetryPolicy,
    SCENARIOS,
    SpotTerminationModel,
    StragglerModel,
    TransientFaultModel,
    get_scenario,
    kill_restart_cycle,
    run_chaos,
)
from repro.generators import (
    cybershake_workflow,
    ligo_workflow,
    montage_workflow,
    random_layered_workflow,
)
from repro.mq import Broker, MessageChaos
from repro.provision import (
    ProfilingCampaign,
    node_performance_index,
    plan_cluster,
    plan_table,
    required_nodes,
)
from repro.workflow import DataFile, Ensemble, Job, SubmissionPlan, Workflow

__version__ = "1.0.0"

__all__ = [
    "BillingModel",
    "Broker",
    "ChaosScenario",
    "ClusterSpec",
    "DataFile",
    "DeadLetterEntry",
    "DeadLetterQueue",
    "Degradation",
    "DeweConfig",
    "DeweV1Engine",
    "Ensemble",
    "EngineResult",
    "FaultAction",
    "FaultSchedule",
    "FaultTrace",
    "INSTANCE_TYPES",
    "InstanceType",
    "Job",
    "MasterDaemon",
    "MessageChaos",
    "ProfilingCampaign",
    "PullEngine",
    "RetryPolicy",
    "RunConfig",
    "SCENARIOS",
    "SchedulingEngine",
    "SimulatedEC2",
    "SpotTerminationModel",
    "StragglerModel",
    "SubmissionPlan",
    "TransientFaultModel",
    "WorkerDaemon",
    "Workflow",
    "__version__",
    "cybershake_workflow",
    "get_instance_type",
    "get_scenario",
    "kill_restart_cycle",
    "run_chaos",
    "ligo_workflow",
    "montage_workflow",
    "node_performance_index",
    "plan_cluster",
    "plan_table",
    "price_per_workflow",
    "random_layered_workflow",
    "required_nodes",
    "submit_workflow",
]
