#!/usr/bin/env python
"""The paper's §IV/§V.B pipeline end to end, at laptop scale:

1. profile an instance type with small single-node and multi-node
   experiments (Fig 5);
2. derive the converged node performance index (Eq. 1);
3. design a cluster for a target ensemble and deadline (Eq. 2);
4. run the ensemble on the designed cluster and check deadline + cost.
"""

from repro import (
    ClusterSpec,
    Ensemble,
    ProfilingCampaign,
    PullEngine,
    montage_workflow,
    plan_cluster,
)
from repro.engines.base import RunConfig

DEGREE = 1.0
TARGET_W = 40
DEADLINE = 400.0  # seconds


def main() -> None:
    template = montage_workflow(degree=DEGREE)
    print(f"profiling workload: {template.name} ({len(template)} jobs)")

    campaign = ProfilingCampaign(template)
    print("\nsingle-node workload sweep (Fig 5a):")
    single = campaign.single_node("c3.8xlarge", workflow_counts=(1, 2, 4, 8))
    for w, t in zip(single.workflow_counts, single.execution_times):
        print(f"  {w:2d} workflows -> {t:7.1f} s")

    print("\nmulti-node cluster-size sweep, 12 workflows (Fig 5b/5c):")
    multi = campaign.multi_node("c3.8xlarge", node_counts=(2, 3, 4, 5), workflows=12)
    for n, t, p in zip(multi.node_counts, multi.execution_times, multi.indices):
        print(f"  {n} nodes -> {t:7.1f} s   P = {p:.5f}")
    index = multi.converged
    print(f"\nconverged node performance index: P = {index:.5f}")

    plan = plan_cluster(
        "c3.8xlarge", workflows=TARGET_W, deadline=DEADLINE, index=index
    )
    spec = plan.spec
    print(
        f"\nEq. 2 design for {TARGET_W} workflows within {DEADLINE:.0f} s: "
        f"{spec.n_nodes} x c3.8xlarge "
        f"(predicted {plan.predicted_time:.0f} s, {plan.predicted_cost:.2f} USD)"
    )

    result = PullEngine(spec, RunConfig(record_jobs=False)).run(
        Ensemble.replicated(template, TARGET_W)
    )
    status = "MET" if result.makespan <= DEADLINE else "MISSED"
    print(
        f"measured: {result.makespan:.0f} s -> deadline {status}; "
        f"cost {result.cost():.2f} USD "
        f"({result.cost() / TARGET_W:.3f} USD per workflow)"
    )


if __name__ == "__main__":
    main()
