#!/usr/bin/env python
"""A real multi-process DEWE v2 cluster on one machine.

Topology (paper §III.B, with TCP in place of RabbitMQ):

* this process runs the broker server and the master daemon;
* N worker daemons run as separate OS processes, each knowing nothing
  but the broker address (`python -m repro.dewe.remote_worker`);
* the submission application hands over a workflow whose jobs are argv
  commands, and the stateless workers race for them.
"""

import subprocess
import sys

from repro import DeweConfig, MasterDaemon, submit_workflow
from repro.mq.tcpbroker import BrokerServer, RemoteBroker
from repro.workflow import Workflow

N_WORKERS = 3


def build_workflow() -> Workflow:
    """A two-level fan of tiny shell jobs."""
    wf = Workflow("distributed-demo")
    for i in range(12):
        wf.new_job(f"fan_{i:02d}", "fan", action=["true"])
    wf.new_job("collect", "collect", action=["true"])
    for i in range(12):
        wf.add_dependency(f"fan_{i:02d}", "collect")
    return wf


def main() -> None:
    config = DeweConfig(default_timeout=30.0)
    with BrokerServer() as server:
        host, port = server.address
        print(f"broker listening on {host}:{port}")

        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.dewe.remote_worker",
                    "--host", host, "--port", str(port),
                    "--name", f"node-{k}", "--slots", "4",
                    "--executor", "subprocess", "--idle-exit", "5",
                ]
            )
            for k in range(N_WORKERS)
        ]
        print(f"started {N_WORKERS} worker processes: "
              f"{[w.pid for w in workers]}")

        master_conn = RemoteBroker(host, port)
        submit_conn = RemoteBroker(host, port)
        try:
            with MasterDaemon(master_conn, config) as master:
                wf = build_workflow()
                submit_workflow(submit_conn, wf)
                ok = master.wait(wf.name, timeout=60.0)
                state = master.states[wf.name]
                print(f"workflow completed: {ok} "
                      f"({state.n_completed}/{state.n_jobs} jobs, "
                      f"{master.makespan(wf.name):.2f} s)")
                print("broker stats:", master_conn.stats())
        finally:
            master_conn.close()
            submit_conn.close()
            for w in workers:
                w.terminate()
                w.wait(timeout=10)
    print("all worker processes terminated")


if __name__ == "__main__":
    main()
