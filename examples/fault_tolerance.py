#!/usr/bin/env python
"""Fault tolerance (paper §V.A.3): kill the worker daemon mid-run.

Part 1 drives the *real* threaded system: a worker daemon is killed while
a job is in flight, its acknowledgment never arrives, and the master's
timeout resubmits the job to a replacement daemon.

Part 2 replays the paper's experiment in the simulator: interruptions
during non-blocking jobs cost ~the downtime; interruptions during
blocking jobs cost ~the timeout.

Part 3 goes beyond the paper: a seeded stochastic spot-termination
scenario (instances reclaimed mid-run with a short notice and
auto-scaling replacements, plus a poison job) executed by the chaos
harness, with dead-letter reporting and the recovery invariants checked.
"""

import threading
import time

from repro import (
    Broker,
    ClusterSpec,
    DeweConfig,
    Ensemble,
    FaultAction,
    FaultSchedule,
    MasterDaemon,
    PullEngine,
    WorkerDaemon,
    Workflow,
    montage_workflow,
    submit_workflow,
)
from repro.engines.base import RunConfig
from repro.monitor.timeline import stage_windows


def real_system_failover() -> None:
    print("== real system: kill + replace the worker daemon " + "=" * 16)
    broker = Broker()
    config = DeweConfig(default_timeout=0.5, max_concurrent_jobs=4)

    started = threading.Event()
    release = threading.Event()

    def slow_job():
        started.set()
        release.wait(timeout=10.0)

    wf = Workflow("failover-demo")
    wf.new_job("long", "compute", action=slow_job)
    wf.new_job("final", "collect")
    wf.add_dependency("long", "final")

    with MasterDaemon(broker, config) as master:
        first = WorkerDaemon(broker, config=config, name="node-A").start()
        submit_workflow(broker, wf)
        started.wait(timeout=5.0)
        print("killing worker node-A while 'long' is running...")
        first.kill()  # its COMPLETED ack is now lost
        release.set()
        time.sleep(0.1)
        print("starting replacement worker node-B")
        second = WorkerDaemon(broker, config=config, name="node-B").start()
        ok = master.wait("failover-demo", timeout=15.0)
        second.stop()
        state = master.states["failover-demo"]
        print(f"workflow completed: {ok}; timeout resubmissions: "
              f"{state.resubmissions}\n")


def simulated_interruptions() -> None:
    print("== simulator: where the interruption lands matters " + "=" * 14)
    template = montage_workflow(degree=1.0)
    for job_id in ("mConcatFit", "mBgModel"):
        job = template.job(job_id)
        job.timeout = 30.0 + job.runtime
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    cfg = RunConfig(default_timeout=30.0, timeout_check_interval=1.0)

    baseline = PullEngine(spec, config=cfg).run(Ensemble([template]))
    (s2_start, s2_end) = next(iter(stage_windows(baseline).values()))
    print(f"baseline makespan: {baseline.makespan:.1f} s "
          f"(blocking stage {s2_start:.0f}..{s2_end:.0f} s)")

    for label, t_kill in (
        ("fan stage (non-blocking jobs)", s2_start * 0.5),
        ("blocking stage (mConcatFit/mBgModel)", (s2_start + s2_end) / 2),
    ):
        schedule = FaultSchedule(
            [FaultAction(t_kill, 0, "kill"), FaultAction(t_kill + 5.0, 0, "restart")]
        )
        result = PullEngine(spec, config=cfg, fault_schedule=schedule).run(
            Ensemble([template])
        )
        delta = result.makespan - baseline.makespan
        print(f"kill at {t_kill:6.1f} s in {label:38s} -> "
              f"+{delta:5.1f} s, {result.resubmissions} resubmissions")


def stochastic_spot_terminations() -> None:
    print("== chaos harness: spot market + a poison job " + "=" * 20)
    from repro.faults.chaos import ChaosScenario, run_chaos

    scenario = ChaosScenario(
        name="spot-with-poison",
        description="spot reclamations with replacements; mBgModel is "
        "poisoned and must be dead-lettered with its descendants",
        n_nodes=4,
        n_workflows=4,
        max_attempts=3,
        spot_rate_per_hour=600.0,
        spot_notice=3.0,
        spot_replacement_delay=5.0,
        poison=("mBgModel",),
        expect_dead=("mBgModel",),
    )
    for seed in (0, 1):
        report = run_chaos(scenario, seed=seed)
        print(report.summary())
        poisoned = [e for e in report.dead_letters if e.reason != "upstream-dead"]
        cascaded = len(report.dead_letters) - len(poisoned)
        print(f"  -> {len(poisoned)} poison job(s) dead-lettered after "
              f"exhausting their budget, {cascaded} descendant(s) cascaded; "
              f"every other job completed exactly once\n")


if __name__ == "__main__":
    real_system_failover()
    simulated_interruptions()
    stochastic_spot_terminations()
