#!/usr/bin/env python
"""Quickstart: run a Montage workflow with DEWE v2 — twice.

1. For real: the threaded master/worker daemons execute the DAG on this
   machine through the in-process broker (the jobs are tiny callables).
2. At cluster scale: the same control logic drives the discrete-event
   simulator against a c3.8xlarge node, reproducing the paper's setting.
"""

import collections

from repro import (
    Broker,
    ClusterSpec,
    DeweConfig,
    Ensemble,
    MasterDaemon,
    PullEngine,
    WorkerDaemon,
    montage_workflow,
    submit_workflow,
)
from repro.dewe.executors import NullExecutor
from repro.monitor import run_summary, summary_table


def run_real() -> None:
    print("== real threaded DEWE v2 " + "=" * 40)
    workflow = montage_workflow(degree=0.5)
    print(f"workflow: {workflow.name} with {len(workflow)} jobs")

    config = DeweConfig(default_timeout=30.0, max_concurrent_jobs=8)
    broker = Broker()
    with MasterDaemon(broker, config) as master, WorkerDaemon(
        broker, NullExecutor(), config, name="local-worker"
    ):
        submit_workflow(broker, workflow)
        assert master.wait(workflow.name, timeout=60.0)
        state = master.states[workflow.name]
        print(f"completed {state.n_completed}/{state.n_jobs} jobs "
              f"in {master.makespan(workflow.name):.2f} s wall time")
        counts = collections.Counter(
            job.task_type for job in workflow if state.status[job.id].value == "completed"
        )
        print("job mix:", dict(counts))


def run_simulated() -> None:
    print("\n== simulated c3.8xlarge cluster " + "=" * 33)
    workflow = montage_workflow(degree=1.0)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    result = PullEngine(spec).run(Ensemble([workflow]))
    print(summary_table([run_summary(result)]))
    print(f"simulated makespan: {result.makespan:.1f} s on {spec.name}")


if __name__ == "__main__":
    run_real()
    run_simulated()
