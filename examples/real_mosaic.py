#!/usr/bin/env python
"""Compute an actual image mosaic with the real DEWE v2 daemons.

Montage-lite builds a synthetic sky, slices it into overlapping tiles
with per-tile background offsets and noise, and the full Montage job
chain (projection -> difference fits -> background model -> correction ->
co-addition -> shrink -> render) runs as OS subprocesses pulled by DEWE
v2 workers.  The script then verifies the reconstruction quality and the
paper's §V.A MD5 equivalence against a sequential reference run.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DeweConfig, MasterDaemon, WorkerDaemon, submit_workflow
from repro.dewe import SubprocessExecutor
from repro.dewe.verify import outputs_digest, run_reference, verify_equivalence
from repro.montage_lite import build_montage_lite_workflow, make_sky
from repro.mq import Broker

GRID, TILE, SEED = 4, 24, 11


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        print("building reference run (sequential, in-process)...")
        ref_dir = tmp / "reference"
        ref_wf = build_montage_lite_workflow(
            ref_dir, grid=GRID, tile=TILE, seed=SEED, subprocess_actions=False
        )
        run_reference(ref_wf)
        reference = outputs_digest(ref_wf, ref_dir)

        print("running the same mosaic through DEWE v2 (3 workers, "
              "subprocess jobs)...")
        dewe_dir = tmp / "dewe"
        wf = build_montage_lite_workflow(
            dewe_dir, grid=GRID, tile=TILE, seed=SEED, subprocess_actions=True
        )
        config = DeweConfig(default_timeout=120.0, max_concurrent_jobs=4)
        broker = Broker()
        with MasterDaemon(broker, config) as master:
            workers = [
                WorkerDaemon(broker, SubprocessExecutor(), config, name=f"w{k}").start()
                for k in range(3)
            ]
            submit_workflow(broker, wf)
            assert master.wait(wf.name, timeout=300.0)
            for w in workers:
                w.stop()
            print(f"  {master.states[wf.name].n_completed} jobs in "
                  f"{master.makespan(wf.name):.2f} s")

        print("verifying (paper §V.A): size + MD5 vs the reference...")
        problems = verify_equivalence(reference, outputs_digest(wf, dewe_dir))
        print("  outputs identical" if not problems else f"  MISMATCH: {problems}")

        sky = make_sky(GRID, TILE, SEED)
        mosaic = np.load(dewe_dir / "montage-lite/mosaic.npy")
        rms = float(np.sqrt(np.mean((mosaic - sky) ** 2)))
        print(f"reconstruction error vs true sky: RMS = {rms:.2f} "
              f"(tile offsets were +-50)")
        pgm = dewe_dir / "montage-lite/mosaic.pgm"
        print(f"rendered mosaic: {pgm.name}, {pgm.stat().st_size:,} bytes")


if __name__ == "__main__":
    main()
