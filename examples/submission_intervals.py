#!/usr/bin/env python
"""Workflow submission intervals (paper Fig 8/9).

Submitting an ensemble's workflows at a staggered interval — rather than
all at once — interleaves CPU-hungry and I/O-hungry stages of different
workflows and shortens the ensemble makespan.  This example sweeps the
interval for a five-workflow Montage ensemble and reports the utilisation
shift that explains the win.
"""

from repro import ClusterSpec, Ensemble, PullEngine, montage_workflow
from repro.engines.base import RunConfig
from repro.monitor import node_metrics

SPEC = ClusterSpec("c3.8xlarge", 1, filesystem="local")
COPIES = 5


def main() -> None:
    template = montage_workflow(degree=1.0)
    base = PullEngine(SPEC, RunConfig(record_jobs=False)).run(Ensemble([template]))
    print(f"single workflow: {base.makespan:.0f} s; sweeping submission "
          f"intervals for {COPIES} workflows\n")
    print(f"{'interval':>9}  {'makespan':>9}  {'mean CPU':>9}  {'vs batch':>9}")

    batch_time = None
    fractions = (0.0, 0.08, 0.16, 0.25, 0.33, 0.42)
    for fraction in fractions:
        interval = round(base.makespan * fraction)
        ensemble = Ensemble.replicated(template, COPIES, interval=interval)
        result = PullEngine(SPEC, RunConfig(record_jobs=False)).run(ensemble)
        metrics = node_metrics(result, 0)
        if batch_time is None:
            batch_time = result.makespan
        gain = 100 * (batch_time - result.makespan) / batch_time
        print(f"{interval:8.0f}s  {result.makespan:8.0f}s  "
              f"{metrics.mean_cpu_util():8.1f}%  {gain:+8.1f}%")

    print("\nbatch submission leaves the node idle through every blocking"
          "\nwindow at once; staggering fills those valleys with other"
          "\nworkflows' fan jobs (Fig 9).")


if __name__ == "__main__":
    main()
