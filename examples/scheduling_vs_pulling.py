#!/usr/bin/env python
"""Scheduling vs pulling (paper Figs 6/7): DEWE v2 against a Pegasus-like
baseline on the same simulated cluster, for one workflow and for a small
ensemble, across three scientific workflow families.
"""

from repro import (
    ClusterSpec,
    DeweV1Engine,
    Ensemble,
    PullEngine,
    SchedulingEngine,
    cybershake_workflow,
    ligo_workflow,
    montage_workflow,
)
from repro.engines.base import RunConfig
from repro.monitor import run_summary, summary_table

SPEC = ClusterSpec("c3.8xlarge", 1, filesystem="local")
CFG = RunConfig(record_jobs=False)


def compare(name, template, copies=3):
    print(f"\n== {name}: {len(template)} jobs x {copies} workflows " + "=" * 20)
    ensemble = Ensemble.replicated(template, copies)
    rows = []
    for Engine in (PullEngine, SchedulingEngine, DeweV1Engine):
        result = Engine(SPEC, CFG).run(ensemble)
        rows.append(run_summary(result))
    print(summary_table(
        rows,
        columns=("engine", "makespan_s", "total_cpu_seconds",
                 "total_disk_write_gb", "cost_usd"),
    ))
    pull, sched = rows[0], rows[1]
    speedup = 1 - pull["makespan_s"] / sched["makespan_s"]
    print(f"pulling is {100 * speedup:.0f}% faster than scheduling here")


if __name__ == "__main__":
    compare("Montage (astronomy mosaics)", montage_workflow(degree=1.0))
    compare("LIGO inspiral (gravitational waves)", ligo_workflow(blocks=24, group=6))
    compare("CyberShake (seismic hazard)", cybershake_workflow(ruptures=10, variations=8))
