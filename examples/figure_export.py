#!/usr/bin/env python
"""Render reproduced figures to files: SVG charts, a Fig-2-style Gantt,
a Chrome trace and CSV metrics.

Outputs land in ./figure_export_out/:

* fig6_cpu.svg       — CPU-utilisation series, DEWE v2 vs Pegasus (Fig 6b)
* fig7_makespan.svg  — makespan vs ensemble size (Fig 7a)
* timeline.svg       — per-vCPU-slot Gantt (Fig 2)
* trace.json         — open in chrome://tracing or ui.perfetto.dev
* metrics.csv        — 3-second samples, spreadsheet-ready
"""

from pathlib import Path

from repro import ClusterSpec, Ensemble, PullEngine, SchedulingEngine, montage_workflow
from repro.engines.base import RunConfig
from repro.monitor import metrics_to_csv, node_metrics, to_chrome_trace
from repro.monitor.plot import svg_gantt, svg_line_chart

OUT = Path("figure_export_out")
SPEC = ClusterSpec("c3.8xlarge", 1, filesystem="local")


def main() -> None:
    OUT.mkdir(exist_ok=True)
    template = montage_workflow(degree=1.0)

    print("running DEWE v2 and Pegasus on one workflow...")
    dewe = PullEngine(SPEC).run(Ensemble([template]))
    pegasus = SchedulingEngine(SPEC).run(Ensemble([template]))

    m_dewe = node_metrics(dewe, 0)
    m_peg = node_metrics(pegasus, 0)
    svg_line_chart(
        {
            "DEWE v2": (m_dewe.times.tolist(), m_dewe.cpu_util.tolist()),
            "Pegasus": (m_peg.times.tolist(), m_peg.cpu_util.tolist()),
        },
        title="Fig 6b: CPU utilisation, 1 workflow on c3.8xlarge",
        xlabel="time (s)",
        ylabel="CPU utilisation (%)",
        path=OUT / "fig6_cpu.svg",
    )

    print("sweeping ensemble size for Fig 7a...")
    counts = [1, 2, 3, 4]
    series = {}
    for name, Engine in (("DEWE v2", PullEngine), ("Pegasus", SchedulingEngine)):
        times = [
            Engine(SPEC, RunConfig(record_jobs=False))
            .run(Ensemble.replicated(template, w))
            .makespan
            for w in counts
        ]
        series[name] = (counts, times)
    svg_line_chart(
        series,
        title="Fig 7a: total execution time vs number of workflows",
        xlabel="workflows",
        ylabel="seconds",
        path=OUT / "fig7_makespan.svg",
    )

    print("exporting the Fig 2 timeline...")
    svg_gantt(dewe, path=OUT / "timeline.svg")
    to_chrome_trace(dewe, OUT / "trace.json")
    metrics_to_csv(m_dewe, OUT / "metrics.csv")

    for f in sorted(OUT.iterdir()):
        print(f"  wrote {f} ({f.stat().st_size:,} bytes)")


if __name__ == "__main__":
    main()
