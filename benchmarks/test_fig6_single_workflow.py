"""Fig 6 — one Montage workflow on a single c3.8xlarge: DEWE v2 vs
Pegasus (scheduling baseline).

Paper observations, checked here:

* concurrent threads: DEWE v2 reaches more concurrency than Pegasus
  (25 vs 20 observed in the paper; the Pegasus model caps at 20);
* CPU utilisation: DEWE v2 peaks at ~100%, Pegasus stays lower;
* disk writes: Pegasus performs far more write I/O (staging + logs);
* makespan: DEWE v2 ~600 s vs Pegasus ~1240 s at paper scale — about a
  2x gap, asserted here as a band.
"""

from conftest import FULL_SCALE, emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, SchedulingEngine
from repro.monitor import node_metrics, summary_table
from repro.workflow import Ensemble


def run_fig6(template):
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    ensemble = Ensemble([template])
    return {
        "dewe-v2": PullEngine(spec).run(ensemble),
        "pegasus": SchedulingEngine(spec).run(ensemble),
    }


def test_fig6_dewe_vs_pegasus(benchmark, template, scale_note):
    results = benchmark.pedantic(run_fig6, args=(template,), rounds=1, iterations=1)
    rows = []
    metrics = {}
    for engine, result in results.items():
        m = node_metrics(result, 0)
        metrics[engine] = m
        rows.append(
            {
                "engine": engine,
                "makespan_s": round(result.makespan, 1),
                "peak_threads": int(m.peak_threads),
                "peak_cpu_%": round(m.peak_cpu_util, 1),
                "mean_cpu_%": round(m.mean_cpu_util(), 1),
                "writes_GB": round(result.total_disk_write_bytes() / 1e9, 2),
                "reads_GB": round(result.total_disk_read_bytes() / 1e9, 2),
            }
        )
    ratio = results["pegasus"].makespan / results["dewe-v2"].makespan
    text = (
        scale_note
        + "\n"
        + summary_table(rows)
        + f"\nmakespan ratio pegasus/dewe-v2 = {ratio:.2f} (paper: 1240/600 = 2.07)"
    )
    emit("fig6_single_workflow", text)

    # Concurrency: Pegasus capped at 20, DEWE v2 above it.
    assert metrics["pegasus"].peak_threads <= 20
    assert metrics["dewe-v2"].peak_threads > metrics["pegasus"].peak_threads
    # CPU utilisation: DEWE v2 saturates the node, Pegasus does not.
    assert metrics["dewe-v2"].peak_cpu_util > 95.0
    assert metrics["pegasus"].peak_cpu_util < metrics["dewe-v2"].peak_cpu_util
    # Disk I/O: Pegasus writes far more.
    assert (
        results["pegasus"].total_disk_write_bytes()
        > 1.5 * results["dewe-v2"].total_disk_write_bytes()
    )
    # Makespan gap ~2x (band widens at reduced scale).
    assert 1.5 < ratio < 3.5
    if FULL_SCALE:
        assert 500 < results["dewe-v2"].makespan < 750    # paper: ~600 s
        assert 1050 < results["pegasus"].makespan < 1500  # paper: ~1240 s
