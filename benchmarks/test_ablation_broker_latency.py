"""Ablation — message-queue latency (paper §VI's critique of Polyphony).

"Polyphony uses the AWS Simple Queue Service (SQS) as the message queue,
which is not intended for high performance computing applications."
DEWE v2 uses a co-located RabbitMQ precisely because the pull model pays
one queue round-trip per job: with thousands of second-scale jobs, queue
latency multiplies into makespan.

This ablation sweeps the simulated broker latency from RabbitMQ-like
(2 ms) through WAN-SQS-like (100–500 ms): the workflow's short fan jobs
amortise small latencies but visibly stall on slow queues.
"""

from conftest import emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.engines.base import RunConfig
from repro.monitor import format_series, summary_table
from repro.workflow import Ensemble

LATENCIES = (0.002, 0.02, 0.1, 0.5)


def run_ablation(template):
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    out = []
    for latency in LATENCIES:
        result = PullEngine(
            spec, RunConfig(record_jobs=False), broker_latency=latency
        ).run(Ensemble([template]))
        out.append((latency, result.makespan))
    return out


def test_ablation_broker_latency(benchmark, template, scale_note):
    sweep = benchmark.pedantic(run_ablation, args=(template,), rounds=1, iterations=1)
    rows = [
        {"broker_latency_ms": round(lat * 1000, 1), "makespan_s": round(t, 1)}
        for lat, t in sweep
    ]
    text = (
        scale_note
        + "\n"
        + summary_table(rows)
        + "\n"
        + format_series(
            "latency sweep", [lat * 1000 for lat, _ in sweep], [t for _, t in sweep], "s"
        )
    )
    emit("ablation_broker_latency", text)

    times = [t for _lat, t in sweep]
    base = times[0]
    # A RabbitMQ-class broker (2 -> 20 ms) barely matters: the pull
    # model's coordination cost is negligible at sane latencies.
    assert times[1] < base * 1.05
    # An SQS-class queue visibly stalls the short-job fan stages.
    assert times[-1] > base * 1.10
    # Monotone: more latency never helps.
    assert all(a <= b + 1e-6 for a, b in zip(times, times[1:]))
