"""Performance benchmarks of the simulation substrate itself.

Not a paper figure — these guard the simulator's throughput so the
full-scale reproductions (1.7 M jobs) stay tractable.  pytest-benchmark
runs these with real repetition statistics.
"""

import pytest

from repro.cloud import ClusterSpec
from repro.engines import PullEngine, RunConfig, SchedulingEngine
from repro.generators import montage_workflow
from repro.sim import FairShareLink, Simulator
from repro.workflow import Ensemble


def test_perf_event_loop_throughput(benchmark):
    """Raw kernel: ping-pong timeout events."""

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(20_000):
                yield sim.timeout(1.0)

        sim.process(ticker())
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == pytest.approx(20_000.0)


def test_perf_fair_share_link(benchmark):
    """PS link under churning concurrency."""

    def run():
        sim = Simulator()
        link = FairShareLink(sim, capacity=1e9)

        def stream(start, size):
            yield sim.timeout(start)
            yield link.transfer(size)

        for i in range(2_000):
            sim.process(stream(i * 0.01, 1e6 + (i % 7) * 1e5))
        sim.run()
        return link.log.integrate(sim.now)

    total = benchmark(run)
    assert total > 0


def test_perf_pull_engine_jobs_per_second(benchmark):
    """End-to-end engine throughput on a 1.0-degree workflow (212 jobs)."""
    template = montage_workflow(degree=1.0)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")

    def run():
        return PullEngine(spec, RunConfig(record_jobs=False)).run(
            Ensemble([template])
        )

    result = benchmark(run)
    assert result.jobs_executed == len(template)


def test_perf_scheduling_engine(benchmark):
    template = montage_workflow(degree=1.0)
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")

    def run():
        return SchedulingEngine(spec, RunConfig(record_jobs=False)).run(
            Ensemble([template])
        )

    result = benchmark(run)
    assert result.jobs_executed == len(template)
