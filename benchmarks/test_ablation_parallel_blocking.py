"""Ablation — parallel blocking jobs (paper §III.D).

"The worker daemon does not bind a job to a particular CPU.  If a job is
implemented in a way that can leverage multiple CPUs (for example,
OpenMP), the desired behavior is preserved.  This feature can
significantly speed up the execution of a workflow when the blocking jobs
(e.g., mConcatFit and mBgModel in Montage workflow) are implemented as
parallel code."

The generator's ``parallel_blocking_jobs`` flag marks mConcatFit/mBgModel
as 8-way parallel; the engine's worker slots opportunistically grab idle
cores for them.  Expected: the stage-2 window shrinks by close to the
parallelism (cores are idle during the blocking stage, so the grab always
succeeds) and the whole-workflow makespan improves by the window delta.
"""

from conftest import DEGREE, emit

from repro.cloud import ClusterSpec
from repro.engines import PullEngine
from repro.generators import montage_workflow
from repro.monitor import summary_table
from repro.monitor.timeline import stage_windows
from repro.workflow import Ensemble


def run_ablation(_template):
    spec = ClusterSpec("c3.8xlarge", 1, filesystem="local")
    serial_wf = montage_workflow(degree=DEGREE)
    parallel_wf = montage_workflow(degree=DEGREE, parallel_blocking_jobs=True)
    serial = PullEngine(spec).run(Ensemble([serial_wf]))
    parallel = PullEngine(spec).run(Ensemble([parallel_wf]))
    return serial, parallel


def test_ablation_parallel_blocking_jobs(benchmark, template, scale_note):
    serial, parallel = benchmark.pedantic(
        run_ablation, args=(template,), rounds=1, iterations=1
    )
    windows = {}
    rows = []
    for name, result in (("single-threaded", serial), ("8-way OpenMP", parallel)):
        (start, end) = next(iter(stage_windows(result).values()))
        windows[name] = end - start
        rows.append(
            {
                "blocking jobs": name,
                "makespan_s": round(result.makespan, 1),
                "stage2_window_s": round(end - start, 1),
            }
        )
    emit("ablation_parallel_blocking", scale_note + "\n" + summary_table(rows))

    # The blocking window shrinks by nearly the parallelism degree.
    ratio = windows["single-threaded"] / windows["8-way OpenMP"]
    assert 4.0 < ratio <= 9.0
    # The makespan improves by about the window reduction.
    saved = serial.makespan - parallel.makespan
    window_delta = windows["single-threaded"] - windows["8-way OpenMP"]
    assert saved > 0.6 * window_delta
    # Both runs complete the full workload.
    assert serial.jobs_executed == parallel.jobs_executed
