"""Fig 2 — per-vCPU-slot timeline of one Montage workflow under DEWE v1
on four m3.2xlarge instances.

The paper's observations, checked here:

* the workflow has a three-stage pattern; the second (blocking) stage is
  a large fraction of the makespan — "approximately 40%" in the paper's
  setup (we assert a broad 20-55% band at reduced scale);
* during stage 2 only one CPU core works;
* per-slot gaps are data staging ("communication time"): DEWE v1 stages
  files per job, so short fan jobs carry visible I/O time.
"""

from conftest import emit

from repro.cloud import ClusterSpec
from repro.engines import DeweV1Engine
from repro.monitor import node_metrics, slot_timeline, summary_table
from repro.monitor.timeline import stage_windows
from repro.workflow import Ensemble


def run_fig2(template):
    spec = ClusterSpec("m3.2xlarge", 4, filesystem="nfs-nton")
    return DeweV1Engine(spec).run(Ensemble([template]))


def test_fig2_dewe_v1_timeline(benchmark, template, scale_note):
    result = benchmark.pedantic(run_fig2, args=(template,), rounds=1, iterations=1)
    segments = slot_timeline(result)
    (s2_start, s2_end) = next(iter(stage_windows(result).values()))
    stage2 = s2_end - s2_start
    fraction = stage2 / result.makespan

    # Per-node compute vs communication accounting (the Fig 2 bars).
    rows = []
    for node_index in range(4):
        segs = [s for s in segments if s.node == node_index]
        compute = sum(s.compute_time for s in segs)
        staging = sum(s.io_time for s in segs)
        rows.append(
            {
                "node": f"m3.2xlarge-{node_index}",
                "slots_used": len({s.slot for s in segs}) if segs else 0,
                "jobs": len(segs),
                "compute_s": round(compute, 1),
                "staging_s": round(staging, 1),
            }
        )
    text = (
        f"{scale_note}\n"
        f"makespan: {result.makespan:.1f} s\n"
        f"blocking stage (mConcatFit+mBgModel): {s2_start:.0f}..{s2_end:.0f} s "
        f"= {stage2:.0f} s ({100 * fraction:.0f}% of makespan; paper: ~40%)\n"
        + summary_table(rows)
    )
    emit("fig2_dewe_v1_timeline", text)

    # Three-stage structure with a prominent blocking window.
    assert 0.20 <= fraction <= 0.60
    # During stage 2 at most one core computes (plus write-back flushing).
    m = node_metrics(result, 0)
    mask = (m.times >= s2_start + 3.0) & (m.times + 3.0 <= s2_end)
    if mask.sum() > 0:
        # one busy core out of 8 -> <= 12.5% utilisation on that node
        assert m.cpu_util[mask].max() <= 100 / 8 + 1e-6
    # Work is spread over all four nodes.
    assert len({s.node for s in segments}) == 4
    # Per-job staging is visible (communication gaps of Fig 2).
    fan = [s for s in segments if s.task_type == "mDiffFit"]
    assert fan and all(s.io_time > 0 for s in fan)
