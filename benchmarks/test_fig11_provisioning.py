"""Fig 11 — evaluation of the profiling-based provisioning strategy with
large-scale ensemble runs.

End-to-end reproduction of the paper's §V.B method:

1. profile each instance type with small multi-node experiments (Fig 5),
   take the converged node performance index;
2. design clusters with Eq. 2 for the target workload W and deadline T
   (paper: W=200 6.0-degree workflows, T=3,300 s inside the billing
   hour), plus the control cluster "i2.8xlarge B" with roughly the same
   hourly price as the c3/r3 designs but not sized by the model;
3. sweep the ensemble size and measure (a) execution time, (b) the
   observed node performance index, (c) price per workflow.

Checked claims:

* (a) execution time grows linearly with W; at the design workload the
  designed clusters finish within the billing quantum while the control
  cluster exceeds it by a wide margin (paper: 135 min vs 60);
* (b) the control cluster has the highest observed index (fewest nodes,
  best utilisation); designed clusters' index grows with W toward the
  design value;
* (c) price per workflow falls with W on the designed clusters and at
  W=W_max every designed cluster beats the control.

At reduced scale the billing quantum shrinks with the deadline so the
hour-granularity effects survive the scale-down (EXPERIMENTS.md).
"""

import math

import numpy as np
from conftest import FULL_SCALE, LARGE_W, emit

from repro.cloud import ClusterSpec, get_instance_type
from repro.engines import PullEngine, RunConfig
from repro.monitor import format_series
from repro.provision import ProfilingCampaign, plan_cluster
from repro.workflow import Ensemble

TYPES = ("c3.8xlarge", "r3.8xlarge", "i2.8xlarge")
DEADLINE = 3300.0 if FULL_SCALE else 600.0
QUANTUM = 3600.0 if FULL_SCALE else 660.0  # billing quantum ~ deadline/0.92
W_SWEEP = (50, 100, 150, 200) if FULL_SCALE else (25, 50, 75, 100)


def quantised_cost(spec: ClusterSpec, seconds: float) -> float:
    """Hourly-style billing at the scale-matched quantum."""
    quanta = math.ceil(seconds / QUANTUM)
    return quanta * spec.price_per_hour * (QUANTUM / 3600.0)


def run_fig11(template):
    # Step 1-2: profile and design.
    campaign = ProfilingCampaign(template)
    clusters = {}
    for itype in TYPES:
        profile = campaign.multi_node(itype, node_counts=(2, 3, 4, 5, 6), workflows=20)
        plan = plan_cluster(
            itype, workflows=LARGE_W, deadline=DEADLINE, index=profile.converged
        )
        clusters[itype] = plan.spec
    # Control: i2 nodes at ~the same hourly price as the c3 design.
    c3_price = clusters["c3.8xlarge"].price_per_hour
    control_nodes = max(1, round(c3_price / get_instance_type("i2.8xlarge").price_per_hour))
    clusters["i2.8xlarge B"] = ClusterSpec(
        "i2.8xlarge", control_nodes, filesystem="moosefs", name="i2.8xlarge B"
    )

    # Step 3: the workload sweep.
    sweep = {name: [] for name in clusters}
    config = RunConfig(record_jobs=False)
    for name, spec in clusters.items():
        for w in W_SWEEP:
            result = PullEngine(spec, config=config).run(
                Ensemble.replicated(template, w)
            )
            index = w / (spec.n_nodes * result.makespan)
            price = quantised_cost(spec, result.makespan) / w
            sweep[name].append((w, result.makespan, index, price))
    return clusters, sweep


def test_fig11_provisioning_evaluation(benchmark, template, scale_note):
    clusters, sweep = benchmark.pedantic(
        run_fig11, args=(template,), rounds=1, iterations=1
    )
    lines = [
        scale_note,
        f"W={LARGE_W}, deadline={DEADLINE:.0f}s, billing quantum={QUANTUM:.0f}s",
        "designed clusters: "
        + "  ".join(f"{name}:{spec.n_nodes} nodes" for name, spec in clusters.items()),
    ]
    for name, rows in sweep.items():
        ws = [r[0] for r in rows]
        lines.append(format_series(f"fig11a {name}", ws, [r[1] / 60 for r in rows], "min"))
    for name, rows in sweep.items():
        ws = [r[0] for r in rows]
        lines.append(format_series(f"fig11b {name}", ws, [r[2] for r in rows], "P"))
    for name, rows in sweep.items():
        ws = [r[0] for r in rows]
        lines.append(format_series(f"fig11c {name}", ws, [r[3] for r in rows], "USD/wf"))
    emit("fig11_provisioning", "\n".join(lines))

    designed = [n for n in clusters if n != "i2.8xlarge B"]
    # (a) linear growth of execution time with W.
    for name, rows in sweep.items():
        times = np.array([r[1] for r in rows])
        ws = np.array([r[0] for r in rows], dtype=float)
        assert np.all(np.diff(times) > 0)
        assert np.corrcoef(ws, times)[0, 1] > 0.97
    # (a) at the design workload, designed clusters meet the billing
    # quantum; the control cluster misses it by a wide margin.
    for name in designed:
        assert sweep[name][-1][1] <= QUANTUM * 1.05, name
    assert sweep["i2.8xlarge B"][-1][1] > QUANTUM * 1.5
    # (b) the control cluster shows the highest node performance index.
    for name in designed:
        assert sweep["i2.8xlarge B"][-1][2] > sweep[name][-1][2]
    # (b) designed clusters' observed index grows with workload.
    for name in designed:
        indices = [r[2] for r in sweep[name]]
        assert indices[-1] > indices[0]
    # (c) price per workflow falls with workload on designed clusters.
    for name in designed:
        prices = [r[3] for r in sweep[name]]
        assert prices[-1] < prices[0]
    # (c) at the design workload, the designed clusters beat the control.
    # The i2 design only differentiates at paper scale: a 6.0-degree
    # ensemble's stage-3 reads overwhelm the page cache and make i2's
    # disk advantage (and hence its small cluster) pay off; the reduced
    # workload fits in memory, so i2 is sized like r3 but priced 2.4x.
    control_price = sweep["i2.8xlarge B"][-1][3]
    cheap_designed = designed if FULL_SCALE else ["c3.8xlarge", "r3.8xlarge"]
    for name in cheap_designed:
        assert sweep[name][-1][3] < control_price, name
